//! Conformance tests for the real-clock TCP transport.
//!
//! The simulation backend is verified by byte-identical goldens; the network
//! backend cannot be (real time is not replayable), so its contract is
//! verified a posteriori: boot a real localhost cluster — three daemons on
//! ephemeral ports, every virtual node a thread, every message a framed TCP
//! write — run a workload through the ingress, and require the collected
//! completion history to pass the same sharded sequential-consistency
//! checker as a simulated run.

use std::net::TcpListener;
use std::time::Duration;

use skueue::net::daemon;
use skueue::net::{ClusterSpec, CtlClient, IngressClient, LoadParams};
use skueue::prelude::{ProcessId, ProtocolConfig, SimRng};

/// Binds `n` ephemeral listeners and builds the matching spec.
fn ephemeral_cluster(n: usize, initial: u64, shards: usize) -> (ClusterSpec, Vec<TcpListener>) {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral"))
        .collect();
    let spec = ClusterSpec {
        daemons: listeners
            .iter()
            .map(|l| l.local_addr().expect("local addr").to_string())
            .collect(),
        initial,
        shards,
        hash_seed: ProtocolConfig::queue().hash_seed,
        tick_ms: 1,
    };
    (spec, listeners)
}

fn boot(spec: &ClusterSpec, listeners: Vec<TcpListener>) -> Vec<daemon::DaemonHandle> {
    listeners
        .into_iter()
        .enumerate()
        .map(|(i, l)| daemon::spawn::<u64>(spec.clone(), i, l))
        .collect()
}

#[test]
fn three_daemon_cluster_completes_a_sharded_workload() {
    let (spec, listeners) = ephemeral_cluster(3, 5, 2);
    let daemons = boot(&spec, listeners);
    let mut ingress = IngressClient::<u64>::connect(&spec).expect("ingress connect");

    // A figure-2 style mixed workload over the initial processes.
    let mut rng = SimRng::new(0xF162);
    let pids: Vec<ProcessId> = (0..spec.initial).map(ProcessId).collect();
    for step in 0..60u64 {
        let pid = pids[(rng.next_u64() % pids.len() as u64) as usize];
        if rng.next_u64() % 10 < 6 {
            ingress.enqueue(pid, 1000 + step).expect("enqueue");
        } else {
            ingress.dequeue(pid).expect("dequeue");
        }
    }
    assert!(
        ingress.await_quiescence(Duration::from_secs(60)),
        "cluster did not drain: {}/{} completed",
        ingress.completed(),
        ingress.issued()
    );
    assert_eq!(ingress.completed(), 60);
    let report = ingress.verify();
    assert!(
        report.is_consistent(),
        "real-transport history failed the checker: {report:?}"
    );

    let mut ctl = CtlClient::<u64>::connect(&spec).expect("ctl connect");
    ctl.shutdown().expect("shutdown");
    for handle in daemons {
        handle.join().expect("daemon exits cleanly");
    }
    ingress.close();
}

#[test]
fn churn_over_the_real_transport_stays_consistent() {
    let (spec, listeners) = ephemeral_cluster(2, 4, 1);
    let daemons = boot(&spec, listeners);
    let mut ctl = CtlClient::<u64>::connect(&spec).expect("ctl connect");
    let mut ingress = IngressClient::<u64>::connect(&spec).expect("ingress connect");

    // Phase 1: ops over the initial membership.
    let initial: Vec<ProcessId> = (0..spec.initial).map(ProcessId).collect();
    let mut rng = SimRng::new(0xC0DE ^ 7);
    for step in 0..20u64 {
        let pid = initial[(rng.next_u64() % initial.len() as u64) as usize];
        if rng.next_u64() % 10 < 6 {
            ingress.enqueue(pid, step).expect("enqueue");
        } else {
            ingress.dequeue(pid).expect("dequeue");
        }
    }

    // Phase 2: a join wave; the joiners then carry traffic too.
    let joined = ctl.join_wave(2).expect("join wave");
    assert_eq!(joined.len(), 2);
    assert!(
        ctl.wait_integrated(&joined, Duration::from_secs(60))
            .expect("status poll"),
        "joiners did not integrate"
    );
    for (step, pid) in joined.iter().cycle().take(10).enumerate() {
        if step % 2 == 0 {
            ingress.enqueue(*pid, 500 + step as u64).expect("enqueue");
        } else {
            ingress.dequeue(*pid).expect("dequeue");
        }
    }
    assert!(
        ingress.await_quiescence(Duration::from_secs(60)),
        "cluster did not drain after join wave: {}/{}",
        ingress.completed(),
        ingress.issued()
    );

    // Phase 3: the joiners leave again (never anchors, so always legal).
    for pid in &joined {
        ctl.leave(*pid).expect("leave");
    }
    assert!(
        ctl.wait_left(&joined, Duration::from_secs(60))
            .expect("status poll"),
        "joiners did not leave"
    );

    let report = ingress.verify();
    assert!(
        report.is_consistent(),
        "churned real-transport history failed the checker: {report:?}"
    );

    ctl.shutdown().expect("shutdown");
    for handle in daemons {
        handle.join().expect("daemon exits cleanly");
    }
    ingress.close();
}

#[test]
fn open_loop_load_reports_latency_percentiles() {
    let (spec, listeners) = ephemeral_cluster(2, 3, 1);
    let daemons = boot(&spec, listeners);
    let mut ingress = IngressClient::<u64>::connect(&spec).expect("ingress connect");

    let mut params = LoadParams::new(400.0, 80, spec.initial, 42);
    params.drain_timeout = Duration::from_secs(60);
    let report = skueue::net::run_load(&mut ingress, &params).expect("load run");
    assert_eq!(report.issued, 80);
    assert!(report.drained, "load did not drain: {report:?}");
    assert!(report.consistent, "load history inconsistent: {report:?}");
    assert!(report.p50_us > 0 && report.p50_us <= report.p99_us);
    assert!(report.p99_us <= report.p999_us);
    let json = report.to_json();
    assert!(json.contains("\"transport\": \"tcp\""));
    assert!(json.contains("\"p999_us\""));

    let mut ctl = CtlClient::<u64>::connect(&spec).expect("ctl connect");
    ctl.shutdown().expect("shutdown");
    for handle in daemons {
        handle.join().expect("daemon exits cleanly");
    }
    ingress.close();
}
