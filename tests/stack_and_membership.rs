//! Integration tests for the stack variant (Section VI) and for join/leave
//! churn (Section IV), driven through the builder + ticket API.

use skueue::prelude::*;

/// Random push/pop workload on the stack, with local combining enabled, under
/// the synchronous scheduler.
#[test]
fn stack_random_workload_is_sequentially_consistent() {
    let mut cluster = Skueue::builder()
        .processes(10)
        .stack()
        .seed(0xCAFE)
        .build()
        .unwrap();
    let mut rng = SimRng::new(9);
    let mut tickets = Vec::new();
    for step in 0..250u64 {
        let p = ProcessId(rng.gen_range(10));
        let mut client = cluster.client(p);
        tickets.push(if rng.gen_bool(0.55) {
            client.push(step).unwrap()
        } else {
            client.pop().unwrap()
        });
        if rng.gen_bool(0.3) {
            cluster.run_round();
        }
    }
    let outcomes = cluster.run_until_done(&tickets, 20_000).unwrap();
    assert_eq!(outcomes.len(), 250);
    assert_eq!(cluster.history().len(), 250);
    check_stack(cluster.history()).assert_consistent();
}

/// The stack under asynchronous delivery — the exact reordering scenario
/// Section VI's tickets and stage-4 barrier exist for.
#[test]
fn stack_asynchronous_delivery_is_consistent() {
    let mut cluster = Skueue::builder()
        .processes(6)
        .stack()
        .asynchronous(3)
        .seed(77)
        .build()
        .unwrap();
    let mut rng = SimRng::new(4);
    for step in 0..120u64 {
        let p = ProcessId(rng.gen_range(6));
        let mut client = cluster.client(p);
        if rng.gen_bool(0.5) {
            client.push(step).unwrap();
        } else {
            client.pop().unwrap();
        }
        if rng.gen_bool(0.2) {
            cluster.run_round();
        }
    }
    cluster.run_until_all_complete(100_000).unwrap();
    check_stack(cluster.history()).assert_consistent();
}

/// Position reuse with tickets: push/pop/push/pop on the same stack slot must
/// return the right elements (the Section VI motivating example).
#[test]
fn stack_position_reuse_is_disambiguated_by_tickets() {
    let mut cluster = Skueue::builder()
        .processes(4)
        .stack()
        .seed(8)
        .build()
        .unwrap();
    // Interleave so the operations land in different batches and reuse
    // position 1 repeatedly.
    for round in 0..6u64 {
        let push = cluster.client(ProcessId(0)).push(100 + round).unwrap();
        cluster.run_until_done(&[push], 2_000).unwrap();
        let pop = cluster.client(ProcessId(1)).pop().unwrap();
        let outcome = cluster.run_until_done(&[pop], 2_000).unwrap().remove(0);
        // Each pop must return exactly the value pushed in this iteration.
        assert_eq!(outcome.value(), Some(100 + round));
    }
    check_stack(cluster.history()).assert_consistent();
}

/// Local combining (ablation E9 sanity): a process that alternates push/pop
/// resolves everything locally, without anchor round trips, and every pop
/// ticket resolves to its own push's payload.
#[test]
fn local_combining_resolves_alternating_workload_instantly() {
    let mut cluster = Skueue::builder()
        .processes(8)
        .stack()
        .seed(13)
        .build()
        .unwrap();
    let mut pairs = Vec::new();
    for i in 0..40u64 {
        let push = cluster.client(ProcessId(3)).push(i).unwrap();
        let pop = cluster.client(ProcessId(3)).pop().unwrap();
        pairs.push((i, push, pop));
    }
    cluster.run_round();
    assert_eq!(cluster.open_requests(), 0);
    assert_eq!(cluster.locally_combined(), 80);
    for (value, push, pop) in pairs {
        assert!(cluster.status(push).is_done());
        assert_eq!(cluster.outcome(pop).unwrap().value(), Some(value));
    }
    check_stack(cluster.history()).assert_consistent();
}

/// Join while a request load is running: the new processes integrate and the
/// history stays consistent.
#[test]
fn join_under_load_is_consistent() {
    let mut cluster = Skueue::builder().processes(6).seed(31).build().unwrap();
    for i in 0..30u64 {
        cluster.client(ProcessId(i % 6)).enqueue(i).unwrap();
    }
    cluster.run_rounds(5);
    let new_a = cluster.join(None).unwrap();
    let new_b = cluster.join(Some(ProcessId(2))).unwrap();
    cluster
        .run_until(
            |c| c.process_is_active(new_a) && c.process_is_active(new_b),
            60_000,
        )
        .unwrap();
    // New processes serve requests immediately.
    let mut tickets = Vec::new();
    for i in 0..10u64 {
        tickets.push(cluster.client(new_a).enqueue(1000 + i).unwrap());
        tickets.push(cluster.client(new_b).dequeue().unwrap());
    }
    cluster.run_until_done(&tickets, 30_000).unwrap();
    check_queue(cluster.history()).assert_consistent();
    assert_eq!(cluster.active_processes(), 8);
}

/// Leave with data handover: elements stored at the leaving process are still
/// dequeued afterwards, exactly once, in FIFO order.
#[test]
fn leave_preserves_all_elements() {
    let mut cluster = Skueue::builder().processes(7).seed(17).build().unwrap();
    for i in 0..56u64 {
        cluster.client(ProcessId(i % 7)).enqueue(i).unwrap();
    }
    cluster.run_until_all_complete(10_000).unwrap();

    let mut left = Vec::new();
    for p in (0..7u64).map(ProcessId) {
        if left.len() == 2 {
            break;
        }
        if cluster.leave(p).is_ok() {
            left.push(p);
        }
    }
    assert_eq!(left.len(), 2);
    cluster
        .run_until(|c| left.iter().all(|&p| c.process_has_left(p)), 60_000)
        .unwrap();
    assert_eq!(cluster.active_processes(), 5);

    let survivors = cluster.active_process_ids();
    let gets: Vec<OpTicket> = (0..56u64)
        .map(|i| {
            cluster
                .client(survivors[(i as usize) % survivors.len()])
                .dequeue()
                .unwrap()
        })
        .collect();
    let outcomes = cluster.run_until_done(&gets, 30_000).unwrap();
    assert!(
        outcomes.iter().all(|o| !o.is_empty()),
        "no element may be lost"
    );
    check_queue(cluster.history()).assert_consistent();
}

/// Mixed churn: joins and leaves in the same update phases, followed by a
/// full drain of the queue.
#[test]
fn mixed_churn_scenario_is_consistent() {
    let result = skueue::workloads::run_churn_scenario(8, 4, 3, 99);
    assert!(result.consistent);
    assert_eq!(result.final_processes, 9);
    assert!(result.join_rounds > 0 && result.leave_rounds > 0);
}

/// The baseline comparison (ablation E8): an overloaded central server has
/// linearly growing latency, Skueue does not.
#[test]
fn central_baseline_saturates_where_skueue_does_not() {
    let skueue_result = run_per_node_rate(
        ScenarioParams::per_node_rate(40, Mode::Queue, 1.0).with_generation_rounds(25),
    );
    let central = skueue::workloads::run_central_baseline(40, 1.0, 0.5, 25, 2, 7);
    assert!(skueue_result.consistent);
    // 40 requests/round against a capacity of 2/round: the central server's
    // queueing delay grows linearly with the backlog, far beyond Skueue's
    // aggregation latency at the same offered load.
    assert!(
        central.avg_rounds_per_request > skueue_result.avg_rounds_per_request * 1.5,
        "central {} vs skueue {}",
        central.avg_rounds_per_request,
        skueue_result.avg_rounds_per_request
    );
}
