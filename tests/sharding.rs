//! Integration tests for the sharded-anchor subsystem: cross-shard
//! consistency over the sweep sizes, shard isolation under churn
//! (re-anchoring inside one shard must not disturb any other shard's
//! epochs), and the S = 1 ↔ unsharded equivalence at the scenario level.

use proptest::prelude::*;
use skueue_core::Skueue;
use skueue_sim::ids::ProcessId;
use skueue_sim::SimRng;
use skueue_verify::check_queue_sharded;
use skueue_workloads::{run_fixed_rate, ScenarioParams};

/// A mixed enqueue/dequeue workload over a sharded cluster, with optional
/// asynchronous (reordering) delivery; returns the cluster for inspection.
fn run_sharded_workload(shards: usize, seed: u64, asynchronous: bool) -> Skueue {
    let n = 30usize;
    let mut builder = Skueue::builder().processes(n).shards(shards).seed(seed);
    if asynchronous {
        builder = builder.asynchronous(4);
    }
    let mut cluster = builder.build().unwrap();
    let mut rng = SimRng::new(seed ^ 0x51AD);
    for step in 0..150u64 {
        let p = ProcessId(rng.gen_range(n as u64));
        if cluster.process_may_issue(p) {
            let mut client = cluster.client(p);
            if rng.gen_bool(0.55) {
                client.enqueue(step).unwrap();
            } else {
                client.dequeue().unwrap();
            }
        }
        if step % 4 == 0 {
            cluster.run_round();
        }
    }
    cluster.run_until_all_complete(20_000).unwrap();
    cluster
}

#[test]
fn sharded_histories_verify_across_the_sweep() {
    for shards in [1usize, 2, 4, 8] {
        let cluster = run_sharded_workload(shards, 7, false);
        let map = cluster.shard_map();
        check_queue_sharded(cluster.history(), &map).assert_consistent();
        if shards > 1 {
            let waves = cluster.shard_wave_counts();
            assert!(
                waves.iter().filter(|&&w| w > 0).count() >= 2,
                "S={shards}: waves did not spread: {waves:?}"
            );
        }
    }
}

#[test]
fn sharded_history_verifies_under_reordering_delivery() {
    let cluster = run_sharded_workload(4, 11, true);
    check_queue_sharded(cluster.history(), &cluster.shard_map()).assert_consistent();
}

#[test]
fn scenario_s1_equals_unsharded_scenario_exactly() {
    // The sharded code path with S = 1 must be the unsharded protocol, bit
    // for bit: same latencies, same rounds, same per-shard wave total.
    let mk = |shards| {
        ScenarioParams::fixed_rate(12, skueue_core::Mode::Queue, 0.5)
            .with_generation_rounds(25)
            .with_seed(13)
            .with_shards(shards)
    };
    let a = run_fixed_rate(mk(1));
    let b = run_fixed_rate(mk(1));
    assert_eq!(a.avg_rounds_per_request, b.avg_rounds_per_request);
    assert_eq!(a.drain_rounds, b.drain_rounds);
    assert!(a.consistent);
    assert_eq!(a.per_shard_waves.len(), 1);
}

/// Drives churn (a join, then a leave) through a sharded cluster and
/// asserts shard isolation: every shard the churn did not touch keeps its
/// anchor state — epoch, counter, window — byte for byte, even while the
/// churned shard re-anchors / runs update phases.
fn assert_churn_isolates_shards(seed: u64) {
    let n = 24usize;
    let shards = 4usize;
    // Vary the *hash* seed too: it determines the shard layout, every
    // process's shard and the joiner's label, so without it every case
    // would churn the same shard of the same layout.
    let mut cluster = Skueue::builder()
        .processes(n)
        .shards(shards)
        .seed(seed)
        .hash_seed(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x51AD)
        .build()
        .unwrap();
    // Give every populated shard some assigned waves first.
    for i in 0..(2 * n as u64) {
        cluster.client(ProcessId(i % n as u64)).enqueue(i).unwrap();
    }
    cluster.run_until_all_complete(20_000).unwrap();

    let before = cluster.shard_anchor_states();

    // Join: lands in a deterministic shard; only that shard may change.
    // (Under an adversarial hash seed the joiner's shard can be empty —
    // the documented ShardHasNoMembers error; nothing to isolate then.)
    let joined = match cluster.join(None) {
        Ok(pid) => pid,
        Err(skueue_core::ClusterError::ShardHasNoMembers { .. }) => return,
        Err(other) => panic!("unexpected join error: {other}"),
    };
    let churned = cluster.shard_of_process(joined).unwrap() as usize;
    cluster
        .run_until(|c| c.process_is_active(joined), 20_000)
        .unwrap();
    let after_join = cluster.shard_anchor_states();
    for s in 0..shards {
        if s == churned {
            let a = after_join[s].expect("churned shard still has an anchor");
            let b = before[s].unwrap();
            assert!(
                a.epoch >= b.epoch,
                "churned shard's anchor lineage must continue monotonically"
            );
            assert!(
                a.phases_started > b.phases_started,
                "integrating a joiner must have run an update phase in its shard"
            );
        } else {
            assert_eq!(
                after_join[s], before[s],
                "join into shard {churned} disturbed shard {s} (seed {seed})"
            );
        }
    }

    // Leave: pick a victim from the joiner's shard (never an anchor
    // process); again only that shard may change.
    let victim = (0..n as u64)
        .map(ProcessId)
        .find(|&p| cluster.shard_of_process(p) == Some(churned as u32) && cluster.leave(p).is_ok());
    if let Some(victim) = victim {
        cluster
            .run_until(|c| c.process_has_left(victim), 20_000)
            .unwrap();
        let after_leave = cluster.shard_anchor_states();
        for s in 0..shards {
            if s != churned {
                assert_eq!(
                    after_leave[s], after_join[s],
                    "leave from shard {churned} disturbed shard {s} (seed {seed})"
                );
            }
        }
    }

    // The whole history — including post-churn state — stays consistent.
    check_queue_sharded(cluster.history(), &cluster.shard_map()).assert_consistent();
}

#[test]
fn churn_in_one_shard_never_disturbs_another_shards_epochs() {
    assert_churn_isolates_shards(3);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property form of the isolation test: for arbitrary seeds (arbitrary
    /// shard layouts, join labels and workload schedules), re-anchoring and
    /// update phases inside one shard leave every other shard's anchor
    /// state untouched.
    #[test]
    fn prop_churn_isolation_holds_for_arbitrary_seeds(seed in 0u64..1000) {
        assert_churn_isolates_shards(seed);
    }
}
