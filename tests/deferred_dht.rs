//! Property tests for Stage-4 operations racing membership changes.
//!
//! A DHT operation that reaches a node which is not (or no longer) an
//! integrated member is *deferred*: a joining node parks it in its
//! `deferred_dht` buffer and re-routes it after integration; a draining node
//! forwards it to its absorber.  These tests drive random workloads across
//! join/leave churn under shuffled, reordering (asynchronous) delivery and
//! assert the conservation property that makes the deferral machinery
//! correct: every issued request completes **exactly once** — nothing is
//! dropped while a node is suspended, and nothing is applied twice once
//! routing resumes — and the resulting history is sequentially consistent.

use proptest::prelude::*;
use skueue::prelude::*;
use std::collections::HashSet;

/// One churn scenario: a seeded random workload over 5 processes with a join
/// and a leave injected mid-run, under asynchronous (reordering) delivery
/// with shuffled per-round node order.
fn run_churny_workload(
    seed: u64,
    ops: &[bool],
    join_at: usize,
    leave_at: usize,
    max_delay: u64,
) -> (u64, Vec<skueue_verify::OpRecord>) {
    let mut cluster = Skueue::builder()
        .processes(5)
        .asynchronous(max_delay)
        .seed(seed)
        .build()
        .unwrap();
    let mut rng = SimRng::new(seed ^ 0xDEF);
    let mut issued = 0u64;
    for (step, &is_insert) in ops.iter().enumerate() {
        let p = ProcessId(rng.gen_range(5));
        if cluster.process_may_issue(p) {
            let mut client = cluster.client(p);
            if is_insert {
                client.enqueue(step as u64).unwrap();
            } else {
                client.dequeue().unwrap();
            }
            issued += 1;
        }
        if step == join_at {
            cluster.join(None).unwrap();
        }
        if step == leave_at {
            // Leave whichever process is allowed to (not the anchor's).
            let _ = (0..5u64).map(ProcessId).find(|&p| cluster.leave(p).is_ok());
        }
        if step % 2 == 0 {
            cluster.run_round();
        }
    }
    cluster.run_until_all_complete(60_000).unwrap();
    // Extra rounds so in-flight membership traffic settles.
    cluster.run_rounds(60);
    (issued, cluster.into_history().into_records())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Deferred DHT operations are neither dropped nor double-applied across
    /// join/leave churn under shuffled, reordering delivery: every issued
    /// request appears in the history exactly once, every returned element
    /// is returned exactly once, and the history is a sequentially
    /// consistent queue execution.
    #[test]
    fn prop_deferred_dht_conserves_requests(
        seed in 0u64..1_000,
        ops in proptest::collection::vec(any::<bool>(), 30..70),
        join_at in 5usize..25,
        leave_at in 30usize..55,
        max_delay in 2u64..5,
    ) {
        let (issued, records) = run_churny_workload(seed, &ops, join_at, leave_at, max_delay);

        // Exactly once: one completion per issued request, no duplicates.
        prop_assert_eq!(records.len() as u64, issued, "every request completes exactly once");
        let mut seen = HashSet::new();
        for r in &records {
            prop_assert!(seen.insert(r.id), "request {} completed twice", r.id);
        }

        // Elements are handed out exactly once: no two dequeues return the
        // same enqueue (a double-applied deferred GET would do that).
        let mut returned = HashSet::new();
        for r in &records {
            if let skueue_verify::OpResult::Returned(source) = r.result {
                prop_assert!(
                    returned.insert(source),
                    "element of {source} was returned twice"
                );
            }
        }

        // And the interleaving is still a sequentially consistent queue.
        let history = skueue_verify::History::from_records(records);
        prop_assert!(check_queue(&history).is_consistent());
    }
}

/// Deterministic regression case: a join immediately followed by traffic to
/// the joiner's key range exercises the `deferred_dht` buffer directly (ops
/// routed to the not-yet-integrated node must be parked and re-routed, not
/// dropped).
#[test]
fn ops_routed_to_a_joining_node_are_deferred_not_dropped() {
    let mut cluster = Skueue::builder()
        .processes(4)
        .asynchronous(3)
        .seed(9)
        .build()
        .unwrap();
    let joined = cluster.join(None).unwrap();
    // Issue a burst while the join is in flight: some PUT/GET keys will land
    // in the interval the joiner takes over mid-route.
    for i in 0..40u64 {
        cluster.client(ProcessId(i % 4)).enqueue(i).unwrap();
        if i % 4 == 3 {
            cluster.run_round();
        }
    }
    cluster
        .run_until(|c| c.process_is_active(joined), 30_000)
        .unwrap();
    for i in 0..40u64 {
        cluster.client(ProcessId(i % 4)).dequeue().unwrap();
    }
    cluster.run_until_all_complete(30_000).unwrap();
    assert_eq!(cluster.history().len(), 80);
    // Every enqueue's element must come back out exactly once: dropped
    // deferred PUTs would surface as ⊥ dequeues here.
    assert_eq!(cluster.history().count_empty(), 0);
    check_queue(cluster.history()).assert_consistent();
}
