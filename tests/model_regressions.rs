//! Regression pins: counterexample scenarios from the model checker,
//! replayed against the real cluster.
//!
//! Each entry is a compact [`ReplayScenario`] (see
//! `skueue_sim::replay::ReplayScenario::to_compact`) that once witnessed —
//! or, for the mutation shapes, would witness under `--features
//! model-mutation` — a protocol bug.  Replaying them through
//! [`skueue_model::replay_on_cluster`] asserts exactly-once completion,
//! zero unmatched DHT replies at quiescence, and Definition 1 on the
//! resulting history, so a regression on any of these interleavings fails
//! loudly with the scenario string to reproduce it.

use skueue_model::replay_on_cluster;
use skueue_sim::replay::ReplayScenario;

/// `(name, compact scenario)` pins.
///
/// * `stale-update-over` — the shrunk trace of the model checker's mutation
///   gate (`crates/model/tests/mutation_gate.rs`): a join and a leave
///   back-to-back under reordering delivery, so the phase-1 `UpdateOver`
///   races the phase-2 `UpdateFlag` on a shared channel.
/// * `draining-forward` — a leaver with traffic still in flight, forcing
///   its draining role to forward messages to the absorber.
/// * `stranded-joiner` — a joiner whose responsible node leaves before the
///   integrating update phase (the PR-3 hand-over shape): the absorber must
///   inherit the joiner or it is stranded forever.
const PINNED: &[(&str, &str)] = &[
    ("stale-update-over", "P3 S65053 D2 | J L2"),
    ("draining-forward", "P4 S11 D3 | e1 e2 L1 r40 d2 d3"),
    ("stranded-joiner", "P3 S7 D2 | e1 J L1 r80 e3 d2"),
];

#[test]
fn pinned_counterexample_scenarios_replay_clean() {
    for (name, compact) in PINNED {
        let scenario = ReplayScenario::from_compact(compact)
            .unwrap_or_else(|e| panic!("{name}: bad pin `{compact}`: {e}"));
        let report =
            replay_on_cluster(&scenario).unwrap_or_else(|e| panic!("{name} (`{compact}`): {e}"));
        println!(
            "model-regression[{name}]: {} requests replayed clean",
            report.requests
        );
    }
}

/// Message-delivery choices do not exist at the cluster's API surface, so a
/// single replay covers one delivery schedule; sweeping the asynchronous
/// delivery seed re-creates the adversarial reordering around each pinned
/// shape.
#[test]
fn pinned_scenarios_survive_delivery_seed_sweep() {
    for (name, compact) in PINNED {
        let base = ReplayScenario::from_compact(compact)
            .unwrap_or_else(|e| panic!("{name}: bad pin `{compact}`: {e}"));
        for seed in 0..10u64 {
            let mut scenario = base.clone();
            scenario.seed = 0xA5A5_0000 ^ (seed.wrapping_mul(0x9E37_79B9));
            replay_on_cluster(&scenario)
                .unwrap_or_else(|e| panic!("{name} sweep seed {seed} (`{compact}`): {e}"));
        }
    }
}
