//! End-to-end coverage for generic payloads (`Skueue<T>`).
//!
//! Three guarantees are pinned here:
//!
//! 1. **`Skueue<u64>` is bit-identical to the pre-generics protocol.**  The
//!    golden fingerprints below were captured from the PR-4 tree (the last
//!    commit before payloads became generic) on the exact workloads of the
//!    determinism suite; the generic code must reproduce every record byte
//!    for byte — same order keys, same rounds, same payload slots.
//! 2. **Arbitrary byte payloads round-trip exactly once.**  A proptest
//!    drives `Skueue<Vec<u8>>` through join/leave churn under shuffled,
//!    reordering delivery and asserts exactly-once completion with
//!    byte-identical payload round-trips.
//! 3. **A non-trivial payload type works across every layer** — `String`
//!    jobs through a sharded queue, verified by `check_queue_sharded`
//!    (whose payload round-trip rule rejects any transformation).

use proptest::prelude::*;
use skueue::prelude::*;
use std::collections::{HashMap, HashSet};

// ---------------------------------------------------------------------------
// 1. Golden `Skueue<u64>` histories (captured at PR-4).
// ---------------------------------------------------------------------------

/// FNV-1a over every field of every record, in completion order.  Any change
/// to the witnessed history — order keys, latencies, payload slots, even the
/// `⊥` payload default — changes this value.
fn fingerprint(records: &[skueue_verify::OpRecord<u64>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for r in records {
        mix(r.id.origin.raw());
        mix(r.id.seq);
        mix(match r.kind {
            OpKind::Enqueue => 1,
            OpKind::Dequeue => 2,
        });
        mix(r.value);
        match r.result {
            skueue_verify::OpResult::Enqueued => mix(3),
            skueue_verify::OpResult::Empty => mix(4),
            skueue_verify::OpResult::Returned(src) => {
                mix(5);
                mix(src.origin.raw());
                mix(src.seq);
            }
        }
        mix(r.order.wave);
        mix(r.order.shard);
        mix(r.order.major);
        mix(r.order.origin);
        mix(r.order.minor);
        mix(r.issued_round);
        mix(r.completed_round);
    }
    h
}

/// The determinism suite's mixed workload with churn (see
/// `tests/determinism.rs`), pinned to `Skueue<u64>`.
fn run_golden_workload(
    seed: u64,
    asynchronous: bool,
    shards: usize,
) -> Vec<skueue_verify::OpRecord<u64>> {
    let mut builder = Skueue::<u64>::builder()
        .processes(6)
        .seed(seed)
        .shards(shards);
    if asynchronous {
        builder = builder.asynchronous(4);
    }
    let mut cluster = builder.build().unwrap();
    let mut rng = SimRng::new(seed ^ 0x0DD5EED);
    for step in 0..80u64 {
        let p = ProcessId(rng.gen_range(6));
        if cluster.process_may_issue(p) {
            let mut client = cluster.client(p);
            if rng.gen_bool(0.6) {
                client.enqueue(1000 + step).unwrap();
            } else {
                client.dequeue().unwrap();
            }
        }
        if step == 30 {
            cluster.join(None).unwrap();
        }
        if step == 60 {
            let _ = (0..6u64).map(ProcessId).find(|&p| cluster.leave(p).is_ok());
        }
        if step % 2 == 0 {
            cluster.run_round();
        }
    }
    cluster.run_until_all_complete(20_000).unwrap();
    cluster.run_rounds(50);
    cluster.into_history().into_records()
}

/// `(seed, asynchronous, shards, record count, fingerprint)` captured from
/// the PR-4 tree immediately before the generic-payload refactor.
const PR4_GOLDEN: [(u64, bool, usize, usize, u64); 4] = [
    (1, false, 1, 79, 0xdda0_5ed0_f746_3260),
    (42, false, 1, 76, 0x589e_fa91_cae5_393b),
    (7, true, 1, 78, 0x7112_7a98_aaa6_3df0),
    (5, false, 2, 74, 0xcd93_85cb_b03f_275a),
];

#[test]
fn u64_histories_are_bit_identical_to_pr4() {
    for (seed, asynchronous, shards, len, fp) in PR4_GOLDEN {
        let records = run_golden_workload(seed, asynchronous, shards);
        assert_eq!(
            records.len(),
            len,
            "record count drifted from PR-4 (seed {seed}, async {asynchronous}, S={shards})"
        );
        assert_eq!(
            fingerprint(&records),
            fp,
            "history fingerprint drifted from PR-4 (seed {seed}, async {asynchronous}, S={shards})"
        );
    }
}

// ---------------------------------------------------------------------------
// 2. Byte payloads under churn + shuffled delivery (proptest).
// ---------------------------------------------------------------------------

/// One churny `Skueue<Vec<u8>>` workload; returns the issued payloads (by
/// request id) and the completed records.
#[allow(clippy::type_complexity)]
fn run_bytes_workload(
    seed: u64,
    ops: &[(bool, Vec<u8>)],
    join_at: usize,
    leave_at: usize,
    max_delay: u64,
) -> (
    HashMap<RequestId, Vec<u8>>,
    Vec<skueue_verify::OpRecord<Vec<u8>>>,
) {
    let mut cluster = Skueue::<Vec<u8>>::builder()
        .processes(5)
        .asynchronous(max_delay)
        .seed(seed)
        .build()
        .unwrap();
    let mut rng = SimRng::new(seed ^ 0xB17E5);
    let mut issued = HashMap::new();
    for (step, (is_insert, payload)) in ops.iter().enumerate() {
        let p = ProcessId(rng.gen_range(5));
        if cluster.process_may_issue(p) {
            let mut client = cluster.client(p);
            let ticket = client.issue(*is_insert, payload.clone()).unwrap();
            if *is_insert {
                issued.insert(ticket.request_id(), payload.clone());
            }
        }
        if step == join_at {
            cluster.join(None).unwrap();
        }
        if step == leave_at {
            let _ = (0..5u64).map(ProcessId).find(|&p| cluster.leave(p).is_ok());
        }
        if step % 2 == 0 {
            cluster.run_round();
        }
    }
    cluster.run_until_all_complete(60_000).unwrap();
    cluster.run_rounds(60);
    (issued, cluster.into_history().into_records())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary `Vec<u8>` payloads survive join/leave churn under shuffled
    /// reordering delivery: every request completes exactly once, every
    /// returned element is returned exactly once, and every dequeue hands
    /// back the byte-identical payload its source enqueue inserted.
    #[test]
    fn prop_byte_payloads_round_trip_exactly_once(
        seed in 0u64..1_000,
        ops in proptest::collection::vec(
            (any::<bool>(), proptest::collection::vec(any::<u8>(), 0..24)),
            30..60,
        ),
        join_at in 5usize..20,
        leave_at in 25usize..50,
        max_delay in 2u64..5,
    ) {
        let (issued, records) = run_bytes_workload(seed, &ops, join_at, leave_at, max_delay);

        // Exactly once, no duplicates.
        let mut seen = HashSet::new();
        for r in &records {
            prop_assert!(seen.insert(r.id), "request {} completed twice", r.id);
        }
        let mut returned = HashSet::new();
        for r in &records {
            if let skueue_verify::OpResult::Returned(source) = r.result {
                prop_assert!(
                    returned.insert(source),
                    "element of {source} was returned twice"
                );
                // Byte-identical round-trip against the issue-side ledger
                // (independent of the checker's own payload rule).
                let sent = issued.get(&source).expect("source enqueue was issued");
                prop_assert_eq!(
                    &r.value, sent,
                    "payload of {} mutated in transit", source
                );
            }
        }

        // The checker agrees (its payload round-trip rule re-checks the
        // matched pairs from the history alone).
        let history = skueue_verify::History::from_records(records);
        prop_assert!(check_queue(&history).is_consistent());
    }
}

// ---------------------------------------------------------------------------
// 3. String jobs through a sharded queue, end to end.
// ---------------------------------------------------------------------------

#[test]
fn string_payloads_flow_through_a_sharded_queue() {
    let mut cluster = Skueue::<String>::builder()
        .processes(16)
        .shards(4)
        .seed(7)
        .build()
        .unwrap();
    let puts: Vec<OpTicket> = (0..32u64)
        .map(|i| {
            cluster
                .client(ProcessId(i % 16))
                .enqueue(format!("job-{i:04}"))
                .unwrap()
        })
        .collect();
    cluster.run_until_done(&puts, 5_000).unwrap();

    // One dequeue per enqueuing process drains each shard lane exactly.
    let gets: Vec<OpTicket> = (0..32u64)
        .map(|i| cluster.client(ProcessId(i % 16)).dequeue().unwrap())
        .collect();
    let outcomes = cluster.run_until_done(&gets, 5_000).unwrap();

    // A sharded queue is S FIFO lanes with lane selection by process: every
    // dequeue must return a job, and the multiset of returned jobs is
    // exactly the multiset enqueued.
    let mut got: Vec<String> = outcomes
        .iter()
        .map(|o| o.value().expect("every lane held a job"))
        .collect();
    got.sort();
    let want: Vec<String> = (0..32u64).map(|i| format!("job-{i:04}")).collect();
    assert_eq!(got, want, "every job string must round-trip exactly once");

    // Ticket outcomes expose the payload by borrow too (no clone needed).
    assert!(outcomes
        .iter()
        .all(|o| o.payload().is_some_and(|s| s.starts_with("job-"))));

    check_queue_sharded(cluster.history(), &cluster.shard_map()).assert_consistent();
}

#[test]
fn string_payload_stack_pops_lifo() {
    let mut cluster = Skueue::<String>::builder()
        .processes(4)
        .stack()
        .seed(3)
        .build()
        .unwrap();
    for i in 0..6u64 {
        let push = cluster
            .client(ProcessId(0))
            .push(format!("undo-{i}"))
            .unwrap();
        cluster.run_until_done(&[push], 2_000).unwrap();
    }
    for i in (0..6u64).rev() {
        let pop = cluster.client(ProcessId(1)).pop().unwrap();
        let outcome = cluster.run_until_done(&[pop], 2_000).unwrap().remove(0);
        assert_eq!(
            outcome.value().as_deref(),
            Some(format!("undo-{i}").as_str())
        );
    }
    check_stack(cluster.history()).assert_consistent();
}
