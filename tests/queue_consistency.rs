//! End-to-end integration tests: the distributed queue stays sequentially
//! consistent across crates, schedulers and workloads.

use skueue::prelude::*;

/// Random mixed workload on the synchronous scheduler, verified with both the
/// Definition 1 check and the sequential replay.
#[test]
fn random_workload_synchronous_is_consistent() {
    let mut cluster = SkueueCluster::queue(12, 0xFEED);
    let mut rng = SimRng::new(1);
    for step in 0..300u64 {
        let p = ProcessId(rng.gen_range(12));
        if rng.gen_bool(0.55) {
            cluster.enqueue(p, step).unwrap();
        } else {
            cluster.dequeue(p).unwrap();
        }
        if rng.gen_bool(0.3) {
            cluster.run_round();
        }
    }
    cluster.run_until_all_complete(10_000).unwrap();
    let history = cluster.history();
    assert_eq!(history.len(), 300);
    check_queue(history).assert_consistent();
}

/// The same protocol under asynchronous, non-FIFO delivery (the model the
/// correctness proof targets) — including adversarial straggler delays that
/// make GETs overtake their PUTs.
#[test]
fn random_workload_asynchronous_is_consistent() {
    for seed in [1u64, 2, 3] {
        let mut cluster = skueue::core::SkueueCluster::new(
            8,
            skueue::core::ProtocolConfig::queue(),
            SimConfig::asynchronous(seed, 4),
        )
        .unwrap();
        let mut rng = SimRng::new(seed ^ 0xABCD);
        for step in 0..150u64 {
            let p = ProcessId(rng.gen_range(8));
            if rng.gen_bool(0.5) {
                cluster.enqueue(p, step).unwrap();
            } else {
                cluster.dequeue(p).unwrap();
            }
            if rng.gen_bool(0.25) {
                cluster.run_round();
            }
        }
        cluster.run_until_all_complete(60_000).unwrap();
        check_queue(cluster.history()).assert_consistent();
    }
}

/// Heavy adversarial reordering: half of all messages are delayed by 25
/// rounds. GET-before-PUT races must all resolve.
#[test]
fn adversarial_delays_do_not_break_consistency() {
    let mut sim_cfg = SimConfig::synchronous(7);
    sim_cfg.delivery = skueue::sim::DeliveryModel::Adversarial {
        straggle_prob: 0.5,
        straggle_delay: 25,
    };
    sim_cfg.shuffle_node_order = true;
    let mut cluster =
        skueue::core::SkueueCluster::new(6, skueue::core::ProtocolConfig::queue(), sim_cfg)
            .unwrap();
    for i in 0..60u64 {
        cluster.enqueue(ProcessId(i % 6), i).unwrap();
    }
    for i in 0..60u64 {
        cluster.dequeue(ProcessId((i + 3) % 6)).unwrap();
    }
    cluster.run_until_all_complete(100_000).unwrap();
    let history = cluster.history();
    assert_eq!(history.count_empty(), 0, "every element must be found despite reordering");
    check_queue(history).assert_consistent();
}

/// FIFO across processes: elements come out in exactly the order the anchor
/// serialised them, even when enqueues and dequeues interleave heavily.
#[test]
fn fifo_order_is_globally_respected() {
    let mut cluster = SkueueCluster::queue(10, 3);
    // Burst of enqueues, fully drained, then burst of dequeues.
    for i in 0..50u64 {
        cluster.enqueue(ProcessId(i % 10), i).unwrap();
    }
    cluster.run_until_all_complete(5_000).unwrap();
    for i in 0..50u64 {
        cluster.dequeue(ProcessId((i * 3) % 10)).unwrap();
    }
    cluster.run_until_all_complete(5_000).unwrap();
    let history = cluster.history();
    check_queue(history).assert_consistent();
    assert_eq!(history.count_empty(), 0);
    // Anchor window must be empty again.
    assert_eq!(cluster.anchor_state().unwrap().size(), 0);
}

/// The fixed-rate workload of Figure 2 at a small scale: consistency plus the
/// logarithmic latency shape (larger systems are only mildly slower).
#[test]
fn figure2_shape_holds_at_small_scale() {
    let small = run_fixed_rate(
        ScenarioParams::fixed_rate(25, Mode::Queue, 0.5).with_generation_rounds(40),
    );
    let large = run_fixed_rate(
        ScenarioParams::fixed_rate(200, Mode::Queue, 0.5).with_generation_rounds(40),
    );
    assert!(small.consistent && large.consistent);
    // 8x more processes but far less than 8x the latency (Theorem 15).
    assert!(
        large.avg_rounds_per_request < small.avg_rounds_per_request * 4.0,
        "small={}, large={}",
        small.avg_rounds_per_request,
        large.avg_rounds_per_request
    );
    // Dequeue-only workloads are the fastest configuration (Fig. 2 bottom curve).
    let deq_only = run_fixed_rate(
        ScenarioParams::fixed_rate(200, Mode::Queue, 0.0).with_generation_rounds(40),
    );
    assert!(deq_only.avg_rounds_per_request <= large.avg_rounds_per_request + 1.0);
}

/// Batch sizes stay small (Theorem 18): even at one request per process per
/// round, batches remain O(log n)-ish rather than proportional to the load.
#[test]
fn batch_sizes_stay_bounded_under_full_load() {
    let result = run_per_node_rate(
        ScenarioParams::per_node_rate(60, Mode::Queue, 1.0).with_generation_rounds(30),
    );
    assert!(result.consistent);
    assert!(
        result.max_batch_size < 60,
        "batch size {} should stay well below the per-wave request volume",
        result.max_batch_size
    );
}

/// Fairness (Corollary 19): stored elements spread evenly over nodes.
#[test]
fn element_distribution_is_fair() {
    let mut cluster = SkueueCluster::queue(16, 21);
    for i in 0..800u64 {
        cluster.enqueue(ProcessId(i % 16), i).unwrap();
        if i % 20 == 0 {
            cluster.run_round();
        }
    }
    cluster.run_until_all_complete(20_000).unwrap();
    let fairness = cluster.fairness().unwrap();
    assert_eq!(fairness.total, 800);
    assert!(fairness.max_over_mean < 5.0, "imbalance {:.2}", fairness.max_over_mean);
}
