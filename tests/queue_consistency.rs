//! End-to-end integration tests: the distributed queue stays sequentially
//! consistent across crates, schedulers and workloads — all driven through
//! the builder + ticket API.

use skueue::prelude::*;

/// Random mixed workload on the synchronous scheduler, verified with both the
/// Definition 1 check and the sequential replay.
#[test]
fn random_workload_synchronous_is_consistent() {
    let mut cluster = Skueue::builder()
        .processes(12)
        .seed(0xFEED)
        .build()
        .unwrap();
    let mut rng = SimRng::new(1);
    let mut tickets = Vec::new();
    for step in 0..300u64 {
        let p = ProcessId(rng.gen_range(12));
        let mut client = cluster.client(p);
        tickets.push(if rng.gen_bool(0.55) {
            client.enqueue(step).unwrap()
        } else {
            client.dequeue().unwrap()
        });
        if rng.gen_bool(0.3) {
            cluster.run_round();
        }
    }
    let outcomes = cluster.run_until_done(&tickets, 10_000).unwrap();
    assert_eq!(outcomes.len(), 300);
    assert_eq!(cluster.history().len(), 300);
    check_queue(cluster.history()).assert_consistent();
}

/// The same protocol under asynchronous, non-FIFO delivery (the model the
/// correctness proof targets) — including adversarial straggler delays that
/// make GETs overtake their PUTs.
#[test]
fn random_workload_asynchronous_is_consistent() {
    for seed in [1u64, 2, 3] {
        let mut cluster = Skueue::builder()
            .processes(8)
            .asynchronous(4)
            .seed(seed)
            .build()
            .unwrap();
        let mut rng = SimRng::new(seed ^ 0xABCD);
        for step in 0..150u64 {
            let p = ProcessId(rng.gen_range(8));
            let mut client = cluster.client(p);
            if rng.gen_bool(0.5) {
                client.enqueue(step).unwrap();
            } else {
                client.dequeue().unwrap();
            }
            if rng.gen_bool(0.25) {
                cluster.run_round();
            }
        }
        cluster.run_until_all_complete(60_000).unwrap();
        check_queue(cluster.history()).assert_consistent();
    }
}

/// Heavy adversarial reordering: half of all messages are delayed by 25
/// rounds. GET-before-PUT races must all resolve.
#[test]
fn adversarial_delays_do_not_break_consistency() {
    let mut cluster = Skueue::builder()
        .processes(6)
        .seed(7)
        .delivery(DeliveryModel::Adversarial {
            straggle_prob: 0.5,
            straggle_delay: 25,
        })
        .shuffle_node_order(true)
        .build()
        .unwrap();
    for i in 0..60u64 {
        cluster.client(ProcessId(i % 6)).enqueue(i).unwrap();
    }
    let gets: Vec<OpTicket> = (0..60u64)
        .map(|i| cluster.client(ProcessId((i + 3) % 6)).dequeue().unwrap())
        .collect();
    let outcomes = cluster.run_until_done(&gets, 100_000).unwrap();
    assert!(
        outcomes.iter().all(|o| !o.is_empty()),
        "every element must be found despite reordering"
    );
    check_queue(cluster.history()).assert_consistent();
}

/// FIFO across processes, observed purely through ticket outcomes.  Enqueues
/// that are fully drained before the next one is issued have a fixed place
/// in `≺`, so sequential dequeues must return them in exactly that order;
/// concurrent same-wave enqueues are serialised by the anchor in *some*
/// order, so a concurrent drain must return them exactly once each.
#[test]
fn fifo_order_is_globally_respected() {
    let mut cluster = Skueue::builder().processes(10).seed(3).build().unwrap();
    // Phase 1: ten enqueues, each drained before the next is issued — their
    // queue order equals their issue order.
    for i in 0..10u64 {
        let put = cluster.client(ProcessId(i % 10)).enqueue(i).unwrap();
        cluster.run_until_done(&[put], 5_000).unwrap();
    }
    // One dequeue at a time: each must return exactly the next value.
    for expected in 0..10u64 {
        let get = cluster
            .client(ProcessId((expected * 3) % 10))
            .dequeue()
            .unwrap();
        let outcome = cluster.run_until_done(&[get], 5_000).unwrap().remove(0);
        assert_eq!(outcome.value(), Some(expected), "strict FIFO order");
    }
    // Phase 2: a concurrent burst of enqueues, then a concurrent drain —
    // every element comes out exactly once, none is lost.
    let puts: Vec<OpTicket> = (100..140u64)
        .map(|i| cluster.client(ProcessId(i % 10)).enqueue(i).unwrap())
        .collect();
    cluster.run_until_done(&puts, 5_000).unwrap();
    let gets: Vec<OpTicket> = (0..40u64)
        .map(|i| cluster.client(ProcessId((i * 3) % 10)).dequeue().unwrap())
        .collect();
    let outcomes = cluster.run_until_done(&gets, 5_000).unwrap();
    let mut drained: Vec<u64> = outcomes
        .iter()
        .map(|o| o.value().expect("queue held 40 elements"))
        .collect();
    drained.sort_unstable();
    assert_eq!(drained, (100..140u64).collect::<Vec<_>>());
    check_queue(cluster.history()).assert_consistent();
    // Anchor window must be empty again.
    assert_eq!(cluster.anchor_state().unwrap().size(), 0);
}

/// The completion stream sees every operation exactly once, and rebuilding a
/// history from the events matches the cluster's own history.
#[test]
fn completion_stream_rebuilds_the_history() {
    use std::cell::RefCell;
    use std::rc::Rc;

    let mut cluster = Skueue::builder().processes(6).seed(0xE7).build().unwrap();
    let events: Rc<RefCell<Vec<CompletionEvent>>> = Rc::default();
    let sink = Rc::clone(&events);
    cluster.on_complete(move |event| sink.borrow_mut().push(event.clone()));

    let mut tickets = Vec::new();
    for i in 0..40u64 {
        tickets.push(cluster.client(ProcessId(i % 6)).enqueue(i).unwrap());
        if i % 2 == 0 {
            tickets.push(cluster.client(ProcessId((i + 1) % 6)).dequeue().unwrap());
        }
    }
    cluster.run_until_done(&tickets, 10_000).unwrap();

    let events = events.borrow();
    assert_eq!(events.len(), tickets.len(), "one event per operation");
    // Every ticket's outcome matches what its event reported.
    for event in events.iter() {
        assert_eq!(cluster.outcome(event.ticket), Some(event.outcome.clone()));
    }
    // A history rebuilt from the event stream is checker-equivalent.
    let rebuilt: History = events.iter().map(|e| e.record.clone()).collect();
    assert_eq!(rebuilt.len(), cluster.history().len());
    check_queue(&rebuilt).assert_consistent();
    check_queue(cluster.history()).assert_consistent();
}

/// The fixed-rate workload of Figure 2 at a small scale: consistency plus the
/// logarithmic latency shape (larger systems are only mildly slower).
#[test]
fn figure2_shape_holds_at_small_scale() {
    let small =
        run_fixed_rate(ScenarioParams::fixed_rate(25, Mode::Queue, 0.5).with_generation_rounds(40));
    let large = run_fixed_rate(
        ScenarioParams::fixed_rate(200, Mode::Queue, 0.5).with_generation_rounds(40),
    );
    assert!(small.consistent && large.consistent);
    // 8x more processes but far less than 8x the latency (Theorem 15).
    assert!(
        large.avg_rounds_per_request < small.avg_rounds_per_request * 4.0,
        "small={}, large={}",
        small.avg_rounds_per_request,
        large.avg_rounds_per_request
    );
    // Dequeue-only workloads are the fastest configuration (Fig. 2 bottom curve).
    let deq_only = run_fixed_rate(
        ScenarioParams::fixed_rate(200, Mode::Queue, 0.0).with_generation_rounds(40),
    );
    assert!(deq_only.avg_rounds_per_request <= large.avg_rounds_per_request + 1.0);
}

/// Batch sizes stay small (Theorem 18): even at one request per process per
/// round, batches remain O(log n)-ish rather than proportional to the load.
#[test]
fn batch_sizes_stay_bounded_under_full_load() {
    let result = run_per_node_rate(
        ScenarioParams::per_node_rate(60, Mode::Queue, 1.0).with_generation_rounds(30),
    );
    assert!(result.consistent);
    assert!(
        result.max_batch_size < 60,
        "batch size {} should stay well below the per-wave request volume",
        result.max_batch_size
    );
}

/// Fairness (Corollary 19): stored elements spread evenly over nodes.
#[test]
fn element_distribution_is_fair() {
    let mut cluster = Skueue::builder().processes(16).seed(21).build().unwrap();
    for i in 0..800u64 {
        cluster.client(ProcessId(i % 16)).enqueue(i).unwrap();
        if i % 20 == 0 {
            cluster.run_round();
        }
    }
    cluster.run_until_all_complete(20_000).unwrap();
    let fairness = cluster.fairness().unwrap();
    assert_eq!(fairness.total, 800);
    assert!(
        fairness.max_over_mean < 5.0,
        "imbalance {:.2}",
        fairness.max_over_mean
    );
}
