//! Determinism regression tests for the bucketed scheduler.
//!
//! The PR-2 hot-loop rework (delivery wheel, wake flags, scratch reuse)
//! must preserve the simulator's core contract: for a fixed seed and driver
//! sequence, a run is bit-for-bit reproducible.  These tests run the same
//! seeded workload twice and assert that the resulting `History` (operation
//! order, latencies, payloads) and the substrate metrics (per-round delivery
//! counts, message totals, visits) are identical.

use skueue_core::Skueue;
use skueue_sim::ids::ProcessId;
use skueue_sim::{SimMetrics, SimRng};
use skueue_verify::{check_queue, OpRecord};

/// One seeded mixed workload with churn; returns everything an identical
/// re-run must reproduce exactly.
fn run_workload(seed: u64, asynchronous: bool) -> (Vec<OpRecord>, SimMetrics) {
    let mut builder = Skueue::builder().processes(6).seed(seed);
    if asynchronous {
        builder = builder.asynchronous(4);
    }
    let mut cluster = builder.build().unwrap();
    let mut rng = SimRng::new(seed ^ 0x0DD5EED);
    for step in 0..80u64 {
        let p = ProcessId(rng.gen_range(6));
        if cluster.process_may_issue(p) {
            let mut client = cluster.client(p);
            if rng.gen_bool(0.6) {
                client.enqueue(1000 + step).unwrap();
            } else {
                client.dequeue().unwrap();
            }
        }
        if step == 30 {
            cluster.join(None).unwrap();
        }
        if step == 60 {
            // Leave whichever early process is allowed to (not the anchor).
            let _ = (0..6u64).map(ProcessId).find(|&p| cluster.leave(p).is_ok());
        }
        if step % 2 == 0 {
            cluster.run_round();
        }
    }
    cluster.run_until_all_complete(20_000).unwrap();
    // A few extra rounds so membership transitions settle identically.
    cluster.run_rounds(50);
    assert!(
        cluster.waves_in_flight_histogram().max().unwrap_or(0) >= 2,
        "determinism must hold with at least two aggregation waves in flight"
    );
    let metrics = cluster.sim_metrics().clone();
    let history = cluster.into_history();
    (history.records().to_vec(), metrics)
}

fn assert_identical(seed: u64, asynchronous: bool) {
    let (records_a, metrics_a) = run_workload(seed, asynchronous);
    let (records_b, metrics_b) = run_workload(seed, asynchronous);
    // Byte-identical history: same records, same completion order, same
    // order keys and latencies.
    assert_eq!(records_a, records_b, "history must be reproducible");
    assert!(!records_a.is_empty());
    // Identical substrate behaviour round for round.
    assert_eq!(metrics_a.messages_sent, metrics_b.messages_sent);
    assert_eq!(metrics_a.messages_delivered, metrics_b.messages_delivered);
    assert_eq!(metrics_a.timeouts_fired, metrics_b.timeouts_fired);
    assert_eq!(metrics_a.nodes_visited, metrics_b.nodes_visited);
    assert_eq!(metrics_a.rounds, metrics_b.rounds);
    assert_eq!(
        metrics_a.per_round_deliveries, metrics_b.per_round_deliveries,
        "per-round delivery counts must be reproducible"
    );
    assert_eq!(metrics_a.delays, metrics_b.delays);
}

#[test]
fn synchronous_runs_are_bit_identical_per_seed() {
    for seed in [1u64, 42, 0xFEED] {
        assert_identical(seed, false);
    }
}

#[test]
fn asynchronous_shuffled_runs_are_bit_identical_per_seed() {
    for seed in [7u64, 99] {
        assert_identical(seed, true);
    }
}

#[test]
fn different_seeds_differ_and_stay_consistent() {
    let (records_a, _) = run_workload(5, false);
    let (records_b, _) = run_workload(6, false);
    assert_ne!(
        records_a, records_b,
        "different seeds should produce different schedules"
    );
    // And each run is still a sequentially consistent queue execution.
    let history = skueue_verify::History::from_records(records_a);
    check_queue(&history).assert_consistent();
}
