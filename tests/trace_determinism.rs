//! Trace determinism and span-tree well-formedness.
//!
//! The lifecycle recorder (`skueue-trace`) stamps events with simulation
//! rounds and merges lane-local buffers in the driver's deterministic
//! completion-sweep order, so for a given seed the merged log — and the
//! Chrome trace rendered from it — must be **byte-identical** across worker
//! thread counts and across repeated runs.  Tracing is observation-only:
//! enabling it must not perturb the history (the PR-4 golden fingerprint has
//! to survive with `TraceLevel::Full` on).
//!
//! On top of determinism, every completed op's span tree must be well-formed
//! (issue ≤ wave-join ≤ assignment ≤ DHT boundaries ≤ completion, and at
//! `Full` level one `DhtHop` event per hop counted at the apply site), with
//! zero orphan spans at quiescence.

use proptest::prelude::*;
use skueue::prelude::*;
use skueue::trace::validate_json;

/// FNV-1a over every field of every record — the same fingerprint as
/// `tests/parallel_backend.rs`, so a traced run can be compared against the
/// pinned PR-4 golden.
fn history_fingerprint(records: &[skueue_verify::OpRecord<u64>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for r in records {
        mix(r.id.origin.raw());
        mix(r.id.seq);
        mix(match r.kind {
            OpKind::Enqueue => 1,
            OpKind::Dequeue => 2,
        });
        mix(r.value);
        match r.result {
            skueue_verify::OpResult::Enqueued => mix(3),
            skueue_verify::OpResult::Empty => mix(4),
            skueue_verify::OpResult::Returned(src) => {
                mix(5);
                mix(src.origin.raw());
                mix(src.seq);
            }
        }
        mix(r.order.wave);
        mix(r.order.shard);
        mix(r.order.major);
        mix(r.order.origin);
        mix(r.order.minor);
        mix(r.issued_round);
        mix(r.completed_round);
    }
    h
}

/// Everything a traced run produces that the determinism contract covers.
struct TracedRun {
    records: Vec<skueue_verify::OpRecord<u64>>,
    trace_fingerprint: u64,
    trace_len: usize,
    chrome: String,
    analysis: TraceAnalysis,
    /// Sum of the nodes' `dht_hops` histograms at quiescence.
    hop_histogram_sum: u64,
}

/// The parallel-backend determinism workload (80 steps, optional churn at
/// steps 30/60), with lifecycle tracing at the given level.
fn run_traced_workload(
    seed: u64,
    shards: usize,
    processes: u64,
    threads: usize,
    level: TraceLevel,
    churn: bool,
) -> TracedRun {
    let mut cluster = Skueue::<u64>::builder()
        .processes(processes as usize)
        .seed(seed)
        .shards(shards)
        .threads(threads)
        .trace(level)
        .build()
        .unwrap();
    let mut rng = SimRng::new(seed ^ 0x0DD5EED);
    for step in 0..80u64 {
        let p = ProcessId(rng.gen_range(processes));
        if cluster.process_may_issue(p) {
            let mut client = cluster.client(p);
            if rng.gen_bool(0.6) {
                client.enqueue(1000 + step).unwrap();
            } else {
                client.dequeue().unwrap();
            }
        }
        if churn && step == 30 {
            cluster.join(None).unwrap();
        }
        if churn && step == 60 {
            let _ = (0..processes)
                .map(ProcessId)
                .find(|&p| cluster.leave(p).is_ok());
        }
        if step % 2 == 0 {
            cluster.run_round();
        }
    }
    cluster.run_until_all_complete(20_000).unwrap();
    cluster.run_rounds(50);
    TracedRun {
        trace_fingerprint: cluster.trace_log().fingerprint(),
        trace_len: cluster.trace_log().len(),
        chrome: cluster.export_chrome_trace(),
        analysis: cluster.trace_analysis(),
        hop_histogram_sum: cluster.dht_hop_histogram().sum() as u64,
        records: cluster.into_history().into_records(),
    }
}

#[test]
fn traces_are_byte_identical_across_thread_counts_and_reruns() {
    for seed in [1u64, 42] {
        let reference = run_traced_workload(seed, 4, 12, 1, TraceLevel::Full, true);
        assert!(reference.trace_len > 0, "traced run recorded nothing");
        // Rerun on the single-threaded backend: bit-for-bit repeatable.
        let again = run_traced_workload(seed, 4, 12, 1, TraceLevel::Full, true);
        assert_eq!(reference.trace_fingerprint, again.trace_fingerprint);
        assert_eq!(reference.chrome, again.chrome);
        // Parallel backends: same merged log, same rendered trace.
        for threads in [2usize, 4] {
            let par = run_traced_workload(seed, 4, 12, threads, TraceLevel::Full, true);
            assert_eq!(reference.trace_len, par.trace_len, "T={threads}");
            assert_eq!(
                reference.trace_fingerprint, par.trace_fingerprint,
                "trace log diverged (seed {seed}, T={threads})"
            );
            assert_eq!(
                reference.chrome, par.chrome,
                "chrome export diverged (seed {seed}, T={threads})"
            );
        }
    }
}

#[test]
fn tracing_is_observation_only_pr4_golden_survives_full_tracing() {
    // The pinned PR-4 sharded golden (seed 5, sync, S=2, T=4) must be
    // untouched by full tracing: same 74 records, same fingerprint.
    let run = run_traced_workload(5, 2, 6, 4, TraceLevel::Full, true);
    assert_eq!(run.records.len(), 74);
    assert_eq!(history_fingerprint(&run.records), 0xcd93_85cb_b03f_275a);
    // And the traced spans account for exactly those 74 completions.
    assert_eq!(run.analysis.completed_count(), 74);
}

#[test]
fn off_level_records_nothing() {
    let run = run_traced_workload(7, 2, 6, 1, TraceLevel::Off, true);
    assert_eq!(run.trace_len, 0);
    assert!(run.analysis.spans().is_empty());
    assert!(!run.records.is_empty());
}

#[test]
fn span_trees_are_well_formed_with_no_orphans_at_quiescence() {
    for (seed, shards, processes, churn) in [(3u64, 2usize, 8u64, true), (11, 4, 12, false)] {
        let run = run_traced_workload(seed, shards, processes, 1, TraceLevel::Full, churn);
        assert_eq!(
            run.analysis.shape_violation(),
            None,
            "seed {seed} S={shards}"
        );
        assert_eq!(run.analysis.orphan_count(), 0, "seed {seed} S={shards}");
        assert_eq!(
            run.analysis.completed_count(),
            run.records.len(),
            "one completed span per history record (seed {seed})"
        );
    }
}

#[test]
fn hop_events_match_the_dht_hop_histogram() {
    // Churn-free so no node (and no histogram shard) leaves the cluster
    // between recording and the quiescent read-back.
    let run = run_traced_workload(9, 4, 12, 4, TraceLevel::Full, false);
    assert!(run.analysis.hop_events_recorded());
    assert_eq!(
        run.analysis.total_hops(),
        run.hop_histogram_sum,
        "per-span hop totals must agree with the nodes' dht_hops histograms"
    );
}

#[test]
fn chrome_export_is_valid_json_with_per_op_slices() {
    let run = run_traced_workload(13, 2, 8, 2, TraceLevel::Spans, true);
    assert!(
        validate_json(&run.chrome),
        "chrome export must parse as JSON"
    );
    // One complete `"cat":"op"` slice per completed op.
    let slices = run.chrome.matches("\"cat\":\"op\"").count();
    assert_eq!(slices, run.analysis.completed_count());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary op mixes: every completed span tree stays well-formed and
    /// nothing is orphaned once the cluster quiesces.
    #[test]
    fn arbitrary_workloads_produce_well_formed_spans(
        seed in 0u64..1000,
        ops in proptest::collection::vec(any::<bool>(), 20..60),
    ) {
        let mut cluster = Skueue::<u64>::builder()
            .processes(6)
            .seed(seed)
            .shards(2)
            .trace(TraceLevel::Full)
            .build()
            .unwrap();
        for (i, &enq) in ops.iter().enumerate() {
            let p = ProcessId((i as u64) % 6);
            let mut client = cluster.client(p);
            if enq {
                client.enqueue(i as u64).unwrap();
            } else {
                client.dequeue().unwrap();
            }
            if i % 3 == 0 {
                cluster.run_round();
            }
        }
        cluster.run_until_all_complete(20_000).unwrap();
        cluster.run_rounds(50);
        let analysis = cluster.trace_analysis();
        prop_assert_eq!(analysis.shape_violation(), None);
        prop_assert_eq!(analysis.orphan_count(), 0);
        prop_assert_eq!(analysis.completed_count(), ops.len());
        prop_assert_eq!(analysis.completed_count(), cluster.history().len());
    }
}
