//! The asynchronous join/leave churn sweep.
//!
//! PR 3 fixed a family of membership races (sibling-status corruption via
//! draining forwards, stale `UpdateOver`, stranded joiners on absorb) that
//! only reproduce under *reordering* delivery with churn injected at
//! unlucky points of the schedule.  This sweep drives a seeded mixed
//! workload over a grid of `(seed, max_delay, churn schedule)` combos under
//! asynchronous shuffled delivery and asserts exactly-once completion plus
//! sequential consistency for every combo.
//!
//! Two sizes:
//!
//! * the default `#[ignore]`d test is the **reduced, seed-pinned ~60-combo
//!   slice CI runs on every push** (`cargo test --release --test
//!   churn_sweep -- --ignored`, under `timeout 120` in the workflow);
//! * setting `SKUEUE_CHURN_SWEEP=full` widens the same grid to the
//!   1000+-combo sweep used when touching the membership protocol itself.

use skueue::prelude::*;
use std::collections::HashSet;

/// One sweep combo: a 44-step mixed workload over 5 processes with one join
/// and one leave injected mid-run, under asynchronous shuffled delivery.
/// Panics (failing the sweep) on lost/duplicated requests, double-returned
/// elements, or an inconsistent history.
fn run_combo(seed: u64, max_delay: u64, join_at: usize, leave_at: usize) {
    let mut cluster = Skueue::<u64>::builder()
        .processes(5)
        .asynchronous(max_delay)
        .seed(seed)
        .trace(TraceLevel::Spans)
        .build()
        .unwrap();
    let mut rng = SimRng::new(seed ^ 0xC0DE);
    let mut issued = 0u64;
    for step in 0..44usize {
        let p = ProcessId(rng.gen_range(5));
        if cluster.process_may_issue(p) {
            let mut client = cluster.client(p);
            if rng.gen_bool(0.6) {
                client.enqueue(step as u64).unwrap();
            } else {
                client.dequeue().unwrap();
            }
            issued += 1;
        }
        if step == join_at {
            cluster.join(None).unwrap();
        }
        if step == leave_at {
            let _ = (0..5u64).map(ProcessId).find(|&p| cluster.leave(p).is_ok());
        }
        if step % 2 == 0 {
            cluster.run_round();
        }
    }
    cluster.run_until_all_complete(60_000).unwrap_or_else(|e| {
        panic!("combo seed={seed} delay={max_delay} join@{join_at} leave@{leave_at}: {e}")
    });
    cluster.run_rounds(60);
    assert_eq!(
        cluster.unmatched_dht_replies(),
        0,
        "combo seed={seed} delay={max_delay} join@{join_at} leave@{leave_at}: \
         every DHT reply must be matched to an open request at quiescence"
    );
    // Companion invariant of the reply check, one layer up: if every DHT
    // reply found its open request, every issued span must also have closed.
    let analysis = cluster.trace_analysis();
    assert_eq!(
        analysis.orphan_count(),
        0,
        "combo seed={seed} delay={max_delay} join@{join_at} leave@{leave_at}: \
         zero unmatched DHT replies must imply zero orphan trace spans"
    );
    if let Some(violation) = analysis.shape_violation() {
        panic!(
            "combo seed={seed} delay={max_delay} join@{join_at} leave@{leave_at}: \
             malformed trace span: {violation}"
        );
    }

    let records = cluster.into_history().into_records();
    assert_eq!(
        records.len() as u64,
        issued,
        "combo seed={seed} delay={max_delay} join@{join_at} leave@{leave_at}: \
         every request must complete exactly once"
    );
    let mut seen = HashSet::new();
    let mut returned = HashSet::new();
    for r in &records {
        assert!(seen.insert(r.id), "request {} completed twice", r.id);
        if let skueue_verify::OpResult::Returned(source) = r.result {
            assert!(
                returned.insert(source),
                "element of {source} returned twice (seed={seed} delay={max_delay})"
            );
        }
    }
    let history = skueue_verify::History::from_records(records);
    assert!(
        check_queue(&history).is_consistent(),
        "combo seed={seed} delay={max_delay} join@{join_at} leave@{leave_at} inconsistent"
    );
}

/// The sweep grid.  Reduced (default): 5 seeds × 3 delays × 4 schedules =
/// 60 combos, seed-pinned so every CI run covers the identical slice.
/// Full (`SKUEUE_CHURN_SWEEP=full`): 30 seeds × 4 delays × 9 schedules =
/// 1080 combos.
fn sweep_grid() -> (Vec<u64>, Vec<u64>, Vec<(usize, usize)>) {
    let full = std::env::var("SKUEUE_CHURN_SWEEP").as_deref() == Ok("full");
    if full {
        let seeds: Vec<u64> = (0..30).map(|i| 101 + 37 * i).collect();
        let delays = vec![2, 3, 4, 5];
        let schedules = vec![
            (3, 24),
            (5, 28),
            (7, 30),
            (9, 33),
            (11, 36),
            (13, 22),
            (15, 26),
            (17, 38),
            (19, 40),
        ];
        (seeds, delays, schedules)
    } else {
        let seeds = vec![101, 138, 175, 212, 249];
        let delays = vec![2, 3, 5];
        let schedules = vec![(5, 28), (9, 33), (13, 22), (17, 38)];
        (seeds, delays, schedules)
    }
}

/// Run with `cargo test --release --test churn_sweep -- --ignored` (what the
/// dedicated CI step does, under `timeout 120`); it is `#[ignore]`d so the
/// ordinary `cargo test` job does not pay for it twice.
#[test]
#[ignore = "runs as its own CI step (timeout-bounded); use -- --ignored"]
fn async_join_leave_churn_sweep() {
    let (seeds, delays, schedules) = sweep_grid();
    let mut combos = 0u32;
    for &seed in &seeds {
        for &delay in &delays {
            for &(join_at, leave_at) in &schedules {
                run_combo(seed, delay, join_at, leave_at);
                combos += 1;
            }
        }
    }
    println!("churn sweep OK: {combos} combos survived");
    assert!(combos >= 60, "the reduced slice must cover ≥ 60 combos");
}

/// A non-ignored single combo so the plain test job still smoke-covers the
/// sweep machinery itself (grid construction + one full combo).
#[test]
fn churn_sweep_single_combo_smoke() {
    run_combo(101, 3, 9, 33);
}
