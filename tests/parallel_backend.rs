//! Cross-backend determinism: the parallel execution backend must produce
//! **byte-identical** histories to the single-threaded one — every seed,
//! every delivery model, every shard count, churn included.
//!
//! The whole point of the lane/epoch-merge design (lanes run identical code,
//! merges happen in fixed `(wave, shard, local)` / lane order, each lane owns
//! an independent RNG stream) is that `.threads(n)` is a pure wall-clock
//! knob.  These tests pin that contract with the same FNV fingerprint the
//! PR-4 goldens use, so a divergence reports the exact workload that broke.

use skueue::prelude::*;

/// FNV-1a over every field of every record, in completion order (the same
/// fingerprint as `tests/generic_payloads.rs`).
fn fingerprint(records: &[skueue_verify::OpRecord<u64>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for r in records {
        mix(r.id.origin.raw());
        mix(r.id.seq);
        mix(match r.kind {
            OpKind::Enqueue => 1,
            OpKind::Dequeue => 2,
        });
        mix(r.value);
        match r.result {
            skueue_verify::OpResult::Enqueued => mix(3),
            skueue_verify::OpResult::Empty => mix(4),
            skueue_verify::OpResult::Returned(src) => {
                mix(5);
                mix(src.origin.raw());
                mix(src.seq);
            }
        }
        mix(r.order.wave);
        mix(r.order.shard);
        mix(r.order.major);
        mix(r.order.origin);
        mix(r.order.minor);
        mix(r.issued_round);
        mix(r.completed_round);
    }
    h
}

/// The determinism suite's mixed workload with churn (join at step 30, leave
/// at step 60), on a configurable backend.  Returns `(records, sim rounds,
/// messages sent, messages delivered)` — the fingerprint covers the records,
/// the extra fields catch substrate-level divergence that happens to cancel
/// out in the history.
fn run_workload(
    seed: u64,
    asynchronous: bool,
    shards: usize,
    processes: u64,
    threads: usize,
) -> (Vec<skueue_verify::OpRecord<u64>>, u64, u64, u64) {
    let mut builder = Skueue::<u64>::builder()
        .processes(processes as usize)
        .seed(seed)
        .shards(shards)
        .threads(threads);
    if asynchronous {
        builder = builder.asynchronous(4);
    }
    let mut cluster = builder.build().unwrap();
    let mut rng = SimRng::new(seed ^ 0x0DD5EED);
    for step in 0..80u64 {
        let p = ProcessId(rng.gen_range(processes));
        if cluster.process_may_issue(p) {
            let mut client = cluster.client(p);
            if rng.gen_bool(0.6) {
                client.enqueue(1000 + step).unwrap();
            } else {
                client.dequeue().unwrap();
            }
        }
        if step == 30 {
            cluster.join(None).unwrap();
        }
        if step == 60 {
            let _ = (0..processes)
                .map(ProcessId)
                .find(|&p| cluster.leave(p).is_ok());
        }
        if step % 2 == 0 {
            cluster.run_round();
        }
    }
    cluster.run_until_all_complete(20_000).unwrap();
    cluster.run_rounds(50);
    let rounds = cluster.sim_metrics().rounds;
    let sent = cluster.sim_metrics().messages_sent;
    let delivered = cluster.sim_metrics().messages_delivered;
    (
        cluster.into_history().into_records(),
        rounds,
        sent,
        delivered,
    )
}

/// Runs one workload on the single-threaded backend and on the parallel
/// backend with 2 and 4 worker threads, and asserts all three histories are
/// byte-identical.
fn assert_cross_backend_identical(seed: u64, asynchronous: bool, shards: usize, processes: u64) {
    let (records, rounds, sent, delivered) = run_workload(seed, asynchronous, shards, processes, 1);
    let reference = fingerprint(&records);
    assert!(!records.is_empty(), "workload must complete something");
    for threads in [2usize, 4] {
        let (par_records, par_rounds, par_sent, par_delivered) =
            run_workload(seed, asynchronous, shards, processes, threads);
        assert_eq!(
            rounds, par_rounds,
            "round counts diverged (seed {seed}, async {asynchronous}, S={shards}, T={threads})"
        );
        assert_eq!(
            (sent, delivered),
            (par_sent, par_delivered),
            "message counts diverged (seed {seed}, async {asynchronous}, S={shards}, T={threads})"
        );
        assert_eq!(records.len(), par_records.len());
        assert_eq!(
            reference,
            fingerprint(&par_records),
            "history fingerprint diverged (seed {seed}, async {asynchronous}, S={shards}, T={threads})"
        );
    }
}

#[test]
fn sharded_synchronous_histories_are_backend_invariant() {
    for seed in [1u64, 42, 7] {
        assert_cross_backend_identical(seed, false, 8, 16);
    }
}

#[test]
fn sharded_async_shuffled_histories_are_backend_invariant() {
    for seed in [5u64, 99] {
        assert_cross_backend_identical(seed, true, 4, 12);
    }
}

#[test]
fn churny_small_shard_counts_are_backend_invariant() {
    // S=2 with churn — the exact shape of the PR-4 sharded golden.
    assert_cross_backend_identical(5, false, 2, 6);
    // Single shard: the parallel backend must quietly fall back to one lane.
    assert_cross_backend_identical(3, false, 1, 6);
}

#[test]
fn parallel_backend_reproduces_the_pr4_golden() {
    // The pinned PR-4 sharded golden (seed 5, sync, S=2): the parallel
    // backend must reproduce the *historical* fingerprint, not merely agree
    // with today's single-threaded backend.
    let (records, _, _, _) = run_workload(5, false, 2, 6, 4);
    assert_eq!(records.len(), 74);
    assert_eq!(fingerprint(&records), 0xcd93_85cb_b03f_275a);
}

#[test]
fn parallel_backend_spreads_lanes_over_threads_and_verifies() {
    let mut cluster = Skueue::<u64>::builder()
        .processes(16)
        .shards(4)
        .threads(4)
        .seed(11)
        .build()
        .unwrap();
    assert_eq!(cluster.parallel_threads(), 4);
    let puts: Vec<OpTicket> = (0..48u64)
        .map(|i| cluster.client(ProcessId(i % 16)).enqueue(i).unwrap())
        .collect();
    cluster.run_until_done(&puts, 5_000).unwrap();
    let gets: Vec<OpTicket> = (0..48u64)
        .map(|i| cluster.client(ProcessId(i % 16)).dequeue().unwrap())
        .collect();
    cluster.run_until_done(&gets, 5_000).unwrap();

    // The lanes really ran on >= 2 distinct worker threads, none of them the
    // driver thread (their per-lane busy time is visible too).
    let metrics = cluster.sim_metrics();
    assert_eq!(metrics.lane_thread_tokens.len(), 4);
    let distinct: std::collections::HashSet<u64> =
        metrics.lane_thread_tokens.iter().copied().collect();
    assert!(
        distinct.len() >= 2,
        "expected lanes on >=2 distinct threads, got {:?}",
        metrics.lane_thread_tokens
    );
    assert!(metrics.lane_busy_ns.iter().all(|&ns| ns > 0));
    assert_eq!(metrics.lane_barrier_wait_ns.len(), 4);

    // And the merged history still verifies as a sharded queue.
    check_queue_sharded(cluster.history(), &cluster.shard_map()).assert_consistent();
}

#[test]
fn thread_counts_beyond_the_lane_count_are_capped() {
    let cluster = Skueue::<u64>::builder()
        .processes(8)
        .shards(2)
        .threads(16)
        .seed(1)
        .build()
        .unwrap();
    assert_eq!(cluster.parallel_threads(), 2, "capped at the lane count");
    let single = Skueue::<u64>::builder()
        .processes(8)
        .shards(1)
        .threads(8)
        .seed(1)
        .build()
        .unwrap();
    assert_eq!(
        single.parallel_threads(),
        1,
        "one lane cannot use worker threads"
    );
}
