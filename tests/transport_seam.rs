//! Regression for the transport seam extraction.
//!
//! PR 10 moved the lanes' delivery machinery (delay RNG, sequence counter,
//! delivery wheel) out of the scheduler into [`skueue_sim::SimTransport`], the
//! simulation-side implementation of the new [`skueue_sim::Transport`] trait,
//! so a real-clock TCP implementation can exist beside it.  The extraction
//! must be invisible: every golden history captured *before* the seam existed
//! has to come out bit-identical *through* it, on both execution backends.
//!
//! (The network side of the seam is covered by `tests/net_transport.rs`,
//! which verifies real-transport histories a posteriori with the sharded
//! checker — byte-identity is a simulation-only property.)

use skueue::prelude::*;
use skueue::sim::{SimRng as _SimRngAlias, SimTransport, Transport};
use skueue_sim::delivery::DeliveryModel;
use skueue_sim::ids::NodeId;

/// FNV-1a over every field of every record (same fingerprint as
/// `tests/generic_payloads.rs` — the format is pinned there).
fn fingerprint(records: &[skueue::verify::OpRecord<u64>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for r in records {
        mix(r.id.origin.raw());
        mix(r.id.seq);
        mix(match r.kind {
            OpKind::Enqueue => 1,
            OpKind::Dequeue => 2,
        });
        mix(r.value);
        match r.result {
            skueue::verify::OpResult::Enqueued => mix(3),
            skueue::verify::OpResult::Empty => mix(4),
            skueue::verify::OpResult::Returned(src) => {
                mix(5);
                mix(src.origin.raw());
                mix(src.seq);
            }
        }
        mix(r.order.wave);
        mix(r.order.shard);
        mix(r.order.major);
        mix(r.order.origin);
        mix(r.order.minor);
        mix(r.issued_round);
        mix(r.completed_round);
    }
    h
}

/// The determinism suite's mixed workload with churn, identical to
/// `tests/generic_payloads.rs::run_golden_workload`.
fn run_golden_workload(
    seed: u64,
    asynchronous: bool,
    shards: usize,
    threads: usize,
) -> Vec<skueue::verify::OpRecord<u64>> {
    let mut builder = Skueue::<u64>::builder()
        .processes(6)
        .seed(seed)
        .shards(shards);
    if asynchronous {
        builder = builder.asynchronous(4);
    }
    if threads > 1 {
        builder = builder.threads(threads);
    }
    let mut cluster = builder.build().unwrap();
    let mut rng = SimRng::new(seed ^ 0x0DD5EED);
    for step in 0..80u64 {
        let p = ProcessId(rng.gen_range(6));
        if cluster.process_may_issue(p) {
            let mut client = cluster.client(p);
            if rng.gen_bool(0.6) {
                client.enqueue(1000 + step).unwrap();
            } else {
                client.dequeue().unwrap();
            }
        }
        if step == 30 {
            cluster.join(None).unwrap();
        }
        if step == 60 {
            let _ = (0..6u64).map(ProcessId).find(|&p| cluster.leave(p).is_ok());
        }
        if step % 2 == 0 {
            cluster.run_round();
        }
    }
    cluster.run_until_all_complete(20_000).unwrap();
    cluster.run_rounds(50);
    cluster.into_history().into_records()
}

/// `(seed, asynchronous, shards, record count, fingerprint)` — the PR-4
/// goldens, re-pinned here against the seam refactor specifically.
const GOLDEN: [(u64, bool, usize, usize, u64); 4] = [
    (1, false, 1, 79, 0xdda0_5ed0_f746_3260),
    (42, false, 1, 76, 0x589e_fa91_cae5_393b),
    (7, true, 1, 78, 0x7112_7a98_aaa6_3df0),
    (5, false, 2, 74, 0xcd93_85cb_b03f_275a),
];

#[test]
fn sim_histories_survive_the_transport_seam_bit_identically() {
    for (seed, asynchronous, shards, len, fp) in GOLDEN {
        let records = run_golden_workload(seed, asynchronous, shards, 1);
        assert_eq!(records.len(), len, "record count drifted (seed {seed})");
        assert_eq!(
            fingerprint(&records),
            fp,
            "serial-backend history drifted across the seam (seed {seed}, async {asynchronous}, S={shards})"
        );
    }
}

#[test]
fn parallel_backend_histories_survive_the_seam_too() {
    // The sharded golden is the one whose lanes actually run on workers.
    let (seed, asynchronous, shards, len, fp) = GOLDEN[3];
    for threads in [2, 4] {
        let records = run_golden_workload(seed, asynchronous, shards, threads);
        assert_eq!(records.len(), len);
        assert_eq!(
            fingerprint(&records),
            fp,
            "parallel-backend history drifted across the seam (T={threads})"
        );
    }
}

// ---------------------------------------------------------------------------
// The extracted SimTransport honours the Transport contract directly.
// ---------------------------------------------------------------------------

#[test]
fn sim_transport_delivers_through_the_trait_object() {
    // Drive the transport through `dyn Transport` — the same surface the
    // TCP implementation satisfies — and check delivery accounting.
    let mut t = SimTransport::<u64>::new(DeliveryModel::Synchronous, _SimRngAlias::new(9));
    {
        let dynt: &mut dyn Transport<u64> = &mut t;
        assert_eq!(dynt.name(), "sim");
        dynt.send(NodeId(0), NodeId(1), 11);
        dynt.send(NodeId(1), NodeId(0), 22);
        assert_eq!(dynt.in_flight(), 2);
    }
    let mut seen = Vec::new();
    let delivered = t.take_due(1, |env| seen.push((env.from, env.to, env.payload)));
    assert_eq!(delivered, 2);
    assert_eq!(t.in_flight(), 0);
    assert_eq!(
        seen,
        vec![(NodeId(0), NodeId(1), 11), (NodeId(1), NodeId(0), 22)]
    );
}
