//! Fair work distribution — the paper's motivating application.
//!
//! "A distributed queue can be used to … realize fair work stealing, since
//! tasks available in the system would be fetched in FIFO order."  This
//! example runs a producer/consumer job system on top of Skueue: a few
//! producer processes enqueue jobs, every process dequeues work, and the
//! FIFO guarantee means jobs are executed in submission order regardless of
//! which worker grabs them.
//!
//! ```text
//! cargo run --example work_stealing
//! ```

use skueue::prelude::*;
use std::collections::BTreeMap;

fn main() {
    const WORKERS: usize = 24;
    const JOBS: u64 = 120;

    let mut cluster = SkueueCluster::queue(WORKERS, 7);
    let mut rng = SimRng::new(99);

    // Phase 1: three producer processes submit batches of jobs, interleaved
    // with simulation rounds (jobs arrive over time, as in a real system).
    let producers = [ProcessId(0), ProcessId(1), ProcessId(2)];
    let mut submitted = Vec::new();
    for job in 0..JOBS {
        let producer = producers[(job % 3) as usize];
        let id = cluster.enqueue(producer, job).expect("producer is active");
        submitted.push((id, job));
        if job % 8 == 0 {
            cluster.run_rounds(2);
        }
    }

    // Phase 2: every worker repeatedly pulls work until the queue is empty.
    let mut pulls = 0u64;
    while pulls < JOBS + WORKERS as u64 {
        let worker = ProcessId(rng.gen_range(WORKERS as u64));
        cluster.dequeue(worker).expect("worker is active");
        pulls += 1;
        if pulls % 16 == 0 {
            cluster.run_rounds(1);
        }
    }
    cluster.run_until_all_complete(10_000).expect("all requests drain");

    // Analyse: which worker executed which job, and in which order?
    let history = cluster.history();
    check_queue(history).assert_consistent();

    let mut per_worker: BTreeMap<ProcessId, Vec<u64>> = BTreeMap::new();
    let mut executed_in_order = Vec::new();
    for record in history.sorted_by_order() {
        if let (OpKind::Dequeue, skueue::verify::OpResult::Returned(source)) =
            (record.kind, record.result)
        {
            // The job payload is the enqueue's value; find it.
            let job = history
                .records()
                .iter()
                .find(|r| r.id == source)
                .map(|r| r.value)
                .expect("matched enqueue exists");
            per_worker.entry(record.id.origin).or_default().push(job);
            executed_in_order.push(job);
        }
    }

    // FIFO means the execution order equals the submission order.
    let expected: Vec<u64> = (0..JOBS).collect();
    assert_eq!(executed_in_order, expected, "jobs must be executed in FIFO order");
    println!("all {JOBS} jobs executed in submission order ✓");

    let busiest = per_worker.values().map(Vec::len).max().unwrap_or(0);
    let idle = WORKERS - per_worker.len();
    println!(
        "work spread over {} workers (busiest got {} jobs, {} workers got none)",
        per_worker.len(),
        busiest,
        idle
    );
    println!(
        "average latency per request: {:.1} rounds on a {}-process overlay",
        history.mean_latency(),
        WORKERS
    );
}
