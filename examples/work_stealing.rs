//! Fair work distribution — the paper's motivating application.
//!
//! "A distributed queue can be used to … realize fair work stealing, since
//! tasks available in the system would be fetched in FIFO order."  This
//! example runs a producer/consumer job system on top of Skueue: a few
//! producer processes enqueue jobs, random workers pull work in waves, and
//! every worker learns the job it got straight from its ticket's outcome —
//! the FIFO guarantee means each wave receives exactly the oldest jobs still
//! in the queue.
//!
//! ```text
//! cargo run --example work_stealing
//! ```

use skueue::prelude::*;
use std::collections::BTreeMap;

const WORKERS: usize = 24;
const JOBS: u64 = 120;
const WAVE: u64 = 12;

fn main() {
    let mut cluster = Skueue::builder()
        .processes(WORKERS)
        .seed(7)
        .build()
        .expect("24 synchronous processes are a valid deployment");
    let mut rng = SimRng::new(99);

    // Phase 1: three producer processes submit jobs in rounds of three (one
    // per producer), each round of submissions completing before the next —
    // jobs arrive over time, as in a real system.  Concurrent submissions
    // within one round are serialised by the anchor in some order; across
    // rounds the FIFO order equals the submission order.
    let producers = [ProcessId(0), ProcessId(1), ProcessId(2)];
    for batch in 0..(JOBS / 3) {
        let tickets: Vec<OpTicket> = producers
            .iter()
            .enumerate()
            .map(|(i, &producer)| {
                let job = batch * 3 + i as u64;
                cluster
                    .client(producer)
                    .enqueue(job)
                    .expect("producer is active")
            })
            .collect();
        cluster
            .run_until_done(&tickets, 10_000)
            .expect("submissions drain");
    }

    // Phase 2: workers pull jobs in waves of 12 concurrent dequeues from
    // random workers, until all jobs are taken.  Each wave runs strictly
    // after the previous one, so FIFO ordering across waves is observable
    // from the ticket outcomes alone: wave k must receive exactly the jobs
    // k*WAVE..(k+1)*WAVE, in some worker interleaving.
    let mut per_worker: BTreeMap<ProcessId, Vec<u64>> = BTreeMap::new();
    let mut next_expected = 0u64;
    while next_expected < JOBS {
        let pulls: Vec<OpTicket> = (0..WAVE)
            .map(|_| {
                let worker = ProcessId(rng.gen_range(WORKERS as u64));
                cluster.client(worker).dequeue().expect("worker is active")
            })
            .collect();
        let outcomes = cluster.run_until_done(&pulls, 10_000).expect("wave drains");

        let mut wave_jobs: Vec<u64> = Vec::with_capacity(pulls.len());
        for (ticket, outcome) in pulls.iter().zip(&outcomes) {
            let job = outcome
                .value()
                .expect("queue still held jobs for this wave");
            per_worker.entry(ticket.origin()).or_default().push(job);
            wave_jobs.push(job);
        }
        // FIFO: this wave got exactly the WAVE oldest jobs still queued.
        wave_jobs.sort_unstable();
        let expected: Vec<u64> = (next_expected..next_expected + WAVE).collect();
        assert_eq!(
            wave_jobs, expected,
            "a wave must receive the oldest remaining jobs"
        );
        next_expected += WAVE;
    }
    println!(
        "all {JOBS} jobs executed in submission order across {} waves ✓",
        JOBS / WAVE
    );

    check_queue(cluster.history()).assert_consistent();

    let busiest = per_worker.values().map(Vec::len).max().unwrap_or(0);
    let idle = WORKERS - per_worker.len();
    println!(
        "work spread over {} workers (busiest got {} jobs, {} workers got none)",
        per_worker.len(),
        busiest,
        idle
    );
    println!(
        "average latency per request: {:.1} rounds on a {WORKERS}-process overlay",
        cluster.history().mean_latency()
    );
}
