//! Quickstart: build a distributed queue with the builder, enqueue and
//! dequeue through ticketed client handles, and verify that the execution
//! was sequentially consistent.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use skueue::prelude::*;

fn main() {
    // A Skueue deployment over 16 processes (48 virtual De Bruijn nodes),
    // driven by the synchronous round scheduler the paper evaluates on.
    let mut cluster = Skueue::builder()
        .processes(16)
        // Partition the queue into 4 independent anchor shards: every
        // process deterministically belongs to one shard, each shard orders
        // its own lane, and the verifier checks the merged global order
        // (use `check_queue_sharded` instead of `check_queue` when S > 1).
        .shards(4)
        .seed(2024)
        .build()
        .expect("16 synchronous processes are a valid deployment");

    // Enqueue ten elements from ten different processes; every operation
    // hands back a typed ticket.
    println!("enqueueing 10 elements from 10 different processes…");
    let puts: Vec<OpTicket> = (0..10u64)
        .map(|i| {
            cluster
                .client(ProcessId(i % 16))
                .enqueue(100 + i)
                .expect("process is active")
        })
        .collect();

    // Wait for the enqueues before dequeueing: operations issued
    // concurrently at different processes carry no cross-process ordering
    // guarantee (a dequeue ordered before every enqueue legitimately
    // returns ⊥), so the "exactly two ⊥" arithmetic below needs the ten
    // elements committed first.
    cluster
        .run_until_done(&puts, 2_000)
        .expect("enqueues drain");

    // Dequeue twelve times.  A sharded queue is S independent FIFO lanes
    // with deterministic lane selection by process, so each process's
    // dequeue drains its *own* shard's lane: one dequeue per enqueuer
    // drains every lane exactly, and the two extra dequeues (issued at
    // processes whose lanes are then empty) return ⊥ — exactly two,
    // regardless of how the hash spread the processes over the shards.
    println!("dequeueing 12 times (two hit an empty lane)…");
    let gets: Vec<OpTicket> = (0..12u64)
        .map(|i| {
            cluster
                .client(ProcessId(i % 10))
                .dequeue()
                .expect("process is active")
        })
        .collect();

    // Drive the simulation until every ticket has resolved.
    let mut tickets = puts.clone();
    tickets.extend(&gets);
    let start_round = cluster.round();
    cluster
        .run_until_done(&tickets, 2_000)
        .expect("requests drain");
    println!(
        "all {} requests completed after {} simulated rounds",
        tickets.len(),
        cluster.round() - start_round
    );

    // Tickets resolve to structured outcomes — no history scanning needed.
    let dequeued: Vec<Option<u64>> = gets
        .iter()
        .map(|&t| cluster.outcome(t).expect("completed above").value())
        .collect();
    let empties = dequeued.iter().filter(|v| v.is_none()).count();
    println!("dequeue results (issue order): {dequeued:?}");
    assert_eq!(empties, 2, "exactly two of the twelve dequeues hit ⊥");

    let mean_rounds = tickets
        .iter()
        .map(|&t| cluster.outcome(t).expect("completed above").rounds())
        .sum::<u64>() as f64
        / tickets.len() as f64;
    println!("mean latency {mean_rounds:.1} rounds/request");

    // The library's own checker proves the run was sequentially consistent.
    // Sharded deployments use the cross-shard checker: Definition 1 plus a
    // sequential replay on every shard's lane, and program order on the
    // merged (wave, shard, local) global order.  (With `.shards(1)` — or no
    // `.shards` call at all — this is plain `check_queue`.)
    check_queue_sharded(cluster.history(), &cluster.shard_map()).assert_consistent();
    println!(
        "sequential consistency verified over {} shards ✓",
        cluster.shards()
    );

    // The elements were spread fairly over the virtual nodes (Corollary 19).
    if let Some(fairness) = cluster.fairness() {
        println!(
            "fairness over {} virtual nodes: max/mean = {:.2}",
            fairness.nodes, fairness.max_over_mean
        );
    }
}
