//! Quickstart: build a distributed queue, enqueue and dequeue a few
//! elements, and verify that the execution was sequentially consistent.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use skueue::prelude::*;

fn main() {
    // A Skueue deployment over 16 processes (48 virtual De Bruijn nodes),
    // driven by the synchronous round scheduler the paper evaluates on.
    let mut cluster = SkueueCluster::queue(16, 2024);

    // Enqueue ten elements from different processes.
    println!("enqueueing 10 elements from 10 different processes…");
    for i in 0..10u64 {
        cluster.enqueue(ProcessId(i % 16), 100 + i).expect("process is active");
    }

    // Dequeue twelve times from other processes — the last two find the
    // queue empty and return ⊥.
    println!("dequeueing 12 times (the last two hit an empty queue)…");
    for i in 0..12u64 {
        cluster.dequeue(ProcessId((i + 5) % 16)).expect("process is active");
    }

    // Drive the simulation until every request has completed.
    let rounds = cluster.run_until_all_complete(2_000).expect("requests drain");
    println!("all 22 requests completed after {rounds} simulated rounds");

    // Inspect the execution history.
    let history = cluster.history();
    println!(
        "history: {} records, {} returned ⊥, mean latency {:.1} rounds",
        history.len(),
        history.count_empty(),
        history.mean_latency()
    );
    for record in history.sorted_by_order().iter().take(6) {
        println!("  {:?} {:?} -> {:?}", record.id, record.kind, record.result);
    }

    // The library's own checker proves the run was sequentially consistent
    // (Definition 1 of the paper + a sequential replay).
    check_queue(history).assert_consistent();
    println!("sequential consistency verified ✓");

    // The elements were spread fairly over the virtual nodes (Corollary 19).
    if let Some(fairness) = cluster.fairness() {
        println!(
            "fairness over {} virtual nodes: max/mean = {:.2}",
            fairness.nodes, fairness.max_over_mean
        );
    }
}
