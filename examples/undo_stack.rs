//! The distributed stack variant (Section VI): a collaborative undo log.
//!
//! Multiple editor processes push undo records; whoever hits "undo" pops the
//! most recent one — LIFO semantics with sequential consistency, plus the
//! local-combining optimisation for processes that immediately undo their own
//! latest action.
//!
//! ```text
//! cargo run --example undo_stack
//! ```

use skueue::prelude::*;

fn main() {
    let mut cluster = SkueueCluster::stack(12, 5);

    // Editors 0..3 perform actions (pushes); the payload encodes the action.
    println!("pushing 30 undo records from 4 editors…");
    for action in 0..30u64 {
        let editor = ProcessId(action % 4);
        cluster.push(editor, action).expect("editor is active");
        if action % 5 == 0 {
            cluster.run_rounds(1);
        }
    }
    cluster.run_until_all_complete(5_000).expect("pushes drain");

    // Editor 7 hits undo ten times: it must receive the ten most recent
    // actions in reverse order (LIFO).
    println!("editor 7 undoes the last 10 actions…");
    for _ in 0..10 {
        cluster.pop(ProcessId(7)).expect("editor is active");
    }
    cluster.run_until_all_complete(5_000).expect("pops drain");

    // Editor 2 performs an action and immediately undoes it: with the
    // paper's local-combining optimisation this completes without touching
    // the anchor or the DHT at all.
    println!("editor 2 does and immediately undoes an action (local combining)…");
    let before = cluster.locally_combined();
    cluster.push(ProcessId(2), 999).expect("active");
    cluster.pop(ProcessId(2)).expect("active");
    cluster.run_rounds(1);
    assert_eq!(cluster.locally_combined(), before + 2);
    println!("  completed instantly, {} requests resolved locally so far", cluster.locally_combined());
    cluster.run_until_all_complete(5_000).expect("drains");

    // Verify LIFO semantics over the whole run.
    let history = cluster.history();
    check_stack(history).assert_consistent();

    // Extract the undo order editor 7 observed.
    let undone: Vec<u64> = history
        .sorted_by_order()
        .iter()
        .filter(|r| r.kind == OpKind::Dequeue && r.id.origin == ProcessId(7))
        .filter_map(|r| match r.result {
            skueue::verify::OpResult::Returned(src) => history
                .records()
                .iter()
                .find(|e| e.id == src)
                .map(|e| e.value),
            _ => None,
        })
        .collect();
    println!("editor 7 undid actions (most recent first): {undone:?}");
    assert_eq!(undone, (20..30u64).rev().collect::<Vec<_>>());
    println!("LIFO order verified ✓ ({} records total)", history.len());
}
