//! The distributed stack variant (Section VI): a collaborative undo log.
//!
//! Multiple editor processes push undo records; whoever hits "undo" pops the
//! most recent one — LIFO semantics with sequential consistency, plus the
//! local-combining optimisation for processes that immediately undo their own
//! latest action.  Pops are tickets whose outcomes carry the popped element
//! directly.
//!
//! ```text
//! cargo run --example undo_stack
//! ```

use skueue::prelude::*;

fn main() {
    let mut cluster = Skueue::builder()
        .processes(12)
        .stack()
        .seed(5)
        .build()
        .expect("12 synchronous processes are a valid deployment");

    // Editors 0..3 perform actions (pushes) one after another — an undo log
    // is a record of actions as they happen, so each action completes before
    // the next is taken.  The payload encodes the action.
    println!("pushing 30 undo records from 4 editors…");
    for action in 0..30u64 {
        let editor = ProcessId(action % 4);
        let ticket = cluster
            .client(editor)
            .push(action)
            .expect("editor is active");
        cluster
            .run_until_done(&[ticket], 5_000)
            .expect("push completes");
    }

    // Editor 7 hits undo ten times: it must receive the ten most recent
    // actions in reverse order (LIFO), each straight from its ticket.
    println!("editor 7 undoes the last 10 actions…");
    let mut undone = Vec::new();
    for _ in 0..10 {
        let undo = cluster
            .client(ProcessId(7))
            .pop()
            .expect("editor is active");
        let outcome = cluster
            .run_until_done(&[undo], 5_000)
            .expect("pop completes")
            .remove(0);
        undone.push(outcome.value().expect("stack holds 30 records"));
    }
    println!("editor 7 undid actions (most recent first): {undone:?}");
    assert_eq!(undone, (20..30u64).rev().collect::<Vec<_>>());

    // Editor 2 performs an action and immediately undoes it: with the
    // paper's local-combining optimisation this completes without touching
    // the anchor or the DHT at all.
    println!("editor 2 does and immediately undoes an action (local combining)…");
    let before = cluster.locally_combined();
    let push = cluster.client(ProcessId(2)).push(999).expect("active");
    let pop = cluster.client(ProcessId(2)).pop().expect("active");
    cluster.run_rounds(1);
    assert_eq!(cluster.locally_combined(), before + 2);
    assert!(cluster.status(push).is_done());
    assert_eq!(
        cluster.outcome(pop).expect("combined instantly").value(),
        Some(999),
        "the pop's ticket resolves to the matching push's payload"
    );
    println!(
        "  completed instantly, {} requests resolved locally so far",
        cluster.locally_combined()
    );
    cluster.run_until_all_complete(5_000).expect("drains");

    // Verify LIFO semantics over the whole run.
    check_stack(cluster.history()).assert_consistent();
    println!(
        "LIFO order verified ✓ ({} records total)",
        cluster.history().len()
    );
}
