//! Elastic membership: processes join and leave while the queue keeps
//! serving requests (Section IV of the paper).
//!
//! ```text
//! cargo run --example elastic_membership
//! ```

use skueue::prelude::*;

fn main() {
    let mut cluster = Skueue::builder()
        .processes(8)
        .seed(11)
        .build()
        .expect("8 synchronous processes are a valid deployment");

    // Fill the queue with some baseline work.
    println!("phase 1: 40 enqueues on the initial 8 processes");
    for i in 0..40u64 {
        cluster.client(ProcessId(i % 8)).enqueue(i).expect("active");
    }
    cluster.run_until_all_complete(5_000).expect("drains");

    // Scale out: four new processes join through the Section IV protocol
    // (responsible nodes, batch-reported join counts, update phase).
    println!("phase 2: 4 processes join");
    let mut joined = Vec::new();
    for _ in 0..4 {
        joined.push(cluster.join(None).expect("bootstrap available"));
    }
    let rounds = cluster
        .run_until(|c| joined.iter().all(|&p| c.process_is_active(p)), 50_000)
        .expect("joins integrate");
    println!("  all 4 processes integrated after {rounds} rounds");
    println!("  active processes: {}", cluster.active_processes());

    // The new members immediately take part in the queue — their client
    // handles become usable the moment integration completes.
    println!("phase 3: new members enqueue 20 more elements");
    for (i, &p) in joined.iter().enumerate() {
        let mut client = cluster.client(p);
        assert!(client.is_active(), "joined process serves requests");
        for j in 0..5u64 {
            client.enqueue(1_000 + (i as u64) * 5 + j).expect("active");
        }
    }
    cluster.run_until_all_complete(5_000).expect("drains");

    // Scale in: two of the original processes leave; their DHT data moves to
    // their neighbours and nothing is lost.
    println!("phase 4: 2 processes leave");
    let mut left = Vec::new();
    for p in (0..8u64).map(ProcessId) {
        if left.len() == 2 {
            break;
        }
        if cluster.leave(p).is_ok() {
            left.push(p);
        }
    }
    let rounds = cluster
        .run_until(|c| left.iter().all(|&p| c.process_has_left(p)), 50_000)
        .expect("leaves complete");
    println!(
        "  {left:?} left after {rounds} rounds; active processes: {}",
        cluster.active_processes()
    );

    // Drain the entire queue: all 60 elements must still be there, and every
    // drain ticket must resolve to a real element (no ⊥ = nothing lost).
    println!("phase 5: drain the queue through the surviving processes");
    let survivors = cluster.active_process_ids();
    let remaining = cluster.anchor_state().map(|a| a.size()).unwrap_or(0);
    let drains: Vec<OpTicket> = (0..remaining)
        .map(|i| {
            cluster
                .client(survivors[(i as usize) % survivors.len()])
                .dequeue()
                .expect("active")
        })
        .collect();
    let outcomes = cluster.run_until_done(&drains, 20_000).expect("drains");
    assert_eq!(outcomes.len(), 60);
    assert!(
        outcomes.iter().all(|o| !o.is_empty()),
        "no element may be lost across churn"
    );

    check_queue(cluster.history()).assert_consistent();
    println!(
        "verified: {} requests, sequentially consistent, zero lost elements ✓",
        cluster.history().len()
    );
}
