//! Elastic membership: processes join and leave while the queue keeps
//! serving requests (Section IV of the paper).
//!
//! ```text
//! cargo run --example elastic_membership
//! ```

use skueue::prelude::*;

fn main() {
    let mut cluster = SkueueCluster::queue(8, 11);

    // Fill the queue with some baseline work.
    println!("phase 1: 40 enqueues on the initial 8 processes");
    for i in 0..40u64 {
        cluster.enqueue(ProcessId(i % 8), i).expect("active");
    }
    cluster.run_until_all_complete(5_000).expect("drains");

    // Scale out: four new processes join through the Section IV protocol
    // (responsible nodes, batch-reported join counts, update phase).
    println!("phase 2: 4 processes join");
    let mut joined = Vec::new();
    for _ in 0..4 {
        joined.push(cluster.join(None).expect("bootstrap available"));
    }
    let rounds = cluster
        .run_until(
            |c| joined.iter().all(|&p| c.process_is_active(p)),
            50_000,
        )
        .expect("joins integrate");
    println!("  all 4 processes integrated after {rounds} rounds");
    println!("  active processes: {}", cluster.active_processes());

    // The new members immediately take part in the queue.
    println!("phase 3: new members enqueue 20 more elements");
    for (i, &p) in joined.iter().enumerate() {
        for j in 0..5u64 {
            cluster.enqueue(p, 1_000 + (i as u64) * 5 + j).expect("active");
        }
    }
    cluster.run_until_all_complete(5_000).expect("drains");

    // Scale in: two of the original processes leave; their DHT data moves to
    // their neighbours and nothing is lost.
    println!("phase 4: 2 processes leave");
    let mut left = Vec::new();
    for p in (0..8u64).map(ProcessId) {
        if left.len() == 2 {
            break;
        }
        if cluster.leave(p).is_ok() {
            left.push(p);
        }
    }
    let rounds = cluster
        .run_until(|c| left.iter().all(|&p| c.process_has_left(p)), 50_000)
        .expect("leaves complete");
    println!("  {:?} left after {rounds} rounds; active processes: {}", left, cluster.active_processes());

    // Drain the entire queue: all 60 elements must still be there, in order.
    println!("phase 5: drain the queue through the surviving processes");
    let survivors = cluster.active_process_ids();
    let remaining = cluster.anchor_state().map(|a| a.size()).unwrap_or(0);
    for i in 0..remaining {
        cluster
            .dequeue(survivors[(i as usize) % survivors.len()])
            .expect("active");
    }
    cluster.run_until_all_complete(20_000).expect("drains");

    let history = cluster.history();
    assert_eq!(history.count_empty(), 0, "no element may be lost across churn");
    check_queue(history).assert_consistent();
    println!(
        "verified: {} requests, sequentially consistent, zero lost elements ✓",
        history.len()
    );
}
