//! # skueue — a scalable, sequentially consistent distributed queue
//!
//! This is the facade crate of the Skueue reproduction (Feldmann, Scheideler,
//! Setzer: *"Skueue: A Scalable and Sequentially Consistent Distributed
//! Queue"*, IPDPS 2018).  It re-exports the whole workspace so downstream
//! code (and the examples and integration tests in this repository) can use a
//! single dependency.
//!
//! ## Quick tour
//!
//! Clusters are constructed with the fluent, validating builder; operations
//! return typed [`OpTicket`](prelude::OpTicket)s that resolve to structured
//! [`OpOutcome`](prelude::OpOutcome)s — no scanning of the raw execution
//! history required:
//!
//! ```
//! use skueue::prelude::*;
//!
//! // A distributed queue over 8 processes (24 virtual De Bruijn nodes).
//! let mut cluster = Skueue::builder().processes(8).seed(42).build()?;
//!
//! // Issue operations through per-process client handles; keep the tickets.
//! let put_a = cluster.client(ProcessId(0)).enqueue(7)?;
//! let put_b = cluster.client(ProcessId(3)).enqueue(8)?;
//! let get = cluster.client(ProcessId(5)).dequeue()?;
//!
//! // Drive the simulation until those tickets resolve, then read outcomes.
//! let outcomes = cluster.run_until_done(&[put_a, put_b, get], 500)?;
//! assert_eq!(outcomes[2].value(), Some(7), "FIFO: the dequeue returns 7");
//!
//! // The collected history proves the run was sequentially consistent.
//! check_queue(cluster.history()).assert_consistent();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The payload is a type parameter (default `u64`): any `Clone + Ord +
//! Hash + Debug + Default` type flows through the queue untouched, e.g. a
//! `String` job queue:
//!
//! ```
//! use skueue::prelude::*;
//!
//! let mut jobs = Skueue::<String>::builder().processes(4).seed(1).build()?;
//! let put = jobs.client(ProcessId(0)).enqueue("encode #1".to_string())?;
//! let got = jobs.client(ProcessId(2)).dequeue()?;
//! let outcomes = jobs.run_until_done(&[put, got], 500)?;
//! assert_eq!(outcomes[1].value().as_deref(), Some("encode #1"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Every completion is also published on the cluster's event stream
//! ([`SkueueCluster::on_complete`](prelude::SkueueCluster::on_complete)), so
//! workloads, benches and the verifier all consume the same data:
//!
//! ```
//! use skueue::prelude::*;
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! let mut cluster = Skueue::builder().processes(4).seed(7).build()?;
//! let latencies: Rc<RefCell<Vec<u64>>> = Rc::default();
//! let sink = Rc::clone(&latencies);
//! cluster.on_complete(move |event| sink.borrow_mut().push(event.outcome.rounds()));
//! let ticket = cluster.client(ProcessId(1)).enqueue(1)?;
//! cluster.run_until_done(&[ticket], 500)?;
//! assert_eq!(latencies.borrow().len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Crate map
//!
//! * [`sim`] — deterministic synchronous/asynchronous message-passing
//!   simulator (the execution substrate),
//! * [`overlay`] — the Linearized De Bruijn network: labels, routing,
//!   aggregation tree,
//! * [`dht`] — the consistent-hashing storage layer,
//! * [`shard`] — anchor sharding: deterministic process→shard maps and the
//!   partition of the position keyspace,
//! * [`core`] — the Skueue protocol itself (queue + stack, join/leave,
//!   sharded anchors) and the builder/ticket/client API,
//! * [`verify`] — sequential-consistency checkers,
//! * [`trace`] — per-op lifecycle tracing: lane-local span recorders,
//!   stage-latency analysis, Chrome-trace export (see `OBSERVABILITY.md`),
//! * [`workloads`] — the paper's workload generators, scenarios and the
//!   central-server baseline,
//! * [`net`] — the real-clock side of the transport seam: TCP framing, the
//!   `skueue-node`/`skueue-ctl`/`skueue-ingress` service topology and the
//!   open-loop load generator (see `ARCHITECTURE.md` and `DEPLOY.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use skueue_core as core;
pub use skueue_dht as dht;
pub use skueue_net as net;
pub use skueue_overlay as overlay;
pub use skueue_shard as shard;
pub use skueue_sim as sim;
pub use skueue_trace as trace;
pub use skueue_verify as verify;
pub use skueue_workloads as workloads;

/// Convenience re-exports of the most frequently used items.
pub mod prelude {
    pub use skueue_core::{
        BuildError, ClientHandle, ClusterError, CompletionEvent, Mode, OpOutcome, OpStatus,
        OpTicket, ProtocolConfig, Skueue, SkueueBuilder, SkueueCluster,
    };
    pub use skueue_dht::{Element, Payload};
    pub use skueue_shard::{ShardId, ShardMap, ShardRouter};
    pub use skueue_sim::ids::{NodeId, ProcessId, RequestId};
    pub use skueue_sim::{DeliveryModel, SimConfig, SimRng};
    pub use skueue_trace::{TraceAnalysis, TraceLevel, TraceLog};
    pub use skueue_verify::{check_queue, check_queue_sharded, check_stack, History, OpKind};
    pub use skueue_workloads::{
        run_fixed_rate, run_fixed_rate_traced, run_payload_fixed_rate, run_per_node_rate,
        run_sharded_fig2, run_string_payload_fig2, FixedRateGenerator, PerNodeRateGenerator,
        ScenarioParams,
    };
}
