//! # skueue — a scalable, sequentially consistent distributed queue
//!
//! This is the facade crate of the Skueue reproduction (Feldmann, Scheideler,
//! Setzer: *"Skueue: A Scalable and Sequentially Consistent Distributed
//! Queue"*, IPDPS 2018).  It re-exports the whole workspace so downstream
//! code (and the examples and integration tests in this repository) can use a
//! single dependency:
//!
//! ```
//! use skueue::core::SkueueCluster;
//! use skueue::sim::ids::ProcessId;
//! use skueue::verify::check_queue;
//!
//! // A distributed queue over 8 processes (24 virtual De Bruijn nodes).
//! let mut cluster = SkueueCluster::queue(8, 42);
//! cluster.enqueue(ProcessId(0), 7).unwrap();
//! cluster.enqueue(ProcessId(3), 8).unwrap();
//! cluster.dequeue(ProcessId(5)).unwrap();
//! cluster.run_until_all_complete(500).unwrap();
//! check_queue(cluster.history()).assert_consistent();
//! ```
//!
//! Crate map:
//!
//! * [`sim`] — deterministic synchronous/asynchronous message-passing
//!   simulator (the execution substrate),
//! * [`overlay`] — the Linearized De Bruijn network: labels, routing,
//!   aggregation tree,
//! * [`dht`] — the consistent-hashing storage layer,
//! * [`core`] — the Skueue protocol itself (queue + stack, join/leave),
//! * [`verify`] — sequential-consistency checkers,
//! * [`workloads`] — the paper's workload generators, scenarios and the
//!   central-server baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use skueue_core as core;
pub use skueue_dht as dht;
pub use skueue_overlay as overlay;
pub use skueue_sim as sim;
pub use skueue_verify as verify;
pub use skueue_workloads as workloads;

/// Convenience re-exports of the most frequently used items.
pub mod prelude {
    pub use skueue_core::{ClusterError, Mode, ProtocolConfig, SkueueCluster};
    pub use skueue_sim::ids::{NodeId, ProcessId, RequestId};
    pub use skueue_sim::{SimConfig, SimRng};
    pub use skueue_verify::{check_queue, check_stack, History, OpKind};
    pub use skueue_workloads::{
        run_fixed_rate, run_per_node_rate, FixedRateGenerator, PerNodeRateGenerator,
        ScenarioParams,
    };
}
