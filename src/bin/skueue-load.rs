//! `skueue-load` — open-loop Poisson load generator for a real-transport
//! cluster.
//!
//! Issues operations on an exponential inter-arrival schedule (open loop: the
//! schedule never waits for the system, so queueing delay is measured, not
//! hidden), waits for the cluster to drain, verifies the history, and reports
//! wall-clock p50/p99/p999 operation latency as JSON.
//!
//! ```text
//! skueue-load --daemons … --rate 200 --ops 500 --seed 42 --out BENCH_net.json
//! ```

use std::process::ExitCode;
use std::time::Duration;

use skueue::net::spec::{parse_flags, spec_from_flags};
use skueue::net::{run_load, IngressClient, LoadParams};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run = || -> Result<(), String> {
        let flags = parse_flags(&args)?;
        let spec = spec_from_flags(&flags)?;
        let rate: f64 = flags
            .get("rate")
            .map(|v| v.parse().map_err(|_| "--rate expects a number"))
            .transpose()?
            .unwrap_or(100.0);
        let ops: u64 = flags
            .get("ops")
            .map(|v| v.parse().map_err(|_| "--ops expects a number"))
            .transpose()?
            .unwrap_or(200);
        let seed: u64 = flags
            .get("seed")
            .map(|v| v.parse().map_err(|_| "--seed expects a number"))
            .transpose()?
            .unwrap_or(42);
        let mut params = LoadParams::new(rate, ops, spec.initial, seed);
        if let Some(t) = flags.get("timeout-s") {
            let secs: u64 = t.parse().map_err(|_| "--timeout-s expects a number")?;
            params.drain_timeout = Duration::from_secs(secs);
        }
        let mut ingress = IngressClient::<u64>::connect(&spec).map_err(|e| e.to_string())?;
        let report = run_load(&mut ingress, &params).map_err(|e| e.to_string())?;
        let json = report.to_json();
        match flags.get("out") {
            Some(path) => {
                std::fs::write(path, format!("{json}\n")).map_err(|e| e.to_string())?;
                eprintln!("skueue-load: report written to {path}");
            }
            None => println!("{json}"),
        }
        eprintln!(
            "skueue-load: {}/{} ops, drained={}, consistent={}, p50={}us p99={}us p999={}us",
            report.completed,
            report.issued,
            report.drained,
            report.consistent,
            report.p50_us,
            report.p99_us,
            report.p999_us
        );
        // `--verify false` skips the consistency gate for runs against a
        // cluster that already carried traffic (the checker needs the full
        // history since boot to be meaningful); drain is always required.
        let require_consistent = match flags.get("verify").map(String::as_str) {
            Some("false") => false,
            Some("true") | None => true,
            Some(other) => return Err(format!("--verify expects true|false, got `{other}`")),
        };
        if report.drained && (report.consistent || !require_consistent) {
            Ok(())
        } else {
            Err("load run did not drain cleanly or failed verification".to_string())
        }
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("skueue-load: {message}");
            eprintln!(
                "usage: skueue-load --daemons a,b,c [--rate HZ] [--ops N] [--seed S] \
                 [--out FILE] [--timeout-s T]"
            );
            ExitCode::from(2)
        }
    }
}
