//! `skueue-ctl` — control plane for a real-transport Skueue cluster.
//!
//! Drives membership churn and lifecycle against running `skueue-node`
//! daemons:
//!
//! ```text
//! skueue-ctl --daemons … --cmd status
//! skueue-ctl --daemons … --cmd join --count 2     # join wave, waits for integration
//! skueue-ctl --daemons … --cmd leave --pid 5      # waits until the process left
//! skueue-ctl --daemons … --cmd shutdown
//! ```
//!
//! Joins pick fresh consecutive process ids; the daemon hosting each joiner
//! follows from the id alone, and the bootstrap contact is the lowest
//! initial process of the joiner's shard.  Only ever `leave` processes
//! created by a previous `join` wave — initial processes can host shard
//! anchors, which are pinned.

use std::process::ExitCode;
use std::time::Duration;

use skueue::net::spec::{parse_flags, spec_from_flags};
use skueue::net::CtlClient;
use skueue::prelude::ProcessId;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run = || -> Result<(), String> {
        let flags = parse_flags(&args)?;
        let spec = spec_from_flags(&flags)?;
        let timeout = Duration::from_secs(
            flags
                .get("timeout-s")
                .map(|v| v.parse().map_err(|_| "--timeout-s expects a number"))
                .transpose()?
                .unwrap_or(60),
        );
        let mut ctl = CtlClient::<u64>::connect(&spec).map_err(|e| e.to_string())?;
        match flags.get("cmd").map(String::as_str) {
            Some("status") => {
                for status in ctl.status().map_err(|e| e.to_string())? {
                    println!(
                        "process {:>4}  integrated={}  left={}",
                        status.pid.0, status.integrated, status.left
                    );
                }
                Ok(())
            }
            Some("join") => {
                let count: u64 = flags
                    .get("count")
                    .map(|v| v.parse().map_err(|_| "--count expects a number"))
                    .transpose()?
                    .unwrap_or(1);
                let joined = ctl.join_wave(count).map_err(|e| e.to_string())?;
                let ids: Vec<u64> = joined.iter().map(|p| p.0).collect();
                eprintln!("skueue-ctl: join wave started for processes {ids:?}");
                if ctl
                    .wait_integrated(&joined, timeout)
                    .map_err(|e| e.to_string())?
                {
                    println!("joined: {ids:?}");
                    Ok(())
                } else {
                    Err(format!("processes {ids:?} did not integrate in time"))
                }
            }
            Some("leave") => {
                let pid = ProcessId(
                    flags
                        .get("pid")
                        .ok_or("--cmd leave needs --pid N")?
                        .parse()
                        .map_err(|_| "--pid expects a number".to_string())?,
                );
                ctl.leave(pid).map_err(|e| e.to_string())?;
                if ctl.wait_left(&[pid], timeout).map_err(|e| e.to_string())? {
                    println!("left: {}", pid.0);
                    Ok(())
                } else {
                    Err(format!("process {} did not leave in time", pid.0))
                }
            }
            Some("shutdown") => {
                ctl.shutdown().map_err(|e| e.to_string())?;
                println!("cluster shut down");
                Ok(())
            }
            Some(other) => Err(format!("unknown command `{other}`")),
            None => Err("missing required flag --cmd status|join|leave|shutdown".to_string()),
        }
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("skueue-ctl: {message}");
            eprintln!(
                "usage: skueue-ctl --daemons a,b,c --cmd status|join|leave|shutdown \
                 [--count N] [--pid N] [--timeout-s T] [--initial N] [--shards S]"
            );
            ExitCode::from(2)
        }
    }
}
