//! `skueue-node` — one node daemon of a real-transport Skueue cluster.
//!
//! Hosts the processes placed on it by the static modular placement rule
//! (`pid mod num_daemons == index`), each virtual node on its own tick-loop
//! thread, and routes protocol messages over length-prefixed TCP frames.
//! Runs until a `skueue-ctl … --cmd shutdown` arrives.
//!
//! ```text
//! skueue-node --daemons 127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103 \
//!             --index 0 --initial 5 --shards 2
//! ```

use std::process::ExitCode;

use skueue::net::daemon;
use skueue::net::spec::{parse_flags, spec_from_flags};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run = || -> Result<(), String> {
        let flags = parse_flags(&args)?;
        let spec = spec_from_flags(&flags)?;
        let index: usize = flags
            .get("index")
            .ok_or("missing required flag --index N")?
            .parse()
            .map_err(|_| "--index expects a number".to_string())?;
        if index >= spec.num_daemons() {
            return Err(format!(
                "--index {index} out of range for {} daemons",
                spec.num_daemons()
            ));
        }
        eprintln!(
            "skueue-node[{index}]: listening on {} ({} initial processes, {} shards)",
            spec.daemons[index], spec.initial, spec.shards
        );
        daemon::run::<u64>(&spec, index).map_err(|e| e.to_string())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("skueue-node: {message}");
            eprintln!(
                "usage: skueue-node --daemons a,b,c --index N \
                 [--initial N] [--shards S] [--hash-seed H] [--tick-ms T]"
            );
            ExitCode::from(2)
        }
    }
}
