//! `skueue-ingress` — client-operation ingress for a real-transport cluster.
//!
//! Accepts enqueue/dequeue operations, forwards them to the daemons hosting
//! the issuing processes, waits for the completion stream to drain, verifies
//! the collected history with the sharded sequential-consistency checker,
//! and prints the results.
//!
//! ```text
//! # one-off operations (issued in the given order through the named pids)
//! skueue-ingress --daemons … --enqueue 0:7,1:8 --dequeue 2
//!
//! # a seeded figure-2 style mixed workload over the initial processes
//! skueue-ingress --daemons … --workload fig2 --ops 60 --seed 1
//! ```

use std::process::ExitCode;
use std::time::Duration;

use skueue::net::spec::{parse_flags, spec_from_flags};
use skueue::net::IngressClient;
use skueue::prelude::{ProcessId, SimRng};
use skueue::verify::OpResult;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run = || -> Result<(), String> {
        let flags = parse_flags(&args)?;
        let spec = spec_from_flags(&flags)?;
        let timeout = Duration::from_secs(
            flags
                .get("timeout-s")
                .map(|v| v.parse().map_err(|_| "--timeout-s expects a number"))
                .transpose()?
                .unwrap_or(60),
        );
        let mut ingress = IngressClient::<u64>::connect(&spec).map_err(|e| e.to_string())?;

        if let Some(workload) = flags.get("workload") {
            if workload != "fig2" {
                return Err(format!("unknown workload `{workload}` (supported: fig2)"));
            }
            let ops: u64 = flags
                .get("ops")
                .map(|v| v.parse().map_err(|_| "--ops expects a number"))
                .transpose()?
                .unwrap_or(60);
            let seed: u64 = flags
                .get("seed")
                .map(|v| v.parse().map_err(|_| "--seed expects a number"))
                .transpose()?
                .unwrap_or(1);
            let mut rng = SimRng::new(seed ^ 0xF162);
            let pids: Vec<ProcessId> = (0..spec.initial).map(ProcessId).collect();
            for step in 0..ops {
                let pid = pids[(rng.next_u64() % pids.len() as u64) as usize];
                if rng.next_u64() % 10 < 6 {
                    ingress.enqueue(pid, 1 + step).map_err(|e| e.to_string())?;
                } else {
                    ingress.dequeue(pid).map_err(|e| e.to_string())?;
                }
            }
        }

        // One-off operations, issued after any workload.
        if let Some(list) = flags.get("enqueue") {
            for item in list.split(',').filter(|s| !s.is_empty()) {
                let (pid, value) = item
                    .split_once(':')
                    .ok_or_else(|| format!("--enqueue expects pid:value, got `{item}`"))?;
                let pid = ProcessId(pid.parse().map_err(|_| "bad pid".to_string())?);
                let value: u64 = value.parse().map_err(|_| "bad value".to_string())?;
                ingress.enqueue(pid, value).map_err(|e| e.to_string())?;
            }
        }
        if let Some(list) = flags.get("dequeue") {
            for item in list.split(',').filter(|s| !s.is_empty()) {
                let pid = ProcessId(item.parse().map_err(|_| "bad pid".to_string())?);
                ingress.dequeue(pid).map_err(|e| e.to_string())?;
            }
        }

        if ingress.issued() == 0 {
            return Err("nothing to do: pass --workload fig2, --enqueue or --dequeue".to_string());
        }
        if !ingress.await_quiescence(timeout) {
            return Err(format!(
                "cluster did not drain: {}/{} operations completed",
                ingress.completed(),
                ingress.issued()
            ));
        }
        for record in ingress.records() {
            match (record.kind, &record.result) {
                (skueue::prelude::OpKind::Enqueue, _) => {
                    println!("p{} enqueue({}) -> ok", record.id.origin.0, record.value)
                }
                (_, OpResult::Returned(_)) => {
                    println!("p{} dequeue() -> {}", record.id.origin.0, record.value)
                }
                (_, _) => println!("p{} dequeue() -> empty", record.id.origin.0),
            }
        }
        // Verification compares the collected history against a sequential
        // queue, so it is only meaningful when this invocation observed all
        // traffic since boot: on by default for the workload mode (a fresh
        // cluster is assumed), opt-in via `--verify true` for one-off ops.
        let verify = match flags.get("verify").map(String::as_str) {
            Some("true") => true,
            Some("false") => false,
            Some(other) => return Err(format!("--verify expects true|false, got `{other}`")),
            None => flags.contains_key("workload"),
        };
        let (p50, p99, p999) = ingress.latency_percentiles_us();
        if verify {
            let report = ingress.verify();
            eprintln!(
                "skueue-ingress: {} ops completed, consistent={}, latency p50={}us p99={}us p999={}us",
                ingress.completed(),
                report.is_consistent(),
                p50,
                p99,
                p999
            );
            if report.is_consistent() {
                Ok(())
            } else {
                Err(format!("history failed the consistency check: {report:?}"))
            }
        } else {
            eprintln!(
                "skueue-ingress: {} ops completed, latency p50={}us p99={}us p999={}us",
                ingress.completed(),
                p50,
                p99,
                p999
            );
            Ok(())
        }
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("skueue-ingress: {message}");
            eprintln!(
                "usage: skueue-ingress --daemons a,b,c [--workload fig2 --ops N --seed S] \
                 [--enqueue pid:value,…] [--dequeue pid,…] [--timeout-s T]"
            );
            ExitCode::from(2)
        }
    }
}
