#!/usr/bin/env bash
# Boots a 3-daemon real-transport cluster on localhost, drives the fig2-style
# mixed workload through `skueue-ingress` (sequential-consistency verifier
# on), exercises a join wave plus a leave through `skueue-ctl`, and shuts the
# cluster down.  Fails if any step exits non-zero, if verification fails, or
# if a daemon does not exit cleanly — i.e. leaks its listener thread.
#
# Usage:
#   scripts/net_smoke.sh [BASE_PORT]
#
#   BASE_PORT  first of three consecutive TCP ports (default: 7451)
#
# See DEPLOY.md for the hand-run version of this walkthrough.
set -euo pipefail

cd "$(dirname "$0")/.."

BASE_PORT="${1:-7451}"
DAEMONS="127.0.0.1:${BASE_PORT},127.0.0.1:$((BASE_PORT + 1)),127.0.0.1:$((BASE_PORT + 2))"
COMMON=(--daemons "$DAEMONS" --initial 5 --shards 2)

cargo build --release --bins

BIN=target/release
PIDS=()
cleanup() {
    # Best-effort teardown if a step fails mid-run.
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
}
trap cleanup EXIT

echo "== booting 3 daemons on $DAEMONS"
for i in 0 1 2; do
    "$BIN/skueue-node" "${COMMON[@]}" --index "$i" &
    PIDS+=($!)
done

echo "== cluster status"
"$BIN/skueue-ctl" "${COMMON[@]}" --cmd status

echo "== fig2 workload through the ingress (verifier on)"
"$BIN/skueue-ingress" "${COMMON[@]}" --workload fig2 --ops 40 --seed 1

echo "== join wave of 2, then leave one joiner"
"$BIN/skueue-ctl" "${COMMON[@]}" --cmd join --count 2
"$BIN/skueue-ctl" "${COMMON[@]}" --cmd leave --pid 5

echo "== shutdown"
"$BIN/skueue-ctl" "${COMMON[@]}" --cmd shutdown

# Every daemon must exit cleanly on its own — a hang here means a leaked
# node thread or listener socket.
for pid in "${PIDS[@]}"; do
    wait "$pid"
done
PIDS=()
trap - EXIT

echo "net smoke passed: workload consistent, churn applied, clean shutdown"
