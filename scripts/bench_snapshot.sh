#!/usr/bin/env bash
# Regenerates the tracked throughput snapshot with the fig2-point throughput
# harness: the current tree at S = 1, the frozen PR-4 baseline rows, and the
# shard sweep S ∈ {1, 2, 4, 8}.  Older snapshots (BENCH_pr2.json …
# BENCH_pr4.json) are frozen history and are never rewritten — the output
# file is an argument precisely so CI and future PRs can pick their own
# name without touching the frozen ones.  See PERF.md.
#
# Usage:
#   scripts/bench_snapshot.sh [--full] [OUTPUT]
#
#   --full    full mode (four fig2 points, shard sweep at n=3·10³, best of
#             3 — the tracked numbers); default is quick mode (two points,
#             shard sweep at n=10³ — the CI smoke)
#   OUTPUT    snapshot filename (default: BENCH_pr5.json)
#
# Any further arguments are passed through to the harness (e.g. --seed 7).
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="--quick"
if [[ "${1:-}" == "--full" ]]; then
    MODE="--full"
    shift
fi

OUT="BENCH_pr5.json"
if [[ $# -gt 0 && "$1" != --* ]]; then
    OUT="$1"
    shift
fi

cargo run --release -p skueue-bench --bin throughput -- \
    "$MODE" --out "$OUT" "$@"

echo "snapshot written to $OUT"
