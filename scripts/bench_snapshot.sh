#!/usr/bin/env bash
# Regenerates the tracked throughput snapshot with the fig2-point throughput
# harness: the current tree at S = 1, the frozen PR-4 baseline rows, and the
# shard sweep S ∈ {1, 2, 4, 8}.  Older snapshots (BENCH_pr2.json …
# BENCH_pr4.json) are frozen history and are never rewritten — the output
# file is an argument precisely so CI and future PRs can pick their own
# name without touching the frozen ones.  See PERF.md.
#
# Usage:
#   scripts/bench_snapshot.sh [--full | --threads] [OUTPUT]
#
#   --full     full mode (four fig2 points, shard sweep at n=3·10³, best of
#              3 — the tracked numbers); default is quick mode (two points,
#              shard sweep at n=10³ — the CI smoke)
#   --threads  the PR-8 parallel-backend report instead: fig2 n=3·10³ S=8 at
#              threads ∈ {1, 2, 4, 8}, the heavy-load open-loop row (≥10⁵
#              requests) on both backends, and the nearest-middle-finger
#              off/on rows (default output: BENCH_pr8.json)
#   --trace    the PR-9 trace-overhead report instead: fig2 n=3·10³ at
#              S ∈ {1, 4} × threads ∈ {1, 4}, each combination measured as a
#              matched tracing-off / TraceLevel::Full row pair (default
#              output: BENCH_pr9.json)
#   --net      the PR-10 real-transport latency report instead: boots a
#              3-daemon localhost cluster, drives the open-loop Poisson load
#              generator through `skueue-load` (verifier on), and records
#              wall-clock p50/p99/p999 operation latency (default output:
#              BENCH_pr10.json).  Wall-clock numbers — machine- and
#              load-dependent, unlike the simulated-round rows above.
#   OUTPUT     snapshot filename (default: BENCH_pr5.json, BENCH_pr8.json
#              with --threads, BENCH_pr9.json with --trace, or
#              BENCH_pr10.json with --net)
#
# Any further arguments are passed through to the harness (e.g. --seed 7).
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="--quick"
DEFAULT_OUT="BENCH_pr5.json"
NET=0
if [[ "${1:-}" == "--full" ]]; then
    MODE="--full"
    shift
elif [[ "${1:-}" == "--threads" ]]; then
    MODE="--threads-sweep"
    DEFAULT_OUT="BENCH_pr8.json"
    shift
elif [[ "${1:-}" == "--trace" ]]; then
    MODE="--trace-sweep"
    DEFAULT_OUT="BENCH_pr9.json"
    shift
elif [[ "${1:-}" == "--net" ]]; then
    NET=1
    DEFAULT_OUT="BENCH_pr10.json"
    shift
fi

OUT="$DEFAULT_OUT"
if [[ $# -gt 0 && "$1" != --* ]]; then
    OUT="$1"
    shift
fi

if [[ "$NET" == 1 ]]; then
    # Real-transport latency row: boot a 3-daemon localhost cluster and run
    # the open-loop load generator against it (any extra args pass through
    # to skueue-load, e.g. --rate 500 --ops 1000).
    BASE_PORT="${NET_BASE_PORT:-7461}"
    DAEMONS="127.0.0.1:${BASE_PORT},127.0.0.1:$((BASE_PORT + 1)),127.0.0.1:$((BASE_PORT + 2))"
    COMMON=(--daemons "$DAEMONS" --initial 5 --shards 2)

    cargo build --release --bins
    BIN=target/release
    PIDS=()
    cleanup() {
        for pid in "${PIDS[@]:-}"; do
            kill "$pid" 2>/dev/null || true
        done
    }
    trap cleanup EXIT
    for i in 0 1 2; do
        "$BIN/skueue-node" "${COMMON[@]}" --index "$i" &
        PIDS+=($!)
    done
    "$BIN/skueue-load" "${COMMON[@]}" --rate 300 --ops 300 --seed 42 \
        --out "$OUT" "$@"
    "$BIN/skueue-ctl" "${COMMON[@]}" --cmd shutdown
    for pid in "${PIDS[@]}"; do
        wait "$pid"
    done
    PIDS=()
    trap - EXIT
    echo "snapshot written to $OUT"
    exit 0
fi

cargo run --release -p skueue-bench --bin throughput -- \
    "$MODE" --out "$OUT" "$@"

echo "snapshot written to $OUT"
