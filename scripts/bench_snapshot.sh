#!/usr/bin/env bash
# Regenerates the tracked throughput snapshot (BENCH_pr3.json at the repo
# root) with the fig2-point throughput harness.  BENCH_pr2.json is the
# frozen pre-PR-3 baseline and is never rewritten.  See PERF.md.
#
# Usage:
#   scripts/bench_snapshot.sh            # quick mode (two points, ~seconds)
#   scripts/bench_snapshot.sh --full     # full mode (four points, best of 3)
#
# Any extra arguments are passed through to the harness (e.g. --seed 7).
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="--quick"
if [[ "${1:-}" == "--full" ]]; then
    MODE="--full"
    shift
fi

cargo run --release -p skueue-bench --bin throughput -- \
    "$MODE" --out BENCH_pr3.json "$@"

echo "snapshot written to BENCH_pr3.json"
