#!/usr/bin/env bash
# Regenerates the tracked throughput snapshot (BENCH_pr4.json at the repo
# root) with the fig2-point throughput harness: the current tree at S = 1,
# the frozen PR-3 baseline rows, and the shard sweep S ∈ {1, 2, 4, 8}.
# BENCH_pr2.json and BENCH_pr3.json are frozen history and are never
# rewritten.  See PERF.md.
#
# Usage:
#   scripts/bench_snapshot.sh            # quick mode (shard sweep at n=10³)
#   scripts/bench_snapshot.sh --full     # full mode (shard sweep at n=3·10³,
#                                        # best of 3 — the tracked numbers)
#
# Any extra arguments are passed through to the harness (e.g. --seed 7).
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="--quick"
if [[ "${1:-}" == "--full" ]]; then
    MODE="--full"
    shift
fi

cargo run --release -p skueue-bench --bin throughput -- \
    "$MODE" --out BENCH_pr4.json "$@"

echo "snapshot written to BENCH_pr4.json"
