#!/usr/bin/env bash
# CI perf-regression gate: measures the fig2 n = 3000 throughput point at
# S = 1 and S = 4 (best of 3 to tolerate runner noise) and fails if either
# drops below 0.8x the matching `shard_sweep` row of the frozen baseline
# snapshot.  The fresh measurement is written as a JSON artifact so the CI
# job can upload it.
#
# Usage:
#   scripts/bench_check.sh [BASELINE] [ARTIFACT]
#
#   BASELINE  frozen snapshot to compare against (default: BENCH_pr4.json —
#             frozen history; never rewritten)
#   ARTIFACT  where to write the fresh measurement (default: BENCH_check.json)
#
# Any extra arguments are passed through to the harness (e.g. --repeats 5
# on a noisy box).
set -euo pipefail

cd "$(dirname "$0")/.."

BASELINE="BENCH_pr4.json"
ARTIFACT="BENCH_check.json"
if [[ $# -gt 0 && "$1" != --* ]]; then
    BASELINE="$1"
    shift
fi
if [[ $# -gt 0 && "$1" != --* ]]; then
    ARTIFACT="$1"
    shift
fi

cargo run --release -p skueue-bench --bin throughput -- \
    --check "$BASELINE" --out "$ARTIFACT" "$@"
