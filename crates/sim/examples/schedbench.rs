//! Microbenchmark of the raw round-loop overhead (no protocol on top).
//!
//! Run with `cargo run --release -p skueue-sim --example schedbench`.

use skueue_sim::actor::{Actor, Context};
use skueue_sim::ids::NodeId;
use skueue_sim::{SimConfig, Simulation};
use std::time::Instant;

/// Actor that sends `fanout` messages to fixed peers every timeout.
struct Chatter {
    n: u64,
    fanout: u64,
}

#[derive(Clone, Debug)]
struct Ping;

impl Actor for Chatter {
    type Msg = Ping;

    fn on_message(&mut self, _from: NodeId, _msg: Ping, _ctx: &mut Context<Ping>) {}

    fn on_timeout(&mut self, ctx: &mut Context<Ping>) {
        let me = ctx.self_id().0;
        for k in 1..=self.fanout {
            ctx.send(NodeId((me + k * 7) % self.n), Ping);
        }
    }
}

fn run(n: u64, fanout: u64, rounds: u64) -> f64 {
    let mut sim = Simulation::new(SimConfig::synchronous(42)).unwrap();
    for _ in 0..n {
        sim.add_node(Chatter { n, fanout });
    }
    let start = Instant::now();
    sim.run_rounds(rounds);
    let el = start.elapsed().as_secs_f64();
    assert!(sim.metrics().messages_delivered > 0 || fanout == 0);
    el * 1e9 / (n as f64 * rounds as f64)
}

fn main() {
    for (n, fanout, rounds) in [
        (3000u64, 0u64, 2000u64),
        (3000, 1, 2000),
        (3000, 4, 1000),
        (9000, 4, 400),
    ] {
        let ns = run(n, fanout, rounds);
        println!("n={n:>6} fanout={fanout} -> {ns:>8.1} ns/node-visit");
    }
}
