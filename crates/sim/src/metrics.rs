//! Simulation metrics: counters, histograms and summary statistics.
//!
//! The paper's experiments report the *average number of rounds per request*
//! (Figures 2–4); the analysis section additionally talks about batch sizes
//! (Theorem 18) and message sizes.  [`SimMetrics`] collects the
//! substrate-level part (messages, rounds, channel occupancy); protocol-level
//! quantities (request latencies, batch lengths) are recorded by the layers
//! above using the same [`Histogram`] type.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple fixed-precision histogram over `u64` samples.
///
/// Samples are kept exactly (sum, min, max, count) plus a bucketed
/// distribution with power-of-two bucket boundaries, which is accurate enough
/// for round counts and batch lengths while staying O(64) in memory.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    /// `buckets[i]` counts samples with `floor(log2(sample)) == i - 1`;
    /// `buckets[0]` counts zeros.
    buckets: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; 65],
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        self.count += 1;
        self.sum += sample as u128;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
        let bucket = if sample == 0 {
            0
        } else {
            (64 - sample.leading_zeros()) as usize
        };
        if self.buckets.len() < 65 {
            self.buckets.resize(65, 0);
        }
        self.buckets[bucket] += 1;
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, sample: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.count += n;
        self.sum += sample as u128 * n as u128;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
        let bucket = if sample == 0 {
            0
        } else {
            (64 - sample.leading_zeros()) as usize
        };
        if self.buckets.len() < 65 {
            self.buckets.resize(65, 0);
        }
        self.buckets[bucket] += n;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Approximate quantile based on the power-of-two buckets: returns the
    /// upper bound of the bucket containing the `q`-quantile.
    pub fn approx_quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut running = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            running += c;
            if running >= target {
                let upper = if i == 0 {
                    0
                } else {
                    (1u64 << i).saturating_sub(1)
                };
                return Some(upper.min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Resets the histogram to its empty state, keeping the bucket storage
    /// (used by the lane merge, which rebuilds aggregate histograms from the
    /// per-lane ones every round without reallocating).
    pub fn clear(&mut self) {
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
        for b in &mut self.buckets {
            *b = 0;
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
    }

    /// Summary view of the histogram.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            min: self.min().unwrap_or(0),
            max: self.max().unwrap_or(0),
        }
    }
}

/// Compact summary statistics of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Mean value.
    pub mean: f64,
    /// Minimum value (0 when empty).
    pub min: u64,
    /// Maximum value (0 when empty).
    pub max: u64,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "count={} mean={:.2} min={} max={}",
            self.count, self.mean, self.min, self.max
        )
    }
}

/// Substrate-level metrics collected by [`crate::Simulation`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimMetrics {
    /// Total messages handed to the simulation.
    pub messages_sent: u64,
    /// Total messages delivered to actors.
    pub messages_delivered: u64,
    /// Total `on_timeout` invocations actually executed.  Nodes whose actor
    /// declared the timeout a no-op (`Actor::wants_timeout() == false`) are
    /// skipped and not counted.
    pub timeouts_fired: u64,
    /// Total node visits by the round loop (woken nodes: deliverable
    /// messages or timeout interest).  `rounds × nodes − nodes_visited`
    /// is the work the wake flags saved.
    pub nodes_visited: u64,
    /// Number of completed rounds.
    pub rounds: u64,
    /// Distribution of per-message delays (in rounds).
    pub delays: Histogram,
    /// Distribution of per-round delivered-message counts.
    pub per_round_deliveries: Histogram,
    /// Distribution of per-round *sent*-message counts.  Together with
    /// [`Self::per_round_deliveries`] this makes message-coalescing effects
    /// (e.g. the protocol layer batching many payload ops into one message)
    /// directly observable at the substrate level.
    pub per_round_sends: Histogram,
    /// Cumulative wall time each lane spent executing its rounds, in
    /// nanoseconds (index = lane).  A single-lane simulation reports one
    /// entry; lane imbalance shows up as a spread across entries.
    pub lane_busy_ns: Vec<u64>,
    /// Cumulative time each lane's result sat waiting at the round barrier
    /// for the slowest lane, in nanoseconds (index = lane).  Only the
    /// parallel backend accumulates this; it is the direct cost of lane
    /// imbalance.
    pub lane_barrier_wait_ns: Vec<u64>,
    /// Process-unique token of the OS thread that most recently executed
    /// each lane (index = lane; see [`crate::exec::thread_token`]).  Lets
    /// tests and CI assert that the parallel backend really spread lanes
    /// over distinct threads.
    pub lane_thread_tokens: Vec<u64>,
}

impl SimMetrics {
    /// Creates an empty metrics container.
    pub fn new() -> Self {
        SimMetrics {
            delays: Histogram::new(),
            per_round_deliveries: Histogram::new(),
            per_round_sends: Histogram::new(),
            ..Default::default()
        }
    }

    /// Average messages sent per round (0.0 before the first round).
    pub fn avg_sends_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.messages_sent as f64 / self.rounds as f64
        }
    }

    /// Average messages delivered per round (0.0 before the first round).
    pub fn avg_deliveries_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.messages_delivered as f64 / self.rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.approx_quantile(0.5), None);
    }

    #[test]
    fn basic_statistics() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 15);
        assert!((h.mean() - 3.0).abs() < 1e-12);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(5));
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for _ in 0..7 {
            a.record(13);
        }
        b.record_n(13, 7);
        assert_eq!(a, b);
        b.record_n(13, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        a.record(1);
        a.record(10);
        let mut b = Histogram::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), Some(100));
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.sum(), 111);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.record(5);
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);
    }

    #[test]
    fn quantile_is_monotone_and_bounded() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let q10 = h.approx_quantile(0.1).unwrap();
        let q50 = h.approx_quantile(0.5).unwrap();
        let q99 = h.approx_quantile(0.99).unwrap();
        assert!(q10 <= q50 && q50 <= q99);
        assert!(q99 <= 999);
    }

    #[test]
    fn zero_samples_land_in_zero_bucket() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(0));
        assert_eq!(h.approx_quantile(0.5), Some(0));
    }

    #[test]
    fn summary_display() {
        let mut h = Histogram::new();
        h.record(2);
        h.record(4);
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 4);
        assert!(s.to_string().contains("mean=3.00"));
    }

    #[test]
    fn sim_metrics_average() {
        let mut m = SimMetrics::new();
        assert_eq!(m.avg_deliveries_per_round(), 0.0);
        m.messages_delivered = 30;
        m.rounds = 10;
        assert!((m.avg_deliveries_per_round() - 3.0).abs() < 1e-12);
    }
}
