//! Simulation configuration.

use crate::delivery::DeliveryModel;
use crate::error::SimError;
use serde::{Deserialize, Serialize};

/// Configuration of a [`crate::Simulation`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Seed for all simulation-level randomness (message delays, tie
    /// breaking). Protocol-level randomness should use forked streams so the
    /// same seed reproduces the same run end-to-end.
    pub seed: u64,
    /// Message delivery model.
    pub delivery: DeliveryModel,
    /// If true, the per-round iteration order over nodes is shuffled each
    /// round (still deterministically from `seed`). The synchronous model of
    /// the paper does not care about intra-round order, but shuffling helps
    /// tests catch accidental order dependencies.
    pub shuffle_node_order: bool,
    /// Record an event trace (costs memory; intended for tests/debugging).
    pub record_trace: bool,
    /// Upper bound on rounds for `run_until`-style drivers; guards against
    /// livelock in buggy protocols. `0` means "no limit".
    pub max_rounds: u64,
}

impl SimConfig {
    /// Synchronous configuration with the given seed — the setting used for
    /// all paper experiments.
    pub fn synchronous(seed: u64) -> Self {
        SimConfig {
            seed,
            delivery: DeliveryModel::Synchronous,
            shuffle_node_order: false,
            record_trace: false,
            max_rounds: 0,
        }
    }

    /// Asynchronous configuration with uniform delays in `[1, max_delay]`.
    pub fn asynchronous(seed: u64, max_delay: u64) -> Self {
        SimConfig {
            seed,
            delivery: DeliveryModel::uniform(max_delay),
            shuffle_node_order: true,
            record_trace: false,
            max_rounds: 0,
        }
    }

    /// Enables trace recording.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Sets the round budget.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), SimError> {
        self.delivery.validate().map_err(SimError::InvalidConfig)
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::synchronous(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronous_defaults() {
        let c = SimConfig::synchronous(7);
        assert_eq!(c.seed, 7);
        assert!(c.delivery.is_synchronous());
        assert!(!c.shuffle_node_order);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn asynchronous_defaults() {
        let c = SimConfig::asynchronous(7, 5);
        assert!(!c.delivery.is_synchronous());
        assert!(c.shuffle_node_order);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_methods() {
        let c = SimConfig::synchronous(1).with_trace().with_max_rounds(99);
        assert!(c.record_trace);
        assert_eq!(c.max_rounds, 99);
    }

    #[test]
    fn invalid_delivery_is_rejected() {
        let mut c = SimConfig::synchronous(1);
        c.delivery = DeliveryModel::UniformRandom {
            min_delay: 5,
            max_delay: 1,
        };
        assert!(matches!(c.validate(), Err(SimError::InvalidConfig(_))));
    }

    #[test]
    fn clone_preserves_fields() {
        let c = SimConfig::asynchronous(3, 9).with_max_rounds(10);
        let d = c.clone();
        assert_eq!(format!("{c:?}"), format!("{d:?}"));
        assert_eq!(d.max_rounds, 10);
        assert_eq!(d.seed, 3);
    }
}
