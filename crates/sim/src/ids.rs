//! Identifier newtypes used throughout the workspace.
//!
//! Keeping these in the simulation substrate avoids circular dependencies:
//! every higher layer (overlay, DHT, protocol, workloads) talks about the
//! same [`NodeId`] / [`ProcessId`] / [`RequestId`] types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a simulated node.
///
/// In Skueue terms a *node* is a **virtual node** of the linearized De Bruijn
/// network — every process emulates three of them (left, middle, right).
/// `NodeId`s are dense indices handed out by the simulation in insertion
/// order, which makes them usable as `Vec` indices in hot paths.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u64);

impl NodeId {
    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(v: u64) -> Self {
        NodeId(v)
    }
}

/// Identifier of a *process* — the unit that joins or leaves the system and
/// emulates three virtual nodes.
///
/// The paper identifies processes by a unique `v.id ∈ ℕ`; the label of the
/// middle virtual node is a pseudorandom hash of this identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(pub u64);

impl ProcessId {
    /// Returns the raw identifier.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u64> for ProcessId {
    fn from(v: u64) -> Self {
        ProcessId(v)
    }
}

/// Globally unique identifier of a single queue/stack request.
///
/// The paper assumes w.l.o.g. that every element is enqueued at most once
/// ("make the calling process and the current count of requests performed a
/// part of e"); `RequestId` is exactly that pair.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RequestId {
    /// The process that issued the request.
    pub origin: ProcessId,
    /// Per-origin sequence number (the `i` in `OP_{v,i}`).
    pub seq: u64,
}

impl RequestId {
    /// Creates a request id for the `seq`-th request of `origin`.
    pub fn new(origin: ProcessId, seq: u64) -> Self {
        RequestId { origin, seq }
    }
}

impl fmt::Debug for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.origin, self.seq)
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.origin, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_roundtrip_and_ordering() {
        let a = NodeId(3);
        let b = NodeId::from(7);
        assert!(a < b);
        assert_eq!(a.index(), 3);
        assert_eq!(format!("{a}"), "n3");
        assert_eq!(format!("{a:?}"), "n3");
    }

    #[test]
    fn process_id_display() {
        let p = ProcessId(42);
        assert_eq!(p.raw(), 42);
        assert_eq!(format!("{p}"), "p42");
    }

    #[test]
    fn request_ids_are_unique_per_origin_sequence() {
        let mut seen = HashSet::new();
        for origin in 0..10u64 {
            for seq in 0..10u64 {
                assert!(seen.insert(RequestId::new(ProcessId(origin), seq)));
            }
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn request_id_ordering_is_origin_then_seq() {
        let a = RequestId::new(ProcessId(1), 5);
        let b = RequestId::new(ProcessId(2), 0);
        let c = RequestId::new(ProcessId(1), 6);
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
    }

    #[test]
    fn display_formats() {
        let r = RequestId::new(ProcessId(2), 9);
        assert_eq!(format!("{r}"), "p2#9");
    }
}
