//! The [`Actor`] trait and the per-invocation [`Context`].
//!
//! An actor corresponds to the paper's notion of a node executing *actions*:
//! a message is a remote action call, and `TIMEOUT` is the single action
//! executed periodically without a triggering message.

use crate::ids::NodeId;
use crate::rng::SimRng;
use crate::Round;

/// A protocol node that lives inside a [`crate::Simulation`].
///
/// Implementations must be deterministic given the sequence of delivered
/// messages, timeouts, and the random bits drawn from [`Context::rng`].
pub trait Actor {
    /// Payload type of the messages this actor exchanges.
    type Msg: Clone + std::fmt::Debug;

    /// Handles a delivered message (`m ∈ v.Ch` being processed).
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Context<Self::Msg>);

    /// The periodic `TIMEOUT` action, executed once per round in the
    /// synchronous model and regularly in the asynchronous model.
    fn on_timeout(&mut self, ctx: &mut Context<Self::Msg>);

    /// Whether the node still wants to receive timeouts. Deactivated nodes
    /// (e.g. processes that completed a `LEAVE()`) return `false`; any
    /// message still addressed to them is delivered (channels are reliable)
    /// but typically just forwarded by the protocol.
    fn is_active(&self) -> bool {
        true
    }

    /// Whether the node's `TIMEOUT` action would currently do anything.
    ///
    /// Defaults to `true` (a timeout every round, the paper's model).  An
    /// actor may return `false` while its timeout is *provably a no-op* —
    /// e.g. a Skueue node whose batch is pending up the aggregation tree —
    /// and the scheduler then skips the visit entirely, which is what makes
    /// large quiescent simulations cheap.  The scheduler re-queries this
    /// after every delivery/timeout visit; a driver that mutates an actor
    /// directly (via [`crate::Simulation::node_mut`]) must call
    /// [`crate::Simulation::refresh_timeout_interest`] afterwards if the
    /// mutation can change the answer.  Returning `false` never suppresses
    /// message delivery.
    fn wants_timeout(&self) -> bool {
        true
    }
}

/// Handle through which an actor interacts with the outside world during a
/// single `on_message` / `on_timeout` invocation.
///
/// All outgoing messages are buffered and scheduled by the simulation after
/// the invocation returns, so an actor always observes a consistent snapshot
/// of its own state while handling one event.
#[derive(Debug)]
pub struct Context<M> {
    self_id: NodeId,
    round: Round,
    outbox: Vec<(NodeId, M)>,
    /// Seed for the lazily materialised per-invocation random stream.
    rng_seed: u64,
    /// The stream itself, created on first use — most protocol actors never
    /// draw randomness, so the scheduler's hot loop only pays for a seed.
    rng: Option<SimRng>,
    /// Number of messages the actor asked to send to itself synchronously
    /// (delivered next round like any other message — self-channels are
    /// ordinary channels in the paper's model).
    self_sends: usize,
}

impl<M> Context<M> {
    /// Creates a context for one invocation. Used by the scheduler and by
    /// unit tests of actors.
    pub fn new(self_id: NodeId, round: Round, rng: SimRng) -> Self {
        Context {
            self_id,
            round,
            outbox: Vec::new(),
            rng_seed: 0,
            rng: Some(rng),
            self_sends: 0,
        }
    }

    /// Creates a context that reuses `outbox` (which must be empty) as its
    /// send buffer and defers creating the random stream until the actor
    /// asks for it.  The scheduler lends its scratch buffer this way so the
    /// hot loop allocates nothing per invocation; reclaim the buffer with
    /// [`Self::into_outbox`].
    pub fn with_outbox(
        self_id: NodeId,
        round: Round,
        rng_seed: u64,
        outbox: Vec<(NodeId, M)>,
    ) -> Self {
        debug_assert!(outbox.is_empty(), "the lent outbox must start empty");
        Context {
            self_id,
            round,
            outbox,
            rng_seed,
            rng: None,
            self_sends: 0,
        }
    }

    /// The id of the node currently executing.
    #[inline]
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// The current round.
    #[inline]
    pub fn round(&self) -> Round {
        self.round
    }

    /// Sends `msg` to `to`. Delivery round is decided by the simulation's
    /// [`crate::DeliveryModel`].
    #[inline]
    pub fn send(&mut self, to: NodeId, msg: M) {
        if to == self.self_id {
            self.self_sends += 1;
        }
        self.outbox.push((to, msg));
    }

    /// Deterministic per-invocation random stream (materialised on first
    /// use).
    #[inline]
    pub fn rng(&mut self) -> &mut SimRng {
        let seed = self.rng_seed;
        self.rng.get_or_insert_with(|| SimRng::new(seed))
    }

    /// Number of messages queued so far in this invocation.
    #[inline]
    pub fn pending_sends(&self) -> usize {
        self.outbox.len()
    }

    /// Number of self-addressed messages queued so far.
    #[inline]
    pub fn self_sends(&self) -> usize {
        self.self_sends
    }

    /// Consumes the context and returns the buffered outgoing messages.
    pub fn into_outbox(self) -> Vec<(NodeId, M)> {
        self.outbox
    }

    /// Drains the buffered messages, leaving the context reusable.
    pub fn drain_outbox(&mut self) -> Vec<(NodeId, M)> {
        std::mem::take(&mut self.outbox)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Echo {
        received: Vec<(NodeId, u32)>,
        timeouts: usize,
    }

    impl Actor for Echo {
        type Msg = u32;

        fn on_message(&mut self, from: NodeId, msg: u32, ctx: &mut Context<u32>) {
            self.received.push((from, msg));
            ctx.send(from, msg + 1);
        }

        fn on_timeout(&mut self, _ctx: &mut Context<u32>) {
            self.timeouts += 1;
        }
    }

    #[test]
    fn context_buffers_sends() {
        let mut ctx = Context::new(NodeId(0), 5, SimRng::new(1));
        assert_eq!(ctx.self_id(), NodeId(0));
        assert_eq!(ctx.round(), 5);
        ctx.send(NodeId(1), "a");
        ctx.send(NodeId(2), "b");
        ctx.send(NodeId(0), "self");
        assert_eq!(ctx.pending_sends(), 3);
        assert_eq!(ctx.self_sends(), 1);
        let out = ctx.into_outbox();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], (NodeId(1), "a"));
    }

    #[test]
    fn drain_outbox_resets() {
        let mut ctx = Context::new(NodeId(0), 0, SimRng::new(1));
        ctx.send(NodeId(1), 7u32);
        assert_eq!(ctx.drain_outbox().len(), 1);
        assert_eq!(ctx.pending_sends(), 0);
        ctx.send(NodeId(1), 9u32);
        assert_eq!(ctx.pending_sends(), 1);
    }

    #[test]
    fn actor_default_is_active() {
        let echo = Echo::default();
        assert!(echo.is_active());
    }

    #[test]
    fn echo_actor_replies() {
        let mut echo = Echo::default();
        let mut ctx = Context::new(NodeId(3), 1, SimRng::new(2));
        echo.on_message(NodeId(9), 41, &mut ctx);
        let out = ctx.into_outbox();
        assert_eq!(out, vec![(NodeId(9), 42)]);
        assert_eq!(echo.received, vec![(NodeId(9), 41)]);
    }

    #[test]
    fn context_rng_is_usable() {
        let mut ctx: Context<()> = Context::new(NodeId(0), 0, SimRng::new(3));
        let a = ctx.rng().next_u64();
        let b = ctx.rng().next_u64();
        assert_ne!(a, b);
    }
}
