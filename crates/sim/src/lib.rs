//! # skueue-sim — message-passing simulation substrate
//!
//! The Skueue paper (Feldmann, Scheideler, Setzer — IPDPS 2018) evaluates its
//! protocol in the *synchronous message passing model*: time proceeds in
//! rounds, every message sent in round `i` is processed in round `i + 1`, and
//! every node executes its `TIMEOUT` action once per round.  Correctness,
//! however, is claimed for the *asynchronous* model with arbitrary finite
//! message delays and non-FIFO delivery.
//!
//! This crate provides both execution substrates:
//!
//! * [`Simulation`] with [`DeliveryModel::Synchronous`] reproduces the round
//!   model used for the paper's experiments (Figures 2–4),
//! * [`Simulation`] with [`DeliveryModel::UniformRandom`] or
//!   [`DeliveryModel::Adversarial`] provides asynchronous, non-FIFO delivery
//!   (driven by a seeded RNG) used by the test-suite to exercise the
//!   protocol's sequential-consistency guarantees under message reordering.
//!
//! The design is a classical discrete-event / discrete-round simulator:
//!
//! * every addressable entity is a *node* (in Skueue terms: a **virtual
//!   node** — each process of the paper emulates three of them),
//! * a node is any type implementing [`Actor`]; it reacts to delivered
//!   messages ([`Actor::on_message`]) and to the per-round timeout
//!   ([`Actor::on_timeout`]),
//! * all side effects go through a [`Context`], which buffers outgoing
//!   messages so that a whole round is computed against a consistent
//!   snapshot,
//! * the simulation is fully deterministic for a given seed and
//!   configuration, which the test-suite and the benchmark harness rely on.
//!
//! The crate deliberately knows nothing about Skueue itself; the overlay, the
//! DHT and the protocol are layered on top (see `skueue-overlay`,
//! `skueue-dht`, `skueue-core`).
//!
//! # Execution backends
//!
//! A simulation's nodes are partitioned into **lanes** (one by default; the
//! Skueue cluster maps every anchor shard to its own lane).  Each lane owns
//! its nodes, its slice of the delivery wheel and an independent RNG
//! stream, so a round decomposes into per-lane work recombined in fixed
//! lane order.  [`ExecMode`] selects whether lanes run on the calling
//! thread or on a pool of worker threads behind a deterministic round
//! barrier (see [`exec`]); both backends produce byte-identical results.

#![deny(unsafe_code)] // `exec`'s queues opt in locally; everything else is forbidden.
#![warn(missing_docs)]

pub mod actor;
pub mod config;
pub mod delivery;
pub mod error;
pub mod exec;
pub mod ids;
pub mod message;
pub mod metrics;
pub mod replay;
pub mod rng;
pub mod scheduler;
pub mod trace;
pub mod transport;

pub use actor::{Actor, Context};
pub use config::SimConfig;
pub use delivery::DeliveryModel;
pub use error::SimError;
pub use exec::ExecMode;
pub use ids::{NodeId, ProcessId, RequestId};
pub use message::Envelope;
pub use metrics::{Histogram, SimMetrics, Summary};
pub use replay::{ReplayScenario, ReplayStep};
pub use rng::SimRng;
pub use scheduler::{RunOutcome, Simulation};
pub use trace::{Trace, TraceEvent};
pub use transport::{SimTransport, Transport};

/// A simulated round (discrete time step of the synchronous model).
pub type Round = u64;
