//! Deterministic random number generation for the simulator.
//!
//! Every source of randomness in the workspace flows through [`SimRng`] so
//! that a simulation run is exactly reproducible from `(seed, config)`.
//! The generator is a small, fast `xoshiro256**`-style PRNG implemented
//! locally (on top of a SplitMix64 seeder) so that sequences are stable
//! across `rand` crate versions — experiment outputs referenced by
//! EXPERIMENTS.md must not silently change when dependencies are bumped.

use rand::RngCore;

/// SplitMix64 step — used for seeding and for stateless hashing elsewhere.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic, seedable PRNG used by the simulation and the workload
/// generators (xoshiro256** core).
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // Avoid the all-zero state (astronomically unlikely, but cheap to guard).
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng { s }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be non-zero");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in `[lo, hi]` (inclusive). Panics if `lo > hi`.
    #[inline]
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "gen_range_inclusive requires lo <= hi");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.gen_range(span + 1)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_unit(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.gen_unit() < p
    }

    /// Derives an independent child generator; useful to give each node or
    /// each experiment repetition its own stream.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        let n = slice.len();
        if n <= 1 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.gen_range((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element index of a non-empty slice.
    pub fn choose_index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot choose from an empty collection");
        self.gen_range(len as u64) as usize
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        SimRng::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 5);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SimRng::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_inclusive_respects_bounds() {
        let mut rng = SimRng::new(9);
        for _ in 0..500 {
            let v = rng.gen_range_inclusive(5, 9);
            assert!((5..=9).contains(&v));
        }
        assert_eq!(rng.gen_range_inclusive(3, 3), 3);
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SimRng::new(11);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(10) as usize] += 1;
        }
        for &c in &counts {
            // Expected 10_000 each; allow generous slack.
            assert!(
                (8_500..=11_500).contains(&c),
                "bucket count {c} out of range"
            );
        }
    }

    #[test]
    fn gen_unit_in_unit_interval() {
        let mut rng = SimRng::new(5);
        for _ in 0..10_000 {
            let x = rng.gen_unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SimRng::new(3);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let trues = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..=3_000).contains(&trues), "got {trues}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(8);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left slice unchanged"
        );
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SimRng::new(123);
        let mut a = parent.fork();
        let mut b = parent.fork();
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 5);
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = SimRng::new(77);
        let mut buf = [0u8; 33];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut s1 = 99u64;
        let mut s2 = 99u64;
        assert_eq!(splitmix64(&mut s1), splitmix64(&mut s2));
        assert_eq!(s1, s2);
    }
}
