//! The transport seam: who moves a posted message toward its receiver.
//!
//! Every Skueue message crosses exactly one boundary: an actor hands
//! `(from, to, payload)` to *something* that eventually delivers the payload
//! to `to`'s [`crate::Actor::on_message`].  The [`Transport`] trait names
//! that boundary.  Two implementations exist:
//!
//! * [`SimTransport`] (this module) — the deterministic delivery wheel the
//!   round-driven [`crate::Simulation`] has always used.  Delays are drawn
//!   from a seeded RNG according to a [`DeliveryModel`]; for a fixed seed the
//!   schedule is bit-for-bit reproducible, which the golden-history tests
//!   and the perf gate rely on.  [`crate::scheduler::Simulation`]'s lanes
//!   embed one `SimTransport` each and call its inherent methods directly
//!   (static dispatch — the seam adds no indirection to the hot loop).
//! * `TcpTransport` (crate `skueue-net`) — real-clock delivery over
//!   length-prefixed frames on localhost TCP sockets, used by the
//!   `skueue-node` daemon.  No delay model, no determinism: correctness of a
//!   run is established *a posteriori* by the sequential-consistency
//!   checker, which the paper's asynchronous-model proof permits (arbitrary
//!   finite delays, non-FIFO — TCP's per-channel FIFO is strictly stronger).
//!
//! The determinism boundary therefore runs exactly through this trait:
//! everything *behind* `SimTransport` (wheel, RNG, sequence numbers) is
//! reproducible state; everything behind a real transport is wall-clock.
//! Protocol code above the seam is identical in both worlds.

use crate::delivery::DeliveryModel;
use crate::ids::NodeId;
use crate::message::Envelope;
use crate::rng::SimRng;
use crate::Round;
use std::collections::BTreeMap;

/// Upper bound on parked spare bucket vectors.  Delivery models bound the
/// number of distinct in-flight `deliver_at` rounds (1 for synchronous,
/// `max_delay` / `straggle_delay` otherwise), so a small pool suffices; the
/// cap only guards against unbounded growth under pathological models.
const SPARE_BUCKET_LIMIT: usize = 64;

/// A message fabric at the `SkueueMsg<T>` boundary: accepts the messages an
/// actor produced and moves them toward delivery.
///
/// Implementors decide *when* and *in which order* a message reaches its
/// destination; the protocol tolerates any finite schedule (the paper's
/// asynchronous model), so a conforming transport only promises that every
/// accepted message is delivered exactly once, eventually.
pub trait Transport<M> {
    /// Accepts one message from `from` addressed to `to`.
    fn send(&mut self, from: NodeId, to: NodeId, msg: M);

    /// Number of messages accepted but not yet handed to a receiver, as far
    /// as this transport can observe (a real network transport reports its
    /// local queues only).
    fn in_flight(&self) -> usize;

    /// Human-readable backend name (for logs and reports).
    fn name(&self) -> &'static str;
}

/// The deterministic simulation transport: a round-bucketed delivery wheel
/// plus the seeded delay RNG and the per-lane message sequence.
///
/// This is the machinery that used to live inline in the scheduler's lanes;
/// it was extracted so the delivery schedule has a name and a second,
/// real-clock implementation can exist beside it.  The lane still calls the
/// inherent methods ([`Self::dispatch`], [`Self::take_due`]) directly, so
/// the extraction is invisible to both the optimizer and the goldens.
#[derive(Debug)]
pub struct SimTransport<M> {
    delivery: DeliveryModel,
    /// The lane's independent RNG stream.  Feeds the delay draws *and* the
    /// per-visit context seeds, in one interleaved sequence — exactly the
    /// historical draw order, which the byte-identical goldens pin.
    pub(crate) rng: SimRng,
    /// Monotone per-transport message sequence (tie-breaker metadata).
    seq: u64,
    /// The round the owning lane last executed (send round for posts).
    round: Round,
    /// Messages accepted but not yet delivered.
    in_flight: usize,
    /// Round-bucketed delivery wheel: `deliver_at → envelopes` in send order.
    /// The next round's bucket is kept out of the map in `hot_bucket`, so in
    /// the synchronous model (and for every delay-1 message) a post is a
    /// plain `Vec::push` with no map traversal.
    wheel: BTreeMap<Round, Vec<Envelope<M>>>,
    /// The round `hot_bucket` collects messages for (always `round + 1`
    /// while actors run).
    hot_round: Round,
    /// Bucket for `hot_round`, appended to in send (= seq) order.
    hot_bucket: Vec<Envelope<M>>,
    /// Emptied bucket vectors parked for reuse (see [`SPARE_BUCKET_LIMIT`]).
    spare_buckets: Vec<Vec<Envelope<M>>>,
}

impl<M> SimTransport<M> {
    /// A fresh transport with the given delivery model and RNG stream.
    pub fn new(delivery: DeliveryModel, rng: SimRng) -> Self {
        SimTransport {
            delivery,
            rng,
            seq: 0,
            round: 0,
            in_flight: 0,
            wheel: BTreeMap::new(),
            hot_round: 1,
            hot_bucket: Vec::new(),
            spare_buckets: Vec::new(),
        }
    }

    /// The round this transport considers "now" (the owning lane's clock).
    #[inline]
    pub fn round(&self) -> Round {
        self.round
    }

    /// Number of accepted-but-undelivered messages.
    #[inline]
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Mutable access to the transport's RNG stream.  The lane draws its
    /// per-visit context seeds from the same stream as the delay draws
    /// (historical behavior the goldens depend on).
    #[inline]
    pub(crate) fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Schedules a message and returns its delivery round.  The delay is
    /// drawn from the delivery model (at least 1: a message is never
    /// delivered in its send round).
    #[inline]
    pub fn dispatch(&mut self, from: NodeId, to: NodeId, msg: M) -> Round {
        let delay = self.delivery.draw_delay(&mut self.rng).max(1);
        let deliver_at = self.round + delay;
        let seq = self.seq;
        self.seq += 1;
        self.in_flight += 1;
        let envelope = Envelope {
            from,
            to,
            sent_at: self.round,
            deliver_at,
            seq,
            payload: msg,
        };
        if deliver_at == self.hot_round {
            self.hot_bucket.push(envelope);
        } else {
            self.wheel
                .entry(deliver_at)
                .or_insert_with(|| self.spare_buckets.pop().unwrap_or_default())
                .push(envelope);
        }
        deliver_at
    }

    /// Advances the transport's clock to `round`, hands every envelope due
    /// in it to `deliver` (hot bucket first, then wheel buckets in ascending
    /// `deliver_at`; each bucket was filled in send order, so the overall
    /// sequence is `(deliver_at, seq)`-ordered), rotates the hot bucket to
    /// `round + 1`, and returns the number of delivered envelopes.
    pub fn take_due(&mut self, round: Round, mut deliver: impl FnMut(Envelope<M>)) -> usize {
        self.round = round;
        let mut delivered_total = 0usize;
        if self.hot_round == round {
            let mut bucket = std::mem::take(&mut self.hot_bucket);
            delivered_total += bucket.len();
            for env in bucket.drain(..) {
                deliver(env);
            }
            self.hot_bucket = bucket;
        }
        while let Some(entry) = self.wheel.first_entry() {
            if *entry.key() > round {
                break;
            }
            let mut bucket = entry.remove();
            delivered_total += bucket.len();
            for env in bucket.drain(..) {
                deliver(env);
            }
            if self.spare_buckets.len() < SPARE_BUCKET_LIMIT {
                self.spare_buckets.push(bucket);
            }
        }
        self.in_flight -= delivered_total;

        // Advance the hot bucket to the next round: adopt an already-open
        // wheel bucket for it (keeping seq order — its envelopes were posted
        // earlier), or reuse the drained vector.
        self.hot_round = round + 1;
        if let Some(early) = self.wheel.remove(&(round + 1)) {
            let drained = std::mem::replace(&mut self.hot_bucket, early);
            if self.spare_buckets.len() < SPARE_BUCKET_LIMIT {
                self.spare_buckets.push(drained);
            }
        }
        delivered_total
    }
}

impl<M> Transport<M> for SimTransport<M> {
    fn send(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.dispatch(from, to, msg);
    }

    fn in_flight(&self) -> usize {
        self.in_flight
    }

    fn name(&self) -> &'static str {
        "sim"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sync_transport() -> SimTransport<u32> {
        SimTransport::new(DeliveryModel::Synchronous, SimRng::new(1))
    }

    #[test]
    fn synchronous_dispatch_delivers_next_round() {
        let mut t = sync_transport();
        assert_eq!(t.dispatch(NodeId(0), NodeId(1), 7), 1);
        assert_eq!(t.in_flight(), 1);
        let mut got = Vec::new();
        let n = t.take_due(1, |env| got.push((env.to, env.payload, env.seq)));
        assert_eq!(n, 1);
        assert_eq!(got, vec![(NodeId(1), 7, 0)]);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn envelopes_arrive_in_deliver_at_then_seq_order() {
        let mut t = SimTransport::new(
            DeliveryModel::UniformRandom {
                min_delay: 1,
                max_delay: 5,
            },
            SimRng::new(42),
        );
        for i in 0..100u32 {
            t.dispatch(NodeId(0), NodeId(1), i);
        }
        let mut seen: Vec<(Round, u64)> = Vec::new();
        for round in 1..=6 {
            t.take_due(round, |env| {
                assert_eq!(env.deliver_at, round);
                seen.push((env.deliver_at, env.seq));
            });
        }
        assert_eq!(seen.len(), 100, "nothing lost");
        let mut sorted = seen.clone();
        sorted.sort();
        assert_eq!(seen, sorted, "(deliver_at, seq) order");
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn trait_object_send_works() {
        let mut t = sync_transport();
        let dynamic: &mut dyn Transport<u32> = &mut t;
        dynamic.send(NodeId(0), NodeId(1), 1);
        assert_eq!(dynamic.in_flight(), 1);
        assert_eq!(dynamic.name(), "sim");
    }
}
