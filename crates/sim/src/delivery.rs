//! Message delivery models.
//!
//! The Skueue paper proves correctness in the fully asynchronous model
//! (arbitrary finite delays, non-FIFO channels, no loss, no duplication) and
//! evaluates performance in the synchronous round model.  [`DeliveryModel`]
//! captures both, plus an adversarial heavy-tail variant used by the
//! failure-injection tests.

use crate::rng::SimRng;
use crate::Round;
use serde::{Deserialize, Serialize};

/// How message delays are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum DeliveryModel {
    /// The synchronous model of the paper's evaluation: every message sent in
    /// round `i` is delivered in round `i + 1`.
    #[default]
    Synchronous,
    /// Asynchronous delivery: every message independently receives a uniform
    /// delay in `[min_delay, max_delay]` rounds.  Because later messages may
    /// draw smaller delays, channels are effectively non-FIFO.
    UniformRandom {
        /// Minimum delay in rounds (≥ 1).
        min_delay: Round,
        /// Maximum delay in rounds (≥ `min_delay`).
        max_delay: Round,
    },
    /// Asynchronous delivery with a heavy tail: with probability
    /// `straggle_prob` the message is delayed by `straggle_delay` rounds,
    /// otherwise by 1 round.  This exercises extreme reordering (e.g. a GET
    /// overtaking its PUT by a long way) while keeping the common case fast.
    Adversarial {
        /// Probability of a message being a straggler, in `[0, 1]`.
        straggle_prob: f64,
        /// Delay applied to stragglers.
        straggle_delay: Round,
    },
}

impl DeliveryModel {
    /// Uniform asynchronous delivery with delays in `[1, max_delay]`.
    pub fn uniform(max_delay: Round) -> Self {
        DeliveryModel::UniformRandom {
            min_delay: 1,
            max_delay: max_delay.max(1),
        }
    }

    /// Validates the parameters of the model.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            DeliveryModel::Synchronous => Ok(()),
            DeliveryModel::UniformRandom {
                min_delay,
                max_delay,
            } => {
                if min_delay == 0 {
                    Err("min_delay must be at least 1".into())
                } else if max_delay < min_delay {
                    Err(format!("max_delay {max_delay} < min_delay {min_delay}"))
                } else {
                    Ok(())
                }
            }
            DeliveryModel::Adversarial {
                straggle_prob,
                straggle_delay,
            } => {
                if !(0.0..=1.0).contains(&straggle_prob) {
                    Err(format!("straggle_prob {straggle_prob} not in [0, 1]"))
                } else if straggle_delay == 0 {
                    Err("straggle_delay must be at least 1".into())
                } else {
                    Ok(())
                }
            }
        }
    }

    /// True for the synchronous round model.
    pub fn is_synchronous(&self) -> bool {
        matches!(self, DeliveryModel::Synchronous)
    }

    /// Draws the delay (in rounds) for one message.
    pub fn draw_delay(&self, rng: &mut SimRng) -> Round {
        match *self {
            DeliveryModel::Synchronous => 1,
            DeliveryModel::UniformRandom {
                min_delay,
                max_delay,
            } => rng.gen_range_inclusive(min_delay, max_delay),
            DeliveryModel::Adversarial {
                straggle_prob,
                straggle_delay,
            } => {
                if rng.gen_bool(straggle_prob) {
                    straggle_delay
                } else {
                    1
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronous_always_one_round() {
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            assert_eq!(DeliveryModel::Synchronous.draw_delay(&mut rng), 1);
        }
    }

    #[test]
    fn uniform_within_bounds() {
        let mut rng = SimRng::new(2);
        let model = DeliveryModel::UniformRandom {
            min_delay: 2,
            max_delay: 6,
        };
        for _ in 0..1000 {
            let d = model.draw_delay(&mut rng);
            assert!((2..=6).contains(&d));
        }
    }

    #[test]
    fn uniform_constructor_clamps() {
        assert_eq!(
            DeliveryModel::uniform(0),
            DeliveryModel::UniformRandom {
                min_delay: 1,
                max_delay: 1
            }
        );
    }

    #[test]
    fn adversarial_mixes_delays() {
        let mut rng = SimRng::new(3);
        let model = DeliveryModel::Adversarial {
            straggle_prob: 0.3,
            straggle_delay: 50,
        };
        let mut slow = 0;
        let mut fast = 0;
        for _ in 0..1000 {
            match model.draw_delay(&mut rng) {
                1 => fast += 1,
                50 => slow += 1,
                other => panic!("unexpected delay {other}"),
            }
        }
        assert!(slow > 200 && slow < 400, "slow={slow}");
        assert!(fast > 600, "fast={fast}");
    }

    #[test]
    fn validation_catches_bad_parameters() {
        assert!(DeliveryModel::Synchronous.validate().is_ok());
        assert!(DeliveryModel::UniformRandom {
            min_delay: 0,
            max_delay: 3
        }
        .validate()
        .is_err());
        assert!(DeliveryModel::UniformRandom {
            min_delay: 4,
            max_delay: 3
        }
        .validate()
        .is_err());
        assert!(DeliveryModel::Adversarial {
            straggle_prob: 1.5,
            straggle_delay: 5
        }
        .validate()
        .is_err());
        assert!(DeliveryModel::Adversarial {
            straggle_prob: 0.5,
            straggle_delay: 0
        }
        .validate()
        .is_err());
        assert!(DeliveryModel::Adversarial {
            straggle_prob: 0.5,
            straggle_delay: 2
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn default_is_synchronous() {
        assert!(DeliveryModel::default().is_synchronous());
        assert!(!DeliveryModel::uniform(3).is_synchronous());
    }
}
