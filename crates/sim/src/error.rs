//! Error type of the simulation substrate.

use crate::ids::NodeId;
use std::fmt;

/// Errors surfaced by [`crate::Simulation`] and its helpers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A message was addressed to a node id that was never registered.
    UnknownNode(NodeId),
    /// A message was addressed to a node that has been deactivated
    /// (and deactivated nodes were configured to reject traffic).
    NodeDeactivated(NodeId),
    /// `run_until` exceeded its round budget without the predicate becoming
    /// true.
    RoundLimitExceeded {
        /// The budget that was exceeded.
        limit: u64,
    },
    /// The configuration was rejected (e.g. an empty delay range).
    InvalidConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownNode(id) => write!(f, "unknown node {id}"),
            SimError::NodeDeactivated(id) => write!(f, "node {id} is deactivated"),
            SimError::RoundLimitExceeded { limit } => {
                write!(f, "round limit of {limit} rounds exceeded")
            }
            SimError::InvalidConfig(msg) => write!(f, "invalid simulation config: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        assert_eq!(
            SimError::UnknownNode(NodeId(5)).to_string(),
            "unknown node n5"
        );
        assert_eq!(
            SimError::RoundLimitExceeded { limit: 10 }.to_string(),
            "round limit of 10 rounds exceeded"
        );
        assert!(SimError::InvalidConfig("bad".into())
            .to_string()
            .contains("bad"));
        assert!(SimError::NodeDeactivated(NodeId(1))
            .to_string()
            .contains("deactivated"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(SimError::UnknownNode(NodeId(1)));
        assert!(e.to_string().contains("n1"));
    }
}
