//! The round-driven simulation engine.
//!
//! [`Simulation`] owns a set of actors (one per virtual node), their
//! channels, and the clock.  One call to [`Simulation::run_round`] executes
//! one round of the paper's model:
//!
//! 1. every node processes the messages that became deliverable this round
//!    (in the synchronous model: everything sent in the previous round),
//! 2. every *active* node then executes its `TIMEOUT` action — unless the
//!    actor declares the timeout a no-op via [`Actor::wants_timeout`], in
//!    which case the visit is skipped entirely,
//! 3. all messages produced in the round are scheduled for later rounds
//!    according to the configured [`crate::DeliveryModel`].
//!
//! Determinism: for a fixed seed, configuration and sequence of driver calls,
//! a run is bit-for-bit reproducible.  Nodes are processed in index order
//! (optionally in a seeded shuffled order), and ties between messages are
//! broken by a global sequence number.
//!
//! # Hot-loop design
//!
//! The round loop is allocation-free in steady state:
//!
//! * In-flight messages live in a round-bucketed **delivery wheel**
//!   (`BTreeMap<Round, Vec<Envelope>>` keyed by `deliver_at`).  A round only
//!   touches the envelopes that become deliverable in it — messages with a
//!   far-future `deliver_at` are never rescanned, unlike the flat per-node
//!   inbox this replaced.  Emptied bucket vectors are parked on a spare list
//!   and reused when a new delivery round opens.
//! * A per-round **wake list** visits only nodes that have deliverable
//!   messages or are active (and therefore receive a `TIMEOUT`); deactivated
//!   nodes without deliveries cost nothing.
//! * Per-node pending queues, the wake list, and the actor outbox are
//!   **scratch buffers** owned by the simulation and reused across rounds.
//! * No per-round sorting: a bucket is filled in send order, so envelopes
//!   arrive at a node already in `(deliver_at, seq)` order.

use crate::actor::{Actor, Context};
use crate::config::SimConfig;
use crate::error::SimError;
use crate::ids::NodeId;
use crate::message::Envelope;
use crate::metrics::SimMetrics;
use crate::rng::SimRng;
use crate::trace::{Trace, TraceEvent};
use crate::Round;
use std::collections::BTreeMap;

/// Upper bound on parked spare bucket vectors.  Delivery models bound the
/// number of distinct in-flight `deliver_at` rounds (1 for synchronous,
/// `max_delay` / `straggle_delay` otherwise), so a small pool suffices; the
/// cap only guards against unbounded growth under pathological models.
const SPARE_BUCKET_LIMIT: usize = 64;

/// Outcome of [`Simulation::run_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The predicate became true after the contained number of rounds.
    Satisfied(Round),
    /// The simulation became quiescent (no messages in flight) without the
    /// predicate becoming true.
    Quiescent(Round),
}

struct NodeSlot<A: Actor> {
    actor: A,
    /// Whether the node takes part in timeouts. Channels remain usable even
    /// for deactivated nodes — the paper's channels never lose messages.
    active: bool,
    /// Messages deliverable in the round currently executing, already in
    /// `(deliver_at, seq)` order.  Drained every round; capacity is reused.
    pending: Vec<Envelope<A::Msg>>,
}

/// A deterministic discrete-round message-passing simulation.
pub struct Simulation<A: Actor> {
    config: SimConfig,
    nodes: Vec<NodeSlot<A>>,
    round: Round,
    rng: SimRng,
    seq: u64,
    in_flight: usize,
    metrics: SimMetrics,
    trace: Option<Trace>,
    /// Round-bucketed delivery wheel: `deliver_at → envelopes` in send order.
    /// The next round's bucket is kept out of the map in `hot_bucket`, so in
    /// the synchronous model (and for every delay-1 message) a post is a
    /// plain `Vec::push` with no map traversal.
    wheel: BTreeMap<Round, Vec<Envelope<A::Msg>>>,
    /// The round `hot_bucket` collects messages for (always `round + 1`
    /// while actors run).
    hot_round: Round,
    /// Bucket for `hot_round`, appended to in send (= seq) order.
    hot_bucket: Vec<Envelope<A::Msg>>,
    /// Emptied bucket vectors parked for reuse (see [`SPARE_BUCKET_LIMIT`]).
    spare_buckets: Vec<Vec<Envelope<A::Msg>>>,
    /// Bit-packed per-node wake flags: bit `i` is set iff node `i` is active
    /// *and* wants its timeout (see [`Actor::wants_timeout`]).  Re-derived
    /// after every visit; the round loop scans these words OR-ed with
    /// [`Self::woken_bits`], so 64 quiescent nodes cost one word-load.
    timeout_flags: Vec<u64>,
    /// Bit-packed per-round delivery marks: bit `i` is set while node `i`
    /// has deliverable messages this round.  Cleared at every round start.
    woken_bits: Vec<u64>,
    /// The indices visited by the current round, in visit order (also the
    /// shuffle buffer and the `visited_last_round` result).
    wake_order: Vec<usize>,
    /// Scratch: outbox buffer lent to each actor invocation.
    outbox: Vec<(NodeId, A::Msg)>,
}

impl<A: Actor> Simulation<A> {
    /// Creates an empty simulation from a configuration.
    pub fn new(config: SimConfig) -> Result<Self, SimError> {
        config.validate()?;
        let rng = SimRng::new(config.seed);
        let trace = if config.record_trace {
            Some(Trace::with_capacity(1 << 16))
        } else {
            None
        };
        Ok(Simulation {
            config,
            nodes: Vec::new(),
            round: 0,
            rng,
            seq: 0,
            in_flight: 0,
            metrics: SimMetrics::new(),
            trace,
            wheel: BTreeMap::new(),
            hot_round: 1,
            hot_bucket: Vec::new(),
            spare_buckets: Vec::new(),
            timeout_flags: Vec::new(),
            woken_bits: Vec::new(),
            wake_order: Vec::new(),
            outbox: Vec::new(),
        })
    }

    /// Convenience constructor for the synchronous model.
    pub fn synchronous(seed: u64) -> Self {
        Simulation::new(SimConfig::synchronous(seed)).expect("synchronous config is always valid")
    }

    /// Adds a node and returns its id. Ids are dense and assigned in
    /// insertion order.
    pub fn add_node(&mut self, actor: A) -> NodeId {
        let idx = self.nodes.len();
        let id = NodeId(idx as u64);
        if idx / 64 >= self.timeout_flags.len() {
            self.timeout_flags.push(0);
            self.woken_bits.push(0);
        }
        if actor.wants_timeout() {
            self.timeout_flags[idx / 64] |= 1u64 << (idx % 64);
        }
        self.nodes.push(NodeSlot {
            actor,
            active: true,
            pending: Vec::new(),
        });
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent::NodeAdded {
                node: id,
                round: self.round,
            });
        }
        id
    }

    /// Number of registered nodes (active or not).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current round (0 before the first call to [`Self::run_round`]).
    pub fn round(&self) -> Round {
        self.round
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// True when no messages are in flight.
    pub fn is_quiescent(&self) -> bool {
        self.in_flight == 0
    }

    /// Immutable access to an actor.
    pub fn node(&self, id: NodeId) -> Option<&A> {
        self.nodes.get(id.index()).map(|slot| &slot.actor)
    }

    /// Mutable access to an actor. The driver (e.g. the Skueue cluster API)
    /// uses this to perform *local* operations such as generating a queue
    /// request at a node — those are not messages in the paper's model.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut A> {
        self.nodes.get_mut(id.index()).map(|slot| &mut slot.actor)
    }

    /// Iterates over `(id, actor)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &A)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, slot)| (NodeId(i as u64), &slot.actor))
    }

    /// Iterates mutably over `(id, actor)` pairs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (NodeId, &mut A)> {
        self.nodes
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| (NodeId(i as u64), &mut slot.actor))
    }

    /// Marks a node as inactive: it stops receiving timeouts but its channel
    /// keeps accepting and delivering messages (reliable channels).
    pub fn deactivate(&mut self, id: NodeId) -> Result<(), SimError> {
        let round = self.round;
        let slot = self
            .nodes
            .get_mut(id.index())
            .ok_or(SimError::UnknownNode(id))?;
        slot.active = false;
        self.refresh_flag(id.index());
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent::NodeDeactivated { node: id, round });
        }
        Ok(())
    }

    /// Re-activates a node (used when a pre-registered process completes its
    /// `JOIN()`).
    pub fn activate(&mut self, id: NodeId) -> Result<(), SimError> {
        let slot = self
            .nodes
            .get_mut(id.index())
            .ok_or(SimError::UnknownNode(id))?;
        slot.active = true;
        self.refresh_flag(id.index());
        Ok(())
    }

    /// Re-evaluates a node's wake flag after a driver-side mutation that may
    /// have changed [`Actor::wants_timeout`] (e.g. injecting a local request
    /// or asking a node to leave through [`Self::node_mut`]).
    pub fn refresh_timeout_interest(&mut self, id: NodeId) -> Result<(), SimError> {
        if id.index() >= self.nodes.len() {
            return Err(SimError::UnknownNode(id));
        }
        self.refresh_flag(id.index());
        Ok(())
    }

    /// Re-derives node `idx`'s wake-flag bit from its current state.
    fn refresh_flag(&mut self, idx: usize) {
        let slot = &self.nodes[idx];
        let bit = 1u64 << (idx % 64);
        if slot.active && slot.actor.wants_timeout() {
            self.timeout_flags[idx / 64] |= bit;
        } else {
            self.timeout_flags[idx / 64] &= !bit;
        }
    }

    /// Whether a node is currently active.
    pub fn is_active(&self, id: NodeId) -> bool {
        self.nodes
            .get(id.index())
            .map(|s| s.active)
            .unwrap_or(false)
    }

    /// Injects a message from the outside world (delivered like any other
    /// message, in the next round at the earliest).
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: A::Msg) -> Result<(), SimError> {
        if to.index() >= self.nodes.len() {
            return Err(SimError::UnknownNode(to));
        }
        self.post(from, to, msg);
        Ok(())
    }

    /// Substrate metrics collected so far.
    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// The recorded trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Indices of the nodes visited by the most recent [`Self::run_round`]
    /// (in visit order).  Drivers use this to post-process only the nodes
    /// that can have produced output — e.g. collecting completion records —
    /// instead of sweeping every node every round.
    pub fn visited_last_round(&self) -> &[usize] {
        &self.wake_order
    }

    fn post(&mut self, from: NodeId, to: NodeId, msg: A::Msg) {
        debug_assert!(to.index() < self.nodes.len(), "send to unknown node {to}");
        let delay = self.config.delivery.draw_delay(&mut self.rng).max(1);
        let deliver_at = self.round + delay;
        let seq = self.seq;
        self.seq += 1;
        self.metrics.messages_sent += 1;
        self.metrics.delays.record(delay);
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent::Sent {
                from,
                to,
                round: self.round,
                deliver_at,
            });
        }
        self.in_flight += 1;
        let envelope = Envelope {
            from,
            to,
            sent_at: self.round,
            deliver_at,
            seq,
            payload: msg,
        };
        if deliver_at == self.hot_round {
            self.hot_bucket.push(envelope);
        } else {
            self.wheel
                .entry(deliver_at)
                .or_insert_with(|| self.spare_buckets.pop().unwrap_or_default())
                .push(envelope);
        }
    }

    /// Delivers a node's pending messages, fires its timeout if it is
    /// active, and posts everything it sent.  The pending queue and the
    /// outbox scratch are moved out and back so their capacity is reused;
    /// the moves are skipped entirely on the (hot) quiet path.
    #[inline]
    fn visit_node(&mut self, idx: usize, round: Round) {
        let self_id = NodeId(idx as u64);
        // Equivalent to handing the context `self.rng.fork()`, but the
        // xoshiro state is only set up if the actor actually draws bits.
        let ctx_seed = self.rng.next_u64();
        let mut ctx =
            Context::with_outbox(self_id, round, ctx_seed, std::mem::take(&mut self.outbox));
        if !self.nodes[idx].pending.is_empty() {
            let mut pending = std::mem::take(&mut self.nodes[idx].pending);
            let slot = &mut self.nodes[idx];
            for env in pending.drain(..) {
                if let Some(trace) = &mut self.trace {
                    trace.push(TraceEvent::Delivered {
                        from: env.from,
                        to: self_id,
                        round,
                    });
                }
                slot.actor.on_message(env.from, env.payload, &mut ctx);
            }
            self.nodes[idx].pending = pending;
        }
        let slot = &mut self.nodes[idx];
        if slot.active {
            slot.actor.on_timeout(&mut ctx);
            self.metrics.timeouts_fired += 1;
            if let Some(trace) = &mut self.trace {
                trace.push(TraceEvent::Timeout {
                    node: self_id,
                    round,
                });
            }
        }
        let mut outbox = ctx.into_outbox();
        if !outbox.is_empty() {
            for (to, msg) in outbox.drain(..) {
                self.post(self_id, to, msg);
            }
        }
        self.outbox = outbox;
    }

    /// Executes one round and returns the number of messages delivered in it.
    pub fn run_round(&mut self) -> usize {
        self.round += 1;
        let round = self.round;
        let sends_before = self.metrics.messages_sent;

        // Phase 1: scatter this round's bucket(s) into the per-node pending
        // queues, marking each destination as woken.  Buckets are drained
        // in ascending `deliver_at` order and were filled in send order, so
        // each pending queue ends up in `(deliver_at, seq)` order without
        // sorting.
        for word in &mut self.woken_bits {
            *word = 0;
        }
        let mut delivered_total = 0usize;
        if self.hot_round == round {
            let mut bucket = std::mem::take(&mut self.hot_bucket);
            delivered_total += bucket.len();
            for env in bucket.drain(..) {
                let idx = env.to.index();
                self.woken_bits[idx / 64] |= 1u64 << (idx % 64);
                self.nodes[idx].pending.push(env);
            }
            self.hot_bucket = bucket;
        }
        while let Some(entry) = self.wheel.first_entry() {
            if *entry.key() > round {
                break;
            }
            let mut bucket = entry.remove();
            delivered_total += bucket.len();
            for env in bucket.drain(..) {
                let idx = env.to.index();
                self.woken_bits[idx / 64] |= 1u64 << (idx % 64);
                self.nodes[idx].pending.push(env);
            }
            if self.spare_buckets.len() < SPARE_BUCKET_LIMIT {
                self.spare_buckets.push(bucket);
            }
        }
        self.in_flight -= delivered_total;

        // Advance the hot bucket to the next round: adopt an already-open
        // wheel bucket for it (keeping seq order — its envelopes were posted
        // earlier), or reuse the drained vector.
        self.hot_round = round + 1;
        if let Some(early) = self.wheel.remove(&(round + 1)) {
            let drained = std::mem::replace(&mut self.hot_bucket, early);
            if self.spare_buckets.len() < SPARE_BUCKET_LIMIT {
                self.spare_buckets.push(drained);
            }
        }

        // Phases 2+3: visit exactly the woken nodes — those whose wake-flag
        // bit is set (active + timeout interest) or that received a message
        // this round.  The scan is over the OR of the two bit words, so 64
        // quiescent nodes cost a single word-load; the shuffle mode
        // materialises the wake list before visiting.  A node's flag is
        // re-derived after its visit, so timeout interest follows the
        // actor's state from round to round.
        self.wake_order.clear();
        let words = self.timeout_flags.len();
        if !self.config.shuffle_node_order {
            for wi in 0..words {
                let mut word = self.timeout_flags[wi] | self.woken_bits[wi];
                while word != 0 {
                    let idx = wi * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    self.visit_node(idx, round);
                    self.refresh_flag(idx);
                    self.wake_order.push(idx);
                }
            }
        } else {
            for wi in 0..words {
                let mut word = self.timeout_flags[wi] | self.woken_bits[wi];
                while word != 0 {
                    let idx = wi * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    self.wake_order.push(idx);
                }
            }
            let mut wake = std::mem::take(&mut self.wake_order);
            self.rng.shuffle(&mut wake);
            for &idx in &wake {
                self.visit_node(idx, round);
                self.refresh_flag(idx);
            }
            self.wake_order = wake;
        }
        self.metrics.nodes_visited += self.wake_order.len() as u64;

        self.metrics.messages_delivered += delivered_total as u64;
        self.metrics.rounds = round;
        self.metrics
            .per_round_deliveries
            .record(delivered_total as u64);
        self.metrics
            .per_round_sends
            .record(self.metrics.messages_sent - sends_before);
        delivered_total
    }

    /// Runs exactly `rounds` rounds.
    pub fn run_rounds(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.run_round();
        }
    }

    /// Runs rounds until `pred(self)` is true, the simulation goes quiescent,
    /// or the budget (`max_rounds`, falling back to the config's value, with
    /// `0` meaning unlimited) is exhausted.
    pub fn run_until<F>(&mut self, mut pred: F, max_rounds: u64) -> Result<RunOutcome, SimError>
    where
        F: FnMut(&Simulation<A>) -> bool,
    {
        let limit = if max_rounds > 0 {
            max_rounds
        } else {
            self.config.max_rounds
        };
        let start = self.round;
        loop {
            if pred(self) {
                return Ok(RunOutcome::Satisfied(self.round - start));
            }
            if self.is_quiescent() && self.round > start {
                // One extra quiescence check after at least one round, so
                // that drivers which inject work before calling run_until
                // still get their messages flushed.
                return Ok(RunOutcome::Quiescent(self.round - start));
            }
            if limit > 0 && self.round - start >= limit {
                return Err(SimError::RoundLimitExceeded { limit });
            }
            self.run_round();
        }
    }

    /// Runs rounds until no messages are in flight (or the budget runs out).
    pub fn run_to_quiescence(&mut self, max_rounds: u64) -> Result<Round, SimError> {
        let start = self.round;
        loop {
            if self.is_quiescent() {
                return Ok(self.round - start);
            }
            if max_rounds > 0 && self.round - start >= max_rounds {
                return Err(SimError::RoundLimitExceeded { limit: max_rounds });
            }
            self.run_round();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delivery::DeliveryModel;

    /// A node that forwards a token `hops` more times along a ring.
    #[derive(Debug)]
    struct Ring {
        n: u64,
        received: Vec<u64>,
        timeouts: u64,
    }

    #[derive(Debug, Clone)]
    struct Token {
        remaining: u64,
    }

    impl Actor for Ring {
        type Msg = Token;

        fn on_message(&mut self, _from: NodeId, msg: Token, ctx: &mut Context<Token>) {
            self.received.push(msg.remaining);
            if msg.remaining > 0 {
                let next = NodeId((ctx.self_id().0 + 1) % self.n);
                ctx.send(
                    next,
                    Token {
                        remaining: msg.remaining - 1,
                    },
                );
            }
        }

        fn on_timeout(&mut self, _ctx: &mut Context<Token>) {
            self.timeouts += 1;
        }
    }

    fn ring_sim(n: u64, config: SimConfig) -> Simulation<Ring> {
        let mut sim = Simulation::new(config).unwrap();
        for _ in 0..n {
            sim.add_node(Ring {
                n,
                received: Vec::new(),
                timeouts: 0,
            });
        }
        sim
    }

    #[test]
    fn empty_simulation_is_quiescent() {
        let sim: Simulation<Ring> = Simulation::synchronous(0);
        assert!(sim.is_quiescent());
        assert!(sim.is_empty());
        assert_eq!(sim.round(), 0);
    }

    #[test]
    fn token_travels_one_hop_per_round_in_sync_mode() {
        let mut sim = ring_sim(5, SimConfig::synchronous(1));
        sim.inject(NodeId(0), NodeId(0), Token { remaining: 4 })
            .unwrap();
        assert_eq!(sim.in_flight(), 1);
        // 5 deliveries: remaining 4,3,2,1,0 — one per round.
        for expected_round in 1..=5u64 {
            let delivered = sim.run_round();
            assert_eq!(delivered, 1, "round {expected_round}");
        }
        assert!(sim.is_quiescent());
        assert_eq!(sim.round(), 5);
        // Node 4 got remaining=0, node 0 got remaining=4.
        assert_eq!(sim.node(NodeId(0)).unwrap().received, vec![4]);
        assert_eq!(sim.node(NodeId(4)).unwrap().received, vec![0]);
    }

    #[test]
    fn timeouts_fire_once_per_round_per_active_node() {
        let mut sim = ring_sim(3, SimConfig::synchronous(2));
        sim.run_rounds(10);
        for (_, node) in sim.iter() {
            assert_eq!(node.timeouts, 10);
        }
        assert_eq!(sim.metrics().timeouts_fired, 30);
    }

    #[test]
    fn deactivated_nodes_skip_timeouts_but_receive_messages() {
        let mut sim = ring_sim(3, SimConfig::synchronous(3));
        sim.deactivate(NodeId(1)).unwrap();
        assert!(!sim.is_active(NodeId(1)));
        sim.inject(NodeId(0), NodeId(1), Token { remaining: 0 })
            .unwrap();
        sim.run_rounds(5);
        assert_eq!(sim.node(NodeId(1)).unwrap().timeouts, 0);
        assert_eq!(sim.node(NodeId(1)).unwrap().received, vec![0]);
        sim.activate(NodeId(1)).unwrap();
        sim.run_rounds(1);
        assert_eq!(sim.node(NodeId(1)).unwrap().timeouts, 1);
    }

    #[test]
    fn inject_to_unknown_node_fails() {
        let mut sim = ring_sim(2, SimConfig::synchronous(0));
        assert!(matches!(
            sim.inject(NodeId(0), NodeId(99), Token { remaining: 0 }),
            Err(SimError::UnknownNode(_))
        ));
        assert!(sim.deactivate(NodeId(99)).is_err());
        assert!(sim.activate(NodeId(99)).is_err());
    }

    #[test]
    fn run_until_quiescence() {
        let mut sim = ring_sim(4, SimConfig::synchronous(5));
        sim.inject(NodeId(0), NodeId(0), Token { remaining: 10 })
            .unwrap();
        let rounds = sim.run_to_quiescence(100).unwrap();
        assert_eq!(rounds, 11);
        let total: usize = sim.iter().map(|(_, n)| n.received.len()).sum();
        assert_eq!(total, 11);
    }

    #[test]
    fn run_until_predicate() {
        let mut sim = ring_sim(4, SimConfig::synchronous(5));
        sim.inject(NodeId(0), NodeId(0), Token { remaining: 100 })
            .unwrap();
        let outcome = sim.run_until(|s| s.round() >= 7, 1000).unwrap();
        assert_eq!(outcome, RunOutcome::Satisfied(7));
    }

    #[test]
    fn run_until_round_limit() {
        let mut sim = ring_sim(4, SimConfig::synchronous(5));
        sim.inject(
            NodeId(0),
            NodeId(0),
            Token {
                remaining: u64::MAX,
            },
        )
        .unwrap();
        let err = sim.run_until(|_| false, 20).unwrap_err();
        assert_eq!(err, SimError::RoundLimitExceeded { limit: 20 });
    }

    #[test]
    fn async_mode_delivers_everything_exactly_once() {
        let mut config = SimConfig::asynchronous(9, 7);
        config.record_trace = true;
        let mut sim = ring_sim(6, config);
        for i in 0..6u64 {
            sim.inject(NodeId(i), NodeId(i), Token { remaining: 9 })
                .unwrap();
        }
        sim.run_to_quiescence(10_000).unwrap();
        let total: usize = sim.iter().map(|(_, n)| n.received.len()).sum();
        assert_eq!(total, 60, "each of the 6 tokens must make 10 hops");
        assert_eq!(
            sim.metrics().messages_sent,
            sim.metrics().messages_delivered
        );
    }

    #[test]
    fn async_mode_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut sim = ring_sim(5, SimConfig::asynchronous(seed, 5));
            sim.inject(NodeId(0), NodeId(0), Token { remaining: 20 })
                .unwrap();
            sim.run_to_quiescence(100_000).unwrap();
            (
                sim.round(),
                sim.iter()
                    .map(|(_, n)| n.received.clone())
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(77), run(77));
        // Different seeds almost surely produce a different schedule length.
        let (r1, _) = run(1);
        let (r2, _) = run(2);
        // They may coincide, but the received sequences should rarely be equal;
        // just assert both runs completed.
        assert!(r1 > 0 && r2 > 0);
    }

    #[test]
    fn metrics_track_messages_and_delays() {
        let mut sim = ring_sim(3, SimConfig::synchronous(4));
        sim.inject(NodeId(0), NodeId(0), Token { remaining: 5 })
            .unwrap();
        sim.run_to_quiescence(100).unwrap();
        let m = sim.metrics();
        assert_eq!(m.messages_sent, 6);
        assert_eq!(m.messages_delivered, 6);
        assert_eq!(m.delays.max(), Some(1));
        assert!(m.avg_deliveries_per_round() > 0.0);
    }

    #[test]
    fn trace_records_send_and_delivery() {
        let config = SimConfig::synchronous(1).with_trace();
        let mut sim = ring_sim(2, config);
        sim.inject(NodeId(0), NodeId(1), Token { remaining: 0 })
            .unwrap();
        sim.run_rounds(2);
        let trace = sim.trace().unwrap();
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::Sent { .. })));
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::Delivered { .. })));
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::NodeAdded { .. })));
    }

    #[test]
    fn adversarial_delivery_still_delivers_all() {
        let mut config = SimConfig::synchronous(11);
        config.delivery = DeliveryModel::Adversarial {
            straggle_prob: 0.5,
            straggle_delay: 40,
        };
        let mut sim = ring_sim(4, config);
        sim.inject(NodeId(0), NodeId(0), Token { remaining: 30 })
            .unwrap();
        sim.run_to_quiescence(100_000).unwrap();
        let total: usize = sim.iter().map(|(_, n)| n.received.len()).sum();
        assert_eq!(total, 31);
    }

    #[test]
    fn node_mut_allows_driver_side_mutation() {
        let mut sim = ring_sim(2, SimConfig::synchronous(0));
        sim.node_mut(NodeId(0)).unwrap().timeouts = 99;
        assert_eq!(sim.node(NodeId(0)).unwrap().timeouts, 99);
        assert!(sim.node_mut(NodeId(5)).is_none());
    }

    /// An actor that only wants timeouts while `armed` is set; receiving a
    /// message arms it once.
    #[derive(Debug, Default)]
    struct Sleeper {
        armed: bool,
        timeouts: u64,
        received: u64,
    }

    impl Actor for Sleeper {
        type Msg = ();

        fn on_message(&mut self, _from: NodeId, _msg: (), _ctx: &mut Context<()>) {
            self.received += 1;
            self.armed = true;
        }

        fn on_timeout(&mut self, _ctx: &mut Context<()>) {
            self.timeouts += 1;
            self.armed = false;
        }

        fn wants_timeout(&self) -> bool {
            self.armed
        }
    }

    #[test]
    fn wants_timeout_false_skips_visits_but_not_deliveries() {
        let mut sim: Simulation<Sleeper> = Simulation::synchronous(1);
        let a = sim.add_node(Sleeper::default());
        let b = sim.add_node(Sleeper::default());
        sim.run_rounds(5);
        // Nobody is armed: no timeouts fire, no nodes are visited.
        assert_eq!(sim.metrics().timeouts_fired, 0);
        assert_eq!(sim.metrics().nodes_visited, 0);
        // A message still wakes the destination, whose next timeout then
        // fires exactly once (on_timeout disarms again).
        sim.inject(a, b, ()).unwrap();
        sim.run_rounds(3);
        assert_eq!(sim.node(b).unwrap().received, 1);
        assert_eq!(sim.node(b).unwrap().timeouts, 1);
        assert_eq!(sim.node(a).unwrap().timeouts, 0);
    }

    #[test]
    fn refresh_timeout_interest_after_driver_mutation() {
        let mut sim: Simulation<Sleeper> = Simulation::synchronous(2);
        let a = sim.add_node(Sleeper::default());
        sim.run_rounds(2);
        assert_eq!(sim.node(a).unwrap().timeouts, 0);
        // Driver-side arming is invisible until the interest is refreshed.
        sim.node_mut(a).unwrap().armed = true;
        sim.refresh_timeout_interest(a).unwrap();
        sim.run_rounds(1);
        assert_eq!(sim.node(a).unwrap().timeouts, 1);
        assert!(sim.refresh_timeout_interest(NodeId(9)).is_err());
    }

    #[test]
    fn visited_last_round_lists_woken_nodes() {
        let mut sim = ring_sim(3, SimConfig::synchronous(4));
        sim.run_rounds(1);
        // All ring nodes want timeouts, so all are visited in index order.
        assert_eq!(sim.visited_last_round(), &[0, 1, 2]);
    }

    /// A node that counts received payloads and asserts delivery-time bounds.
    #[derive(Debug)]
    struct BoundsChecker {
        n: u64,
        min_delay: u64,
        max_delay: u64,
        received: u64,
    }

    #[derive(Debug, Clone)]
    struct Hop {
        sent_at: u64,
        remaining: u64,
    }

    impl Actor for BoundsChecker {
        type Msg = Hop;

        fn on_message(&mut self, _from: NodeId, msg: Hop, ctx: &mut Context<Hop>) {
            let now = ctx.round();
            assert!(
                now >= msg.sent_at + self.min_delay,
                "delivered at {now}, sent at {} with min delay {}",
                msg.sent_at,
                self.min_delay
            );
            assert!(
                now <= msg.sent_at + self.max_delay,
                "delivered at {now}, sent at {} with max delay {}",
                msg.sent_at,
                self.max_delay
            );
            self.received += 1;
            if msg.remaining > 0 {
                let next = NodeId((ctx.self_id().0 + 1) % self.n);
                ctx.send(
                    next,
                    Hop {
                        sent_at: now,
                        remaining: msg.remaining - 1,
                    },
                );
            }
        }

        fn on_timeout(&mut self, _ctx: &mut Context<Hop>) {}
    }

    proptest::proptest! {
        /// The bucketed delivery wheel never delivers a message before its
        /// `deliver_at` (sent round + model delay), never after the model's
        /// maximum delay, and never drops or duplicates one.
        #[test]
        fn prop_bucketed_delivery_respects_bounds_and_loses_nothing(
            seed in proptest::any::<u64>(),
            n in 2u64..12,
            min_delay in 1u64..4,
            extra in 0u64..5,
            hops in 1u64..30,
            injections in 1u64..5,
        ) {
            let max_delay = min_delay + extra;
            let mut config = SimConfig::asynchronous(seed, max_delay);
            config.delivery = crate::DeliveryModel::UniformRandom { min_delay, max_delay };
            let mut sim = Simulation::new(config).unwrap();
            for _ in 0..n {
                sim.add_node(BoundsChecker {
                    n,
                    min_delay,
                    max_delay,
                    received: 0,
                });
            }
            for i in 0..injections {
                sim.inject(
                    NodeId(i % n),
                    NodeId(i % n),
                    Hop { sent_at: 0, remaining: hops },
                )
                .unwrap();
            }
            sim.run_to_quiescence(1_000_000).unwrap();
            let total: u64 = (0..n).map(|i| sim.node(NodeId(i)).unwrap().received).sum();
            // Every injected token makes hops + 1 deliveries; nothing lost,
            // nothing duplicated.
            proptest::prop_assert_eq!(total, injections * (hops + 1));
            proptest::prop_assert_eq!(
                sim.metrics().messages_sent,
                sim.metrics().messages_delivered
            );
            proptest::prop_assert_eq!(sim.in_flight(), 0);
        }
    }
}
