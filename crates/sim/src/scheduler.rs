//! The round-driven simulation engine.
//!
//! [`Simulation`] owns a set of actors (one per virtual node), their
//! channels, and the clock.  One call to [`Simulation::run_round`] executes
//! one round of the paper's model:
//!
//! 1. every node processes the messages that became deliverable this round
//!    (in the synchronous model: everything sent in the previous round),
//! 2. every *active* node then executes its `TIMEOUT` action — unless the
//!    actor declares the timeout a no-op via [`Actor::wants_timeout`], in
//!    which case the visit is skipped entirely,
//! 3. all messages produced in the round are scheduled for later rounds
//!    according to the configured [`crate::DeliveryModel`].
//!
//! Determinism: for a fixed seed, configuration and sequence of driver calls,
//! a run is bit-for-bit reproducible.  Nodes are processed in index order
//! (optionally in a seeded shuffled order), and ties between messages are
//! broken by a per-lane sequence number.
//!
//! # Lanes
//!
//! Nodes are partitioned into **lanes** (one by default).  A lane owns its
//! node slots, its slice of the delivery wheel, an independent RNG stream
//! and its own scratch buffers, so one round decomposes into independent
//! per-lane rounds recombined in fixed lane order:
//!
//! * the per-round wake list is merged in ascending node-id order (the
//!   classic visit order) — or in lane-concatenation order under shuffle,
//! * per-lane metrics and trace buffers are folded into the global views,
//! * the rare message that crosses a lane boundary is detoured through a
//!   per-lane outbox and routed by the driver after all lanes finish, drawing
//!   its delay from the *destination* lane's stream in fixed lane order.
//!
//! The Skueue cluster maps every anchor shard to its own lane; shard
//! independence (all protocol traffic is intra-shard) means the cross-lane
//! detour never fires there.  Lanes make the round loop parallelisable: with
//! [`Simulation::enable_parallel`] each lane's round executes on a worker
//! thread of a persistent [`crate::exec::WorkerPool`] behind a deterministic
//! round barrier.  Because a lane's round depends only on lane-owned state
//! and merges happen in lane order, the parallel backend is **byte-identical**
//! to the single-threaded one for every seed and any thread count.
//!
//! # Hot-loop design
//!
//! The round loop is allocation-free in steady state:
//!
//! * In-flight messages live in a round-bucketed **delivery wheel**
//!   (`BTreeMap<Round, Vec<Envelope>>` keyed by `deliver_at`).  A round only
//!   touches the envelopes that become deliverable in it — messages with a
//!   far-future `deliver_at` are never rescanned, unlike the flat per-node
//!   inbox this replaced.  Emptied bucket vectors are parked on a spare list
//!   and reused when a new delivery round opens.
//! * A per-round **wake list** visits only nodes that have deliverable
//!   messages or are active (and therefore receive a `TIMEOUT`); deactivated
//!   nodes without deliveries cost nothing.
//! * Per-node pending queues, the wake list, and the actor outbox are
//!   **scratch buffers** owned by the lane and reused across rounds.
//! * No per-round sorting: a bucket is filled in send order, so envelopes
//!   arrive at a node already in `(deliver_at, seq)` order.  (The merged
//!   wake list does sort ids in multi-lane runs — over the handful of woken
//!   nodes, not the message volume.)

use crate::actor::{Actor, Context};
use crate::config::SimConfig;
use crate::error::SimError;
use crate::exec::{thread_token, RoundTask, WorkerPool};
use crate::ids::NodeId;
use crate::message::Envelope;
use crate::metrics::{Histogram, SimMetrics};
use crate::rng::{splitmix64, SimRng};
use crate::trace::{Trace, TraceEvent};
use crate::transport::SimTransport;
use crate::Round;
use std::time::Instant;

/// Marker in a lane's global→local slot map for "not one of my nodes".
const NOT_LOCAL: u32 = u32::MAX;

/// Outcome of [`Simulation::run_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The predicate became true after the contained number of rounds.
    Satisfied(Round),
    /// The simulation became quiescent (no messages in flight) without the
    /// predicate becoming true.
    Quiescent(Round),
}

struct NodeSlot<A: Actor> {
    actor: A,
    /// Whether the node takes part in timeouts. Channels remain usable even
    /// for deactivated nodes — the paper's channels never lose messages.
    active: bool,
    /// Messages deliverable in the round currently executing, already in
    /// `(deliver_at, seq)` order.  Drained every round; capacity is reused.
    pending: Vec<Envelope<A::Msg>>,
}

/// Cumulative per-lane counters, folded into the global [`SimMetrics`] by
/// the driver's round merge.
#[derive(Debug, Default)]
struct LaneMetrics {
    messages_sent: u64,
    messages_delivered: u64,
    timeouts_fired: u64,
    nodes_visited: u64,
    delays: Histogram,
    busy_ns: u64,
    barrier_wait_ns: u64,
    thread_token: u64,
}

/// One lane: a partition of the simulation's nodes together with everything
/// needed to run their share of a round without touching other lanes.
struct Lane<A: Actor> {
    // Per-lane copies of the configuration bits the round loop needs (the
    // lane must be shippable to a worker thread without borrowing the
    // simulation).
    shuffle: bool,
    record_trace: bool,
    /// The lane's message fabric: delivery wheel, delay RNG and message
    /// sequence (see [`crate::transport`]).  The lane calls its inherent
    /// methods directly — static dispatch, no hot-loop indirection.  Lane
    /// 0's RNG stream is seeded exactly like the pre-lane global stream, so
    /// single-lane runs are bit-identical to the historical scheduler.
    transport: SimTransport<A::Msg>,
    nodes: Vec<NodeSlot<A>>,
    /// Lane slot → global node id.
    global_ids: Vec<u64>,
    /// Global node id → lane slot (`NOT_LOCAL` for other lanes' nodes; only
    /// grown for ids at or below this lane's own highest node).
    local_slot: Vec<u32>,
    /// Bit-packed per-slot wake flags: bit `i` is set iff slot `i` is active
    /// *and* wants its timeout (see [`Actor::wants_timeout`]).  Re-derived
    /// after every visit.
    timeout_flags: Vec<u64>,
    /// Bit-packed per-round delivery marks: bit `i` is set while slot `i`
    /// has deliverable messages this round.  Cleared at every round start.
    woken_bits: Vec<u64>,
    /// The lane slots visited by the current round, in visit order.
    wake_order: Vec<usize>,
    /// Scratch: outbox buffer lent to each actor invocation.
    outbox: Vec<(NodeId, A::Msg)>,
    /// Messages addressed outside this lane, handed to the driver for
    /// routing after the round barrier.
    xlane: Vec<(NodeId, NodeId, A::Msg)>,
    /// Trace events recorded by this lane's round, flushed into the global
    /// trace in lane order by the round merge.
    trace_buf: Vec<TraceEvent>,
    metrics: LaneMetrics,
    /// Messages delivered by the most recent round (merge input).
    delta_delivered: usize,
    /// Messages sent during the most recent round (merge input; excludes
    /// driver-side injections, which happen between rounds).
    delta_sent: u64,
    /// Wall time of the most recent round (merge input for barrier-wait
    /// accounting).
    delta_busy_ns: u64,
}

impl<A: Actor> Lane<A> {
    fn new(config: &SimConfig, lane: usize) -> Self {
        let seed = if lane == 0 {
            config.seed
        } else {
            // Derived, well-separated stream for every additional lane.
            let mut s = config
                .seed
                .wrapping_add((lane as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            splitmix64(&mut s)
        };
        Lane {
            shuffle: config.shuffle_node_order,
            record_trace: config.record_trace,
            transport: SimTransport::new(config.delivery, SimRng::new(seed)),
            nodes: Vec::new(),
            global_ids: Vec::new(),
            local_slot: Vec::new(),
            timeout_flags: Vec::new(),
            woken_bits: Vec::new(),
            wake_order: Vec::new(),
            outbox: Vec::new(),
            xlane: Vec::new(),
            trace_buf: Vec::new(),
            metrics: LaneMetrics::default(),
            delta_delivered: 0,
            delta_sent: 0,
            delta_busy_ns: 0,
        }
    }

    /// Pre-sizes the lane for `nodes` more nodes (capacity hint only).
    /// Node slots are large (the actor is stored inline), so growing the
    /// slot vector by doubling costs a multi-megabyte memcpy per step once
    /// several lanes interleave their allocations; a bulk build that knows
    /// its lane sizes up front reserves once and never reallocates.
    fn reserve_nodes(&mut self, nodes: usize) {
        self.nodes.reserve(nodes);
        let slots = self.nodes.len() + nodes;
        self.global_ids.reserve(nodes);
        self.timeout_flags.reserve(slots.div_ceil(64));
        self.woken_bits.reserve(slots.div_ceil(64));
    }

    /// Registers a node with global id `global` and returns its lane slot.
    fn add_node(&mut self, global: u64, actor: A) -> usize {
        let slot = self.nodes.len();
        if slot / 64 >= self.timeout_flags.len() {
            self.timeout_flags.push(0);
            self.woken_bits.push(0);
        }
        if actor.wants_timeout() {
            self.timeout_flags[slot / 64] |= 1u64 << (slot % 64);
        }
        self.nodes.push(NodeSlot {
            actor,
            active: true,
            pending: Vec::new(),
        });
        self.global_ids.push(global);
        if self.local_slot.len() <= global as usize {
            self.local_slot.resize(global as usize + 1, NOT_LOCAL);
        }
        self.local_slot[global as usize] = slot as u32;
        slot
    }

    /// The lane slot of a global node id, if the node lives in this lane.
    #[inline]
    fn slot_of(&self, id: NodeId) -> Option<usize> {
        match self.local_slot.get(id.index()) {
            Some(&slot) if slot != NOT_LOCAL => Some(slot as usize),
            _ => None,
        }
    }

    /// Re-derives slot `slot`'s wake-flag bit from its current state.
    fn refresh_flag(&mut self, slot: usize) {
        let node = &self.nodes[slot];
        let bit = 1u64 << (slot % 64);
        if node.active && node.actor.wants_timeout() {
            self.timeout_flags[slot / 64] |= bit;
        } else {
            self.timeout_flags[slot / 64] &= !bit;
        }
    }

    /// Posts a message sent by one of this lane's actors.  Intra-lane
    /// destinations are scheduled directly; anything else is detoured to the
    /// driver's cross-lane router.
    fn post(&mut self, from: NodeId, to: NodeId, msg: A::Msg) {
        match self.slot_of(to) {
            Some(_) => {
                self.post_local(from, to, msg);
            }
            None => self.xlane.push((from, to, msg)),
        }
    }

    /// Schedules a message for an intra-lane destination and returns its
    /// delivery round.
    fn post_local(&mut self, from: NodeId, to: NodeId, msg: A::Msg) -> Round {
        let sent_at = self.transport.round();
        let deliver_at = self.transport.dispatch(from, to, msg);
        self.metrics.messages_sent += 1;
        self.metrics.delays.record(deliver_at - sent_at);
        if self.record_trace {
            self.trace_buf.push(TraceEvent::Sent {
                from,
                to,
                round: sent_at,
                deliver_at,
            });
        }
        deliver_at
    }

    /// Delivers a slot's pending messages, fires its timeout if it is
    /// active, and posts everything it sent.  The pending queue and the
    /// outbox scratch are moved out and back so their capacity is reused;
    /// the moves are skipped entirely on the (hot) quiet path.
    #[inline]
    fn visit_node(&mut self, slot: usize, round: Round) {
        let self_id = NodeId(self.global_ids[slot]);
        // Equivalent to handing the context `rng.fork()`, but the
        // xoshiro state is only set up if the actor actually draws bits.
        let ctx_seed = self.transport.rng_mut().next_u64();
        let mut ctx =
            Context::with_outbox(self_id, round, ctx_seed, std::mem::take(&mut self.outbox));
        if !self.nodes[slot].pending.is_empty() {
            let mut pending = std::mem::take(&mut self.nodes[slot].pending);
            let node = &mut self.nodes[slot];
            for env in pending.drain(..) {
                if self.record_trace {
                    self.trace_buf.push(TraceEvent::Delivered {
                        from: env.from,
                        to: self_id,
                        round,
                    });
                }
                node.actor.on_message(env.from, env.payload, &mut ctx);
            }
            self.nodes[slot].pending = pending;
        }
        let node = &mut self.nodes[slot];
        if node.active {
            node.actor.on_timeout(&mut ctx);
            self.metrics.timeouts_fired += 1;
            if self.record_trace {
                self.trace_buf.push(TraceEvent::Timeout {
                    node: self_id,
                    round,
                });
            }
        }
        let mut outbox = ctx.into_outbox();
        if !outbox.is_empty() {
            for (to, msg) in outbox.drain(..) {
                self.post(self_id, to, msg);
            }
        }
        self.outbox = outbox;
    }

    /// Executes this lane's share of one round.
    fn run_round(&mut self, round: Round) {
        let started = Instant::now();
        let sends_before = self.metrics.messages_sent;

        // Phase 1: scatter this round's due envelopes into the per-slot
        // pending queues, marking each destination as woken.  The transport
        // hands them over in `(deliver_at, seq)` order, so each pending
        // queue ends up ordered without sorting.
        for word in &mut self.woken_bits {
            *word = 0;
        }
        let Lane {
            transport,
            nodes,
            local_slot,
            woken_bits,
            ..
        } = self;
        let delivered_total = transport.take_due(round, |env| {
            let slot = local_slot[env.to.index()] as usize;
            woken_bits[slot / 64] |= 1u64 << (slot % 64);
            nodes[slot].pending.push(env);
        });

        // Phases 2+3: visit exactly the woken slots — those whose wake-flag
        // bit is set (active + timeout interest) or that received a message
        // this round.  The scan is over the OR of the two bit words, so 64
        // quiescent nodes cost a single word-load; the shuffle mode
        // materialises the wake list before visiting.  A slot's flag is
        // re-derived after its visit, so timeout interest follows the
        // actor's state from round to round.
        self.wake_order.clear();
        let words = self.timeout_flags.len();
        if !self.shuffle {
            for wi in 0..words {
                let mut word = self.timeout_flags[wi] | self.woken_bits[wi];
                while word != 0 {
                    let slot = wi * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    self.visit_node(slot, round);
                    self.refresh_flag(slot);
                    self.wake_order.push(slot);
                }
            }
        } else {
            for wi in 0..words {
                let mut word = self.timeout_flags[wi] | self.woken_bits[wi];
                while word != 0 {
                    let slot = wi * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    self.wake_order.push(slot);
                }
            }
            let mut wake = std::mem::take(&mut self.wake_order);
            self.transport.rng_mut().shuffle(&mut wake);
            for &slot in &wake {
                self.visit_node(slot, round);
                self.refresh_flag(slot);
            }
            self.wake_order = wake;
        }
        self.metrics.nodes_visited += self.wake_order.len() as u64;
        self.metrics.messages_delivered += delivered_total as u64;
        self.delta_delivered = delivered_total;
        self.delta_sent = self.metrics.messages_sent - sends_before;
        self.delta_busy_ns = started.elapsed().as_nanos() as u64;
        self.metrics.busy_ns += self.delta_busy_ns;
        self.metrics.thread_token = thread_token();
    }
}

impl<A> RoundTask for Lane<A>
where
    A: Actor + Send + 'static,
    A::Msg: Send,
{
    fn run_task(&mut self, round: u64) {
        self.run_round(round);
    }
}

/// A deterministic discrete-round message-passing simulation.
pub struct Simulation<A: Actor> {
    config: SimConfig,
    /// The lanes.  `Option` because the parallel backend temporarily moves
    /// lane boxes to worker threads inside [`Self::run_round`]; between
    /// driver calls every slot is `Some`.
    lanes: Vec<Option<Box<Lane<A>>>>,
    /// Global node id → `(lane, slot)`.
    node_loc: Vec<(u32, u32)>,
    round: Round,
    metrics: SimMetrics,
    trace: Option<Trace>,
    /// The global node ids visited by the most recent round (merged across
    /// lanes; see [`Self::visited_last_round`]).
    merged_wake: Vec<usize>,
    /// Scratch for the cross-lane router.
    xroute: Vec<(NodeId, NodeId, A::Msg)>,
    /// Worker pool of the parallel backend (`None` = single-threaded).
    pool: Option<WorkerPool<Lane<A>>>,
}

impl<A: Actor> Simulation<A> {
    /// Creates an empty simulation from a configuration (one lane; see
    /// [`Self::configure_lanes`]).
    pub fn new(config: SimConfig) -> Result<Self, SimError> {
        config.validate()?;
        let trace = if config.record_trace {
            Some(Trace::with_capacity(1 << 16))
        } else {
            None
        };
        let lane = Box::new(Lane::new(&config, 0));
        Ok(Simulation {
            config,
            lanes: vec![Some(lane)],
            node_loc: Vec::new(),
            round: 0,
            metrics: SimMetrics::new(),
            trace,
            merged_wake: Vec::new(),
            xroute: Vec::new(),
            pool: None,
        })
    }

    /// Convenience constructor for the synchronous model.
    pub fn synchronous(seed: u64) -> Self {
        Simulation::new(SimConfig::synchronous(seed)).expect("synchronous config is always valid")
    }

    /// Immutable access to a lane (every slot is `Some` between rounds).
    #[inline]
    fn lane(&self, lane: usize) -> &Lane<A> {
        self.lanes[lane].as_ref().expect("lane present")
    }

    /// Mutable access to a lane.
    #[inline]
    fn lane_mut(&mut self, lane: usize) -> &mut Lane<A> {
        self.lanes[lane].as_mut().expect("lane present")
    }

    /// Repartitions the (still empty) simulation into `count` lanes.  Lane 0
    /// keeps the historical RNG stream; every further lane gets its own
    /// derived stream.  Must be called before any node is added.
    pub fn configure_lanes(&mut self, count: usize) -> Result<(), SimError> {
        if count == 0 {
            return Err(SimError::InvalidConfig(
                "a simulation needs at least one lane".into(),
            ));
        }
        if !self.node_loc.is_empty() {
            return Err(SimError::InvalidConfig(
                "lanes must be configured before nodes are added".into(),
            ));
        }
        self.lanes = (0..count)
            .map(|l| Some(Box::new(Lane::new(&self.config, l))))
            .collect();
        self.pool = None;
        Ok(())
    }

    /// Number of lanes the simulation is partitioned into.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The lane a node belongs to.
    pub fn lane_of(&self, id: NodeId) -> Option<usize> {
        self.node_loc.get(id.index()).map(|&(l, _)| l as usize)
    }

    /// Adds a node to lane 0 and returns its id. Ids are dense and assigned
    /// in insertion order, independent of the lane.
    pub fn add_node(&mut self, actor: A) -> NodeId {
        self.add_node_in_lane(0, actor)
    }

    /// Pre-sizes a lane for `nodes` more nodes (a capacity hint, not a
    /// limit).  Bulk builders that know the final lane population call this
    /// once per lane before the `add_node_in_lane` loop; actor slots are
    /// large, so skipping the doubling reallocations saves a multi-megabyte
    /// memcpy per growth step on big clusters.
    pub fn reserve_nodes_in_lane(&mut self, lane: usize, nodes: usize) {
        assert!(
            lane < self.lanes.len(),
            "lane {lane} out of range ({} lanes)",
            self.lanes.len()
        );
        self.node_loc.reserve(nodes);
        self.lane_mut(lane).reserve_nodes(nodes);
    }

    /// Adds a node to the given lane and returns its (global) id.
    ///
    /// # Panics
    ///
    /// Panics when `lane` is out of range (driver bug — the lane layout is
    /// fixed at configuration time).
    pub fn add_node_in_lane(&mut self, lane: usize, actor: A) -> NodeId {
        assert!(
            lane < self.lanes.len(),
            "lane {lane} out of range ({} lanes)",
            self.lanes.len()
        );
        let global = self.node_loc.len() as u64;
        let id = NodeId(global);
        let slot = self.lane_mut(lane).add_node(global, actor);
        self.node_loc.push((lane as u32, slot as u32));
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent::NodeAdded {
                node: id,
                round: self.round,
            });
        }
        id
    }

    /// Number of registered nodes (active or not).
    pub fn len(&self) -> usize {
        self.node_loc.len()
    }

    /// True if no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.node_loc.is_empty()
    }

    /// Current round (0 before the first call to [`Self::run_round`]).
    pub fn round(&self) -> Round {
        self.round
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.lanes
            .iter()
            .map(|l| l.as_ref().expect("lane present").transport.in_flight())
            .sum()
    }

    /// True when no messages are in flight.
    pub fn is_quiescent(&self) -> bool {
        self.in_flight() == 0
    }

    /// Switches the round loop to the parallel backend with (up to)
    /// `threads` worker threads — values `<= 1` (or a single lane) select
    /// the single-threaded backend.  May be toggled between rounds; results
    /// are byte-identical either way.
    pub fn enable_parallel(&mut self, threads: usize)
    where
        A: Send + 'static,
        A::Msg: Send,
    {
        let workers = threads.min(self.lanes.len());
        if workers <= 1 || self.lanes.len() <= 1 {
            self.pool = None;
            return;
        }
        self.pool = Some(WorkerPool::new(workers, self.lanes.len()));
    }

    /// Number of worker threads of the parallel backend (1 when the
    /// single-threaded backend is active).
    pub fn parallel_threads(&self) -> usize {
        self.pool.as_ref().map(|p| p.worker_count()).unwrap_or(1)
    }

    /// Immutable access to an actor.
    pub fn node(&self, id: NodeId) -> Option<&A> {
        let &(lane, slot) = self.node_loc.get(id.index())?;
        Some(&self.lane(lane as usize).nodes[slot as usize].actor)
    }

    /// Mutable access to an actor. The driver (e.g. the Skueue cluster API)
    /// uses this to perform *local* operations such as generating a queue
    /// request at a node — those are not messages in the paper's model.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut A> {
        let &(lane, slot) = self.node_loc.get(id.index())?;
        Some(&mut self.lane_mut(lane as usize).nodes[slot as usize].actor)
    }

    /// Iterates over `(id, actor)` pairs in global id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &A)> {
        self.node_loc.iter().enumerate().map(move |(i, &(l, s))| {
            (
                NodeId(i as u64),
                &self.lane(l as usize).nodes[s as usize].actor,
            )
        })
    }

    /// Iterates mutably over `(id, actor)` pairs.  Multi-lane simulations
    /// iterate lane-major (lane order, then slot order); with one lane this
    /// is exactly global id order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (NodeId, &mut A)> {
        self.lanes.iter_mut().flat_map(|slot| {
            let lane = slot.as_mut().expect("lane present");
            lane.nodes
                .iter_mut()
                .zip(lane.global_ids.iter())
                .map(|(node, &gid)| (NodeId(gid), &mut node.actor))
        })
    }

    /// Marks a node as inactive: it stops receiving timeouts but its channel
    /// keeps accepting and delivering messages (reliable channels).
    pub fn deactivate(&mut self, id: NodeId) -> Result<(), SimError> {
        let round = self.round;
        let &(lane, slot) = self
            .node_loc
            .get(id.index())
            .ok_or(SimError::UnknownNode(id))?;
        let lane = self.lane_mut(lane as usize);
        lane.nodes[slot as usize].active = false;
        lane.refresh_flag(slot as usize);
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent::NodeDeactivated { node: id, round });
        }
        Ok(())
    }

    /// Re-activates a node (used when a pre-registered process completes its
    /// `JOIN()`).
    pub fn activate(&mut self, id: NodeId) -> Result<(), SimError> {
        let &(lane, slot) = self
            .node_loc
            .get(id.index())
            .ok_or(SimError::UnknownNode(id))?;
        let lane = self.lane_mut(lane as usize);
        lane.nodes[slot as usize].active = true;
        lane.refresh_flag(slot as usize);
        Ok(())
    }

    /// Re-evaluates a node's wake flag after a driver-side mutation that may
    /// have changed [`Actor::wants_timeout`] (e.g. injecting a local request
    /// or asking a node to leave through [`Self::node_mut`]).
    pub fn refresh_timeout_interest(&mut self, id: NodeId) -> Result<(), SimError> {
        let &(lane, slot) = self
            .node_loc
            .get(id.index())
            .ok_or(SimError::UnknownNode(id))?;
        self.lane_mut(lane as usize).refresh_flag(slot as usize);
        Ok(())
    }

    /// Whether a node is currently active.
    pub fn is_active(&self, id: NodeId) -> bool {
        match self.node_loc.get(id.index()) {
            Some(&(lane, slot)) => self.lane(lane as usize).nodes[slot as usize].active,
            None => false,
        }
    }

    /// Injects a message from the outside world (delivered like any other
    /// message, in the next round at the earliest).
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: A::Msg) -> Result<(), SimError> {
        let &(lane_idx, _) = self
            .node_loc
            .get(to.index())
            .ok_or(SimError::UnknownNode(to))?;
        let round = self.round;
        let lane = self.lane_mut(lane_idx as usize);
        debug_assert_eq!(
            lane.transport.round(),
            round,
            "lane clock out of sync with driver"
        );
        let deliver_at = lane.post_local(from, to, msg);
        // Keep the aggregate counters current between rounds (the round
        // merge recomputes them wholesale from the per-lane metrics, so the
        // eager update never double-counts).
        self.metrics.messages_sent += 1;
        self.metrics.delays.record(deliver_at - round);
        self.flush_lane_trace(lane_idx as usize);
        Ok(())
    }

    /// Moves a lane's buffered trace events into the global trace (used
    /// between rounds; the round merge does this for all lanes in order).
    fn flush_lane_trace(&mut self, lane: usize) {
        if self.trace.is_none() {
            return;
        }
        let buf = std::mem::take(&mut self.lane_mut(lane).trace_buf);
        let trace = self.trace.as_mut().expect("checked above");
        for event in &buf {
            trace.push(event.clone());
        }
        let mut buf = buf;
        buf.clear();
        self.lane_mut(lane).trace_buf = buf;
    }

    /// Substrate metrics collected so far.
    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// The recorded trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Global ids of the nodes visited by the most recent
    /// [`Self::run_round`].  Single-lane simulations report the exact visit
    /// order; multi-lane runs merge the per-lane lists in ascending id order
    /// (or lane-concatenation order under shuffle).  Drivers use this to
    /// post-process only the nodes that can have produced output — e.g.
    /// collecting completion records — instead of sweeping every node every
    /// round.
    pub fn visited_last_round(&self) -> &[usize] {
        &self.merged_wake
    }

    /// Executes one round and returns the number of messages delivered in it.
    pub fn run_round(&mut self) -> usize {
        self.round += 1;
        let round = self.round;
        let started = Instant::now();
        let parallel = self.pool.is_some() && self.lanes.len() > 1;
        if parallel {
            let pool = self.pool.as_mut().expect("checked above");
            for idx in 0..self.lanes.len() {
                let lane = self.lanes[idx].take().expect("lane present between rounds");
                pool.submit(idx, lane, round);
            }
            for _ in 0..self.lanes.len() {
                let (idx, lane) = pool.collect_one();
                self.lanes[idx] = Some(lane);
            }
        } else {
            for slot in &mut self.lanes {
                slot.as_mut().expect("lane present").run_round(round);
            }
        }
        let round_wall_ns = started.elapsed().as_nanos() as u64;
        let routed = self.route_cross_lane();
        self.merge_round(round, round_wall_ns, parallel, routed)
    }

    /// Routes messages that crossed a lane boundary, in fixed lane order,
    /// drawing each delay from the destination lane's stream.  Returns the
    /// number of routed messages.  (The Skueue cluster never takes this
    /// path — shard traffic is intra-lane by construction — but generic
    /// actors may send anywhere.)
    fn route_cross_lane(&mut self) -> u64 {
        let mut routed = 0u64;
        for src in 0..self.lanes.len() {
            if self.lane(src).xlane.is_empty() {
                continue;
            }
            let mut pending = std::mem::take(&mut self.lane_mut(src).xlane);
            debug_assert!(self.xroute.is_empty());
            self.xroute.append(&mut pending);
            self.lane_mut(src).xlane = pending;
            let mut batch = std::mem::take(&mut self.xroute);
            for (from, to, msg) in batch.drain(..) {
                let (lane, _slot) = self.node_loc[to.index()];
                self.lane_mut(lane as usize).post_local(from, to, msg);
                routed += 1;
            }
            self.xroute = batch;
        }
        routed
    }

    /// Recombines the per-lane round outputs — wake lists, traces, metrics —
    /// in fixed lane order and returns the round's delivered-message count.
    fn merge_round(
        &mut self,
        round: Round,
        round_wall_ns: u64,
        parallel: bool,
        routed: u64,
    ) -> usize {
        // Merged visit list (global ids).  One lane: the exact visit order.
        // Multi-lane: ascending id order (the historical global visit order)
        // or lane-concatenation order under shuffle — deterministic either
        // way.
        self.merged_wake.clear();
        for slot in &self.lanes {
            let lane = slot.as_ref().expect("lane present");
            self.merged_wake
                .extend(lane.wake_order.iter().map(|&s| lane.global_ids[s] as usize));
        }
        if self.lanes.len() > 1 && !self.config.shuffle_node_order {
            self.merged_wake.sort_unstable();
        }

        // Trace: flush per-lane buffers in lane order.
        if self.trace.is_some() {
            for lane in 0..self.lanes.len() {
                self.flush_lane_trace(lane);
            }
        }

        // Metrics: recompute aggregate counters from the per-lane cumulative
        // ones, fold the round deltas into the per-round histograms, and
        // surface the per-lane timing columns.
        let lane_count = self.lanes.len();
        let m = &mut self.metrics;
        m.rounds = round;
        m.lane_busy_ns.resize(lane_count, 0);
        m.lane_barrier_wait_ns.resize(lane_count, 0);
        m.lane_thread_tokens.resize(lane_count, 0);
        m.delays.clear();
        let mut sent = 0u64;
        let mut delivered = 0u64;
        let mut timeouts = 0u64;
        let mut visited = 0u64;
        let mut delivered_this_round = 0usize;
        let mut sent_this_round = 0u64;
        for (l, slot) in self.lanes.iter_mut().enumerate() {
            let lane = slot.as_mut().expect("lane present");
            sent += lane.metrics.messages_sent;
            delivered += lane.metrics.messages_delivered;
            timeouts += lane.metrics.timeouts_fired;
            visited += lane.metrics.nodes_visited;
            m.delays.merge(&lane.metrics.delays);
            delivered_this_round += lane.delta_delivered;
            sent_this_round += lane.delta_sent;
            if parallel {
                lane.metrics.barrier_wait_ns += round_wall_ns.saturating_sub(lane.delta_busy_ns);
            }
            m.lane_busy_ns[l] = lane.metrics.busy_ns;
            m.lane_barrier_wait_ns[l] = lane.metrics.barrier_wait_ns;
            m.lane_thread_tokens[l] = lane.metrics.thread_token;
        }
        m.messages_sent = sent;
        m.messages_delivered = delivered;
        m.timeouts_fired = timeouts;
        m.nodes_visited = visited;
        m.per_round_deliveries.record(delivered_this_round as u64);
        m.per_round_sends.record(sent_this_round + routed);
        delivered_this_round
    }

    /// Runs exactly `rounds` rounds.
    pub fn run_rounds(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.run_round();
        }
    }

    /// Runs rounds until `pred(self)` is true, the simulation goes quiescent,
    /// or the budget (`max_rounds`, falling back to the config's value, with
    /// `0` meaning unlimited) is exhausted.
    pub fn run_until<F>(&mut self, mut pred: F, max_rounds: u64) -> Result<RunOutcome, SimError>
    where
        F: FnMut(&Simulation<A>) -> bool,
    {
        let limit = if max_rounds > 0 {
            max_rounds
        } else {
            self.config.max_rounds
        };
        let start = self.round;
        loop {
            if pred(self) {
                return Ok(RunOutcome::Satisfied(self.round - start));
            }
            if self.is_quiescent() && self.round > start {
                // One extra quiescence check after at least one round, so
                // that drivers which inject work before calling run_until
                // still get their messages flushed.
                return Ok(RunOutcome::Quiescent(self.round - start));
            }
            if limit > 0 && self.round - start >= limit {
                return Err(SimError::RoundLimitExceeded { limit });
            }
            self.run_round();
        }
    }

    /// Runs rounds until no messages are in flight (or the budget runs out).
    pub fn run_to_quiescence(&mut self, max_rounds: u64) -> Result<Round, SimError> {
        let start = self.round;
        loop {
            if self.is_quiescent() {
                return Ok(self.round - start);
            }
            if max_rounds > 0 && self.round - start >= max_rounds {
                return Err(SimError::RoundLimitExceeded { limit: max_rounds });
            }
            self.run_round();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delivery::DeliveryModel;

    /// A node that forwards a token `hops` more times along a ring.
    #[derive(Debug)]
    struct Ring {
        n: u64,
        received: Vec<u64>,
        timeouts: u64,
    }

    #[derive(Debug, Clone)]
    struct Token {
        remaining: u64,
    }

    impl Actor for Ring {
        type Msg = Token;

        fn on_message(&mut self, _from: NodeId, msg: Token, ctx: &mut Context<Token>) {
            self.received.push(msg.remaining);
            if msg.remaining > 0 {
                let next = NodeId((ctx.self_id().0 + 1) % self.n);
                ctx.send(
                    next,
                    Token {
                        remaining: msg.remaining - 1,
                    },
                );
            }
        }

        fn on_timeout(&mut self, _ctx: &mut Context<Token>) {
            self.timeouts += 1;
        }
    }

    fn ring_sim(n: u64, config: SimConfig) -> Simulation<Ring> {
        let mut sim = Simulation::new(config).unwrap();
        for _ in 0..n {
            sim.add_node(Ring {
                n,
                received: Vec::new(),
                timeouts: 0,
            });
        }
        sim
    }

    /// Same ring, but nodes dealt round-robin over `lanes` lanes (every hop
    /// crosses a lane boundary — the worst case for the cross-lane router).
    fn laned_ring_sim(n: u64, lanes: usize, config: SimConfig) -> Simulation<Ring> {
        let mut sim = Simulation::new(config).unwrap();
        sim.configure_lanes(lanes).unwrap();
        for i in 0..n {
            sim.add_node_in_lane(
                i as usize % lanes,
                Ring {
                    n,
                    received: Vec::new(),
                    timeouts: 0,
                },
            );
        }
        sim
    }

    #[test]
    fn empty_simulation_is_quiescent() {
        let sim: Simulation<Ring> = Simulation::synchronous(0);
        assert!(sim.is_quiescent());
        assert!(sim.is_empty());
        assert_eq!(sim.round(), 0);
        assert_eq!(sim.lane_count(), 1);
        assert_eq!(sim.parallel_threads(), 1);
    }

    #[test]
    fn token_travels_one_hop_per_round_in_sync_mode() {
        let mut sim = ring_sim(5, SimConfig::synchronous(1));
        sim.inject(NodeId(0), NodeId(0), Token { remaining: 4 })
            .unwrap();
        assert_eq!(sim.in_flight(), 1);
        // 5 deliveries: remaining 4,3,2,1,0 — one per round.
        for expected_round in 1..=5u64 {
            let delivered = sim.run_round();
            assert_eq!(delivered, 1, "round {expected_round}");
        }
        assert!(sim.is_quiescent());
        assert_eq!(sim.round(), 5);
        // Node 4 got remaining=0, node 0 got remaining=4.
        assert_eq!(sim.node(NodeId(0)).unwrap().received, vec![4]);
        assert_eq!(sim.node(NodeId(4)).unwrap().received, vec![0]);
    }

    #[test]
    fn timeouts_fire_once_per_round_per_active_node() {
        let mut sim = ring_sim(3, SimConfig::synchronous(2));
        sim.run_rounds(10);
        for (_, node) in sim.iter() {
            assert_eq!(node.timeouts, 10);
        }
        assert_eq!(sim.metrics().timeouts_fired, 30);
    }

    #[test]
    fn deactivated_nodes_skip_timeouts_but_receive_messages() {
        let mut sim = ring_sim(3, SimConfig::synchronous(3));
        sim.deactivate(NodeId(1)).unwrap();
        assert!(!sim.is_active(NodeId(1)));
        sim.inject(NodeId(0), NodeId(1), Token { remaining: 0 })
            .unwrap();
        sim.run_rounds(5);
        assert_eq!(sim.node(NodeId(1)).unwrap().timeouts, 0);
        assert_eq!(sim.node(NodeId(1)).unwrap().received, vec![0]);
        sim.activate(NodeId(1)).unwrap();
        sim.run_rounds(1);
        assert_eq!(sim.node(NodeId(1)).unwrap().timeouts, 1);
    }

    #[test]
    fn inject_to_unknown_node_fails() {
        let mut sim = ring_sim(2, SimConfig::synchronous(0));
        assert!(matches!(
            sim.inject(NodeId(0), NodeId(99), Token { remaining: 0 }),
            Err(SimError::UnknownNode(_))
        ));
        assert!(sim.deactivate(NodeId(99)).is_err());
        assert!(sim.activate(NodeId(99)).is_err());
    }

    #[test]
    fn run_until_quiescence() {
        let mut sim = ring_sim(4, SimConfig::synchronous(5));
        sim.inject(NodeId(0), NodeId(0), Token { remaining: 10 })
            .unwrap();
        let rounds = sim.run_to_quiescence(100).unwrap();
        assert_eq!(rounds, 11);
        let total: usize = sim.iter().map(|(_, n)| n.received.len()).sum();
        assert_eq!(total, 11);
    }

    #[test]
    fn run_until_predicate() {
        let mut sim = ring_sim(4, SimConfig::synchronous(5));
        sim.inject(NodeId(0), NodeId(0), Token { remaining: 100 })
            .unwrap();
        let outcome = sim.run_until(|s| s.round() >= 7, 1000).unwrap();
        assert_eq!(outcome, RunOutcome::Satisfied(7));
    }

    #[test]
    fn run_until_round_limit() {
        let mut sim = ring_sim(4, SimConfig::synchronous(5));
        sim.inject(
            NodeId(0),
            NodeId(0),
            Token {
                remaining: u64::MAX,
            },
        )
        .unwrap();
        let err = sim.run_until(|_| false, 20).unwrap_err();
        assert_eq!(err, SimError::RoundLimitExceeded { limit: 20 });
    }

    #[test]
    fn async_mode_delivers_everything_exactly_once() {
        let mut config = SimConfig::asynchronous(9, 7);
        config.record_trace = true;
        let mut sim = ring_sim(6, config);
        for i in 0..6u64 {
            sim.inject(NodeId(i), NodeId(i), Token { remaining: 9 })
                .unwrap();
        }
        sim.run_to_quiescence(10_000).unwrap();
        let total: usize = sim.iter().map(|(_, n)| n.received.len()).sum();
        assert_eq!(total, 60, "each of the 6 tokens must make 10 hops");
        assert_eq!(
            sim.metrics().messages_sent,
            sim.metrics().messages_delivered
        );
    }

    #[test]
    fn async_mode_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut sim = ring_sim(5, SimConfig::asynchronous(seed, 5));
            sim.inject(NodeId(0), NodeId(0), Token { remaining: 20 })
                .unwrap();
            sim.run_to_quiescence(100_000).unwrap();
            (
                sim.round(),
                sim.iter()
                    .map(|(_, n)| n.received.clone())
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(77), run(77));
        // Different seeds almost surely produce a different schedule length.
        let (r1, _) = run(1);
        let (r2, _) = run(2);
        // They may coincide, but the received sequences should rarely be equal;
        // just assert both runs completed.
        assert!(r1 > 0 && r2 > 0);
    }

    #[test]
    fn metrics_track_messages_and_delays() {
        let mut sim = ring_sim(3, SimConfig::synchronous(4));
        sim.inject(NodeId(0), NodeId(0), Token { remaining: 5 })
            .unwrap();
        sim.run_to_quiescence(100).unwrap();
        let m = sim.metrics();
        assert_eq!(m.messages_sent, 6);
        assert_eq!(m.messages_delivered, 6);
        assert_eq!(m.delays.max(), Some(1));
        assert!(m.avg_deliveries_per_round() > 0.0);
        assert_eq!(m.lane_busy_ns.len(), 1);
        assert_eq!(m.lane_barrier_wait_ns, vec![0]);
    }

    #[test]
    fn trace_records_send_and_delivery() {
        let config = SimConfig::synchronous(1).with_trace();
        let mut sim = ring_sim(2, config);
        sim.inject(NodeId(0), NodeId(1), Token { remaining: 0 })
            .unwrap();
        // The injected send is visible in the trace before any round runs.
        let trace = sim.trace().unwrap();
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::Sent { .. })));
        sim.run_rounds(2);
        let trace = sim.trace().unwrap();
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::Delivered { .. })));
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::NodeAdded { .. })));
    }

    #[test]
    fn adversarial_delivery_still_delivers_all() {
        let mut config = SimConfig::synchronous(11);
        config.delivery = DeliveryModel::Adversarial {
            straggle_prob: 0.5,
            straggle_delay: 40,
        };
        let mut sim = ring_sim(4, config);
        sim.inject(NodeId(0), NodeId(0), Token { remaining: 30 })
            .unwrap();
        sim.run_to_quiescence(100_000).unwrap();
        let total: usize = sim.iter().map(|(_, n)| n.received.len()).sum();
        assert_eq!(total, 31);
    }

    #[test]
    fn node_mut_allows_driver_side_mutation() {
        let mut sim = ring_sim(2, SimConfig::synchronous(0));
        sim.node_mut(NodeId(0)).unwrap().timeouts = 99;
        assert_eq!(sim.node(NodeId(0)).unwrap().timeouts, 99);
        assert!(sim.node_mut(NodeId(5)).is_none());
    }

    /// An actor that only wants timeouts while `armed` is set; receiving a
    /// message arms it once.
    #[derive(Debug, Default)]
    struct Sleeper {
        armed: bool,
        timeouts: u64,
        received: u64,
    }

    impl Actor for Sleeper {
        type Msg = ();

        fn on_message(&mut self, _from: NodeId, _msg: (), _ctx: &mut Context<()>) {
            self.received += 1;
            self.armed = true;
        }

        fn on_timeout(&mut self, _ctx: &mut Context<()>) {
            self.timeouts += 1;
            self.armed = false;
        }

        fn wants_timeout(&self) -> bool {
            self.armed
        }
    }

    #[test]
    fn wants_timeout_false_skips_visits_but_not_deliveries() {
        let mut sim: Simulation<Sleeper> = Simulation::synchronous(1);
        let a = sim.add_node(Sleeper::default());
        let b = sim.add_node(Sleeper::default());
        sim.run_rounds(5);
        // Nobody is armed: no timeouts fire, no nodes are visited.
        assert_eq!(sim.metrics().timeouts_fired, 0);
        assert_eq!(sim.metrics().nodes_visited, 0);
        // A message still wakes the destination, whose next timeout then
        // fires exactly once (on_timeout disarms again).
        sim.inject(a, b, ()).unwrap();
        sim.run_rounds(3);
        assert_eq!(sim.node(b).unwrap().received, 1);
        assert_eq!(sim.node(b).unwrap().timeouts, 1);
        assert_eq!(sim.node(a).unwrap().timeouts, 0);
    }

    #[test]
    fn refresh_timeout_interest_after_driver_mutation() {
        let mut sim: Simulation<Sleeper> = Simulation::synchronous(2);
        let a = sim.add_node(Sleeper::default());
        sim.run_rounds(2);
        assert_eq!(sim.node(a).unwrap().timeouts, 0);
        // Driver-side arming is invisible until the interest is refreshed.
        sim.node_mut(a).unwrap().armed = true;
        sim.refresh_timeout_interest(a).unwrap();
        sim.run_rounds(1);
        assert_eq!(sim.node(a).unwrap().timeouts, 1);
        assert!(sim.refresh_timeout_interest(NodeId(9)).is_err());
    }

    #[test]
    fn visited_last_round_lists_woken_nodes() {
        let mut sim = ring_sim(3, SimConfig::synchronous(4));
        sim.run_rounds(1);
        // All ring nodes want timeouts, so all are visited in index order.
        assert_eq!(sim.visited_last_round(), &[0, 1, 2]);
    }

    #[test]
    fn lanes_must_be_configured_before_nodes() {
        let mut sim = ring_sim(2, SimConfig::synchronous(0));
        assert!(matches!(
            sim.configure_lanes(2),
            Err(SimError::InvalidConfig(_))
        ));
        let mut empty: Simulation<Ring> = Simulation::synchronous(0);
        assert!(matches!(
            empty.configure_lanes(0),
            Err(SimError::InvalidConfig(_))
        ));
        empty.configure_lanes(3).unwrap();
        assert_eq!(empty.lane_count(), 3);
    }

    #[test]
    fn multi_lane_ring_delivers_across_lane_boundaries() {
        // Round-robin lane assignment: every hop crosses lanes, exercising
        // the driver's router.
        let mut sim = laned_ring_sim(6, 3, SimConfig::synchronous(7));
        assert_eq!(sim.lane_of(NodeId(0)), Some(0));
        assert_eq!(sim.lane_of(NodeId(1)), Some(1));
        assert_eq!(sim.lane_of(NodeId(5)), Some(2));
        sim.inject(NodeId(0), NodeId(0), Token { remaining: 11 })
            .unwrap();
        sim.run_to_quiescence(100).unwrap();
        let total: usize = sim.iter().map(|(_, n)| n.received.len()).sum();
        assert_eq!(total, 12, "every hop must be delivered exactly once");
        assert_eq!(
            sim.metrics().messages_sent,
            sim.metrics().messages_delivered
        );
        // A cross-lane hop costs one extra round (routed after the barrier,
        // delivered next round) — same `deliver_at = round + 1` contract.
        assert!(sim.round() >= 12);
    }

    #[test]
    fn visited_last_round_merges_lanes_in_ascending_id_order() {
        let mut sim = laned_ring_sim(5, 2, SimConfig::synchronous(4));
        sim.run_rounds(1);
        assert_eq!(sim.visited_last_round(), &[0, 1, 2, 3, 4]);
    }

    /// A lane-local pinger: node `i` messages its own lane's partner every
    /// round (all traffic intra-lane, like Skueue shards).
    #[derive(Debug)]
    struct LanePinger {
        partner: NodeId,
        received: u64,
    }

    impl Actor for LanePinger {
        type Msg = u64;

        fn on_message(&mut self, _from: NodeId, msg: u64, _ctx: &mut Context<u64>) {
            self.received += msg;
        }

        fn on_timeout(&mut self, ctx: &mut Context<u64>) {
            ctx.send(self.partner, 1);
        }
    }

    fn pinger_sim(pairs: usize, lanes: usize, threads: usize, seed: u64) -> Simulation<LanePinger> {
        let mut sim = Simulation::new(SimConfig::synchronous(seed)).unwrap();
        sim.configure_lanes(lanes).unwrap();
        for p in 0..pairs {
            let lane = p % lanes;
            let a = NodeId((2 * p) as u64);
            let b = NodeId((2 * p + 1) as u64);
            sim.add_node_in_lane(
                lane,
                LanePinger {
                    partner: b,
                    received: 0,
                },
            );
            sim.add_node_in_lane(
                lane,
                LanePinger {
                    partner: a,
                    received: 0,
                },
            );
        }
        sim.enable_parallel(threads);
        sim
    }

    fn pinger_fingerprint(sim: &Simulation<LanePinger>) -> (Vec<u64>, u64, u64, u64) {
        (
            sim.iter().map(|(_, n)| n.received).collect(),
            sim.metrics().messages_sent,
            sim.metrics().messages_delivered,
            sim.metrics().nodes_visited,
        )
    }

    #[test]
    fn parallel_backend_is_bit_identical_to_single_thread() {
        for &threads in &[1usize, 2, 4] {
            let mut reference = pinger_sim(8, 4, 1, 42);
            let mut parallel = pinger_sim(8, 4, threads, 42);
            assert_eq!(parallel.parallel_threads(), threads.clamp(1, 4));
            for _ in 0..50 {
                let d_ref = reference.run_round();
                let d_par = parallel.run_round();
                assert_eq!(d_ref, d_par, "per-round delivery counts must match");
                assert_eq!(
                    reference.visited_last_round(),
                    parallel.visited_last_round()
                );
            }
            assert_eq!(
                pinger_fingerprint(&reference),
                pinger_fingerprint(&parallel),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_backend_runs_lanes_on_distinct_threads() {
        let mut sim = pinger_sim(8, 4, 4, 1);
        sim.run_rounds(3);
        let tokens = &sim.metrics().lane_thread_tokens;
        assert_eq!(tokens.len(), 4);
        let distinct: std::collections::HashSet<u64> = tokens.iter().copied().collect();
        assert!(
            distinct.len() >= 2,
            "expected >=2 distinct worker threads, got {tokens:?}"
        );
        assert!(
            !distinct.contains(&thread_token()),
            "lanes must not run on the driver thread"
        );
        // Per-lane timing columns are populated.
        assert!(sim.metrics().lane_busy_ns.iter().all(|&ns| ns > 0));
    }

    #[test]
    fn parallel_backend_can_be_toggled_between_rounds() {
        let mut reference = pinger_sim(4, 2, 1, 9);
        let mut toggled = pinger_sim(4, 2, 1, 9);
        for i in 0..30 {
            toggled.enable_parallel(if i % 2 == 0 { 2 } else { 1 });
            reference.run_round();
            toggled.run_round();
        }
        assert_eq!(pinger_fingerprint(&reference), pinger_fingerprint(&toggled));
    }

    /// A node that counts received payloads and asserts delivery-time bounds.
    #[derive(Debug)]
    struct BoundsChecker {
        n: u64,
        min_delay: u64,
        max_delay: u64,
        received: u64,
    }

    #[derive(Debug, Clone)]
    struct Hop {
        sent_at: u64,
        remaining: u64,
    }

    impl Actor for BoundsChecker {
        type Msg = Hop;

        fn on_message(&mut self, _from: NodeId, msg: Hop, ctx: &mut Context<Hop>) {
            let now = ctx.round();
            assert!(
                now >= msg.sent_at + self.min_delay,
                "delivered at {now}, sent at {} with min delay {}",
                msg.sent_at,
                self.min_delay
            );
            assert!(
                now <= msg.sent_at + self.max_delay,
                "delivered at {now}, sent at {} with max delay {}",
                msg.sent_at,
                self.max_delay
            );
            self.received += 1;
            if msg.remaining > 0 {
                let next = NodeId((ctx.self_id().0 + 1) % self.n);
                ctx.send(
                    next,
                    Hop {
                        sent_at: now,
                        remaining: msg.remaining - 1,
                    },
                );
            }
        }

        fn on_timeout(&mut self, _ctx: &mut Context<Hop>) {}
    }

    proptest::proptest! {
        /// The bucketed delivery wheel never delivers a message before its
        /// `deliver_at` (sent round + model delay), never after the model's
        /// maximum delay, and never drops or duplicates one.
        #[test]
        fn prop_bucketed_delivery_respects_bounds_and_loses_nothing(
            seed in proptest::any::<u64>(),
            n in 2u64..12,
            min_delay in 1u64..4,
            extra in 0u64..5,
            hops in 1u64..30,
            injections in 1u64..5,
        ) {
            let max_delay = min_delay + extra;
            let mut config = SimConfig::asynchronous(seed, max_delay);
            config.delivery = crate::DeliveryModel::UniformRandom { min_delay, max_delay };
            let mut sim = Simulation::new(config).unwrap();
            for _ in 0..n {
                sim.add_node(BoundsChecker {
                    n,
                    min_delay,
                    max_delay,
                    received: 0,
                });
            }
            for i in 0..injections {
                sim.inject(
                    NodeId(i % n),
                    NodeId(i % n),
                    Hop { sent_at: 0, remaining: hops },
                )
                .unwrap();
            }
            sim.run_to_quiescence(1_000_000).unwrap();
            let total: u64 = (0..n).map(|i| sim.node(NodeId(i)).unwrap().received).sum();
            // Every injected token makes hops + 1 deliveries; nothing lost,
            // nothing duplicated.
            proptest::prop_assert_eq!(total, injections * (hops + 1));
            proptest::prop_assert_eq!(
                sim.metrics().messages_sent,
                sim.metrics().messages_delivered
            );
            proptest::prop_assert_eq!(sim.in_flight(), 0);
        }
    }
}
