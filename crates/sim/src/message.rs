//! Message envelopes.
//!
//! The simulation wraps every payload in an [`Envelope`] carrying the
//! sender, the destination, the round in which the message was sent and the
//! round in which it becomes deliverable (as decided by the configured
//! [`crate::DeliveryModel`]).

use crate::ids::NodeId;
use crate::Round;

/// A message in flight.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Sending node (the paper's remote action calls always know the caller).
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Round in which the message was handed to the simulation.
    pub sent_at: Round,
    /// First round in which the destination may process the message.
    pub deliver_at: Round,
    /// Monotone sequence number used only to break ties deterministically.
    pub seq: u64,
    /// The protocol payload ("name and parameters of the action to call").
    pub payload: M,
}

impl<M> Envelope<M> {
    /// In-flight latency of the message, in rounds.
    pub fn delay(&self) -> Round {
        self.deliver_at.saturating_sub(self.sent_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_is_difference() {
        let e = Envelope {
            from: NodeId(0),
            to: NodeId(1),
            sent_at: 3,
            deliver_at: 7,
            seq: 0,
            payload: "hi",
        };
        assert_eq!(e.delay(), 4);
    }

    #[test]
    fn delay_saturates() {
        let e = Envelope {
            from: NodeId(0),
            to: NodeId(1),
            sent_at: 9,
            deliver_at: 2,
            seq: 0,
            payload: (),
        };
        assert_eq!(e.delay(), 0);
    }
}
