//! A bounded multi-producer/multi-consumer queue.
//!
//! The worker→driver collection queue of the [`super::pool::WorkerPool`]:
//! every worker pushes finished lanes, the driver pops them.  The design is
//! the classic Vyukov bounded MPMC queue — the same per-slot sequence-number
//! idea that Nikolaev's SCQ (PAPERS.md) builds its lock-free cycle tracking
//! on:
//!
//! * each slot carries a `seq` counter; `seq == pos` means "free for the
//!   producer claiming position `pos`", `seq == pos + 1` means "holds the
//!   value of position `pos`, free for the consumer",
//! * producers/consumers claim a position with a CAS on the shared cursor,
//!   then operate on their slot without further coordination — the slot
//!   `seq` is the per-slot publication protocol,
//! * after a pop the slot's `seq` jumps a full lap ahead (`pos + capacity`),
//!   re-arming it for the producer that will claim that position next lap.
//!
//! Progress is lock-free: a stalled producer can delay consumers of *its
//! slot* only; all other slots keep flowing.

use super::CachePadded;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

struct Slot<T> {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Bounded MPMC queue; `push`/`pop` take `&self` and may be called from any
/// number of threads concurrently.
pub struct MpmcQueue<T> {
    mask: usize,
    enqueue_pos: CachePadded<AtomicUsize>,
    dequeue_pos: CachePadded<AtomicUsize>,
    slots: Box<[Slot<T>]>,
}

// SAFETY: values of `T` are moved through slots whose exclusive ownership is
// handed around by the seq/CAS protocol in the module docs; the queue is
// usable from many threads whenever `T` may cross threads.
unsafe impl<T: Send> Send for MpmcQueue<T> {}
unsafe impl<T: Send> Sync for MpmcQueue<T> {}

impl<T> MpmcQueue<T> {
    /// Creates a queue holding at least `capacity` elements (rounded up to a
    /// power of two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2).next_power_of_two();
        let slots = (0..capacity)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        MpmcQueue {
            mask: capacity - 1,
            enqueue_pos: CachePadded(AtomicUsize::new(0)),
            dequeue_pos: CachePadded(AtomicUsize::new(0)),
            slots,
        }
    }

    /// Enqueues `value`, or hands it back when the queue is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut pos = self.enqueue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                // Slot is free for this position; try to claim it.
                match self.enqueue_pos.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS gave this producer exclusive
                        // ownership of the slot for position `pos`; the
                        // Release store below publishes the write to the
                        // consumer that claims the position.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => pos = current,
                }
            } else if diff < 0 {
                // One full lap behind: the queue is full.
                return Err(value);
            } else {
                // Another producer claimed `pos`; reload and retry.
                pos = self.enqueue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest element, or `None` when the queue is empty.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos.wrapping_add(1) as isize;
            if diff == 0 {
                match self.dequeue_pos.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS gave this consumer exclusive
                        // ownership of the value published for `pos` (the
                        // Acquire load of `seq` paired with the producer's
                        // Release store).
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        // Re-arm the slot for the producer one lap ahead.
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(value);
                    }
                    Err(current) => pos = current,
                }
            } else if diff < 0 {
                // Slot not yet published: the queue is empty.
                return None;
            } else {
                pos = self.dequeue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Snapshot of the number of buffered elements (racy under concurrency,
    /// exact when quiescent).
    pub fn len(&self) -> usize {
        let tail = self.enqueue_pos.0.load(Ordering::Relaxed);
        let head = self.dequeue_pos.0.load(Ordering::Relaxed);
        tail.wrapping_sub(head)
    }

    /// True when no elements are buffered (same caveat as [`Self::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for MpmcQueue<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_and_boundaries_single_threaded() {
        let q = MpmcQueue::<u32>::new(4);
        assert!(q.pop().is_none(), "empty pop");
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.push(99).unwrap_err(), 99, "full push hands value back");
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.pop().is_none());
        // Slots re-arm across laps.
        for lap in 0..50u32 {
            q.push(lap).unwrap();
            assert_eq!(q.pop(), Some(lap));
        }
    }

    #[test]
    fn many_producers_one_consumer_exactly_once() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 50_000;
        let q = Arc::new(MpmcQueue::<u64>::new(128));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    let mut v = p * PER_PRODUCER + i;
                    while let Err(back) = q.push(v) {
                        v = back;
                        std::thread::yield_now();
                    }
                }
            }));
        }
        let mut seen = vec![false; (PRODUCERS * PER_PRODUCER) as usize];
        let mut got = 0u64;
        let mut last_per_producer = vec![None::<u64>; PRODUCERS as usize];
        while got < PRODUCERS * PER_PRODUCER {
            match q.pop() {
                Some(v) => {
                    let idx = v as usize;
                    assert!(!seen[idx], "duplicate delivery of {v}");
                    seen[idx] = true;
                    // Per-producer FIFO: values of one producer arrive in
                    // the order they were pushed.
                    let p = (v / PER_PRODUCER) as usize;
                    if let Some(prev) = last_per_producer[p] {
                        assert!(v > prev, "producer {p} reordered: {prev} then {v}");
                    }
                    last_per_producer[p] = Some(v);
                    got += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(q.pop().is_none());
        assert!(seen.iter().all(|&s| s), "nothing lost");
    }

    #[test]
    fn drop_releases_buffered_values() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let q = MpmcQueue::<Counted>::new(8);
            assert!(q.push(Counted).is_ok());
            assert!(q.push(Counted).is_ok());
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }
}
