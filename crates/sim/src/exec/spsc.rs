//! A bounded single-producer/single-consumer ring buffer.
//!
//! One ring connects the driver thread to each worker of the
//! [`super::pool::WorkerPool`]: the driver is the only producer and the
//! worker the only consumer, which is exactly the SPSC contract.  The
//! implementation is the textbook Lamport ring with monotonically increasing
//! (wrapping) cursors:
//!
//! * `tail` is written only by the producer, `head` only by the consumer,
//! * a slot is written before `tail` is released, and read before `head` is
//!   released, so the Release/Acquire pairs on the cursors transfer
//!   ownership of the slot contents,
//! * single-producer/single-consumer exclusivity is enforced *in the type
//!   system*: both endpoints take `&mut self` and neither is `Clone`.
//!
//! Capacity is rounded up to a power of two so the index math is a mask.

use super::CachePadded;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct Inner<T> {
    mask: usize,
    /// Consumer cursor: next slot to read.
    head: CachePadded<AtomicUsize>,
    /// Producer cursor: next slot to write.
    tail: CachePadded<AtomicUsize>,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

// SAFETY: the ring moves `T` values between the producer and the consumer
// thread; slot access is serialised by the head/tail protocol described in
// the module docs, so sharing `Inner` between the two endpoint threads is
// sound whenever `T` itself may cross threads.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // `&mut self`: both endpoints are gone, the cursors are quiescent.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        let mut pos = head;
        while pos != tail {
            let slot = &self.slots[pos & self.mask];
            // SAFETY: slots in [head, tail) hold initialised values that
            // were never consumed.
            unsafe { (*slot.get()).assume_init_drop() };
            pos = pos.wrapping_add(1);
        }
    }
}

/// Producer endpoint of [`spsc_channel`].
pub struct SpscSender<T> {
    inner: Arc<Inner<T>>,
}

/// Consumer endpoint of [`spsc_channel`].
pub struct SpscReceiver<T> {
    inner: Arc<Inner<T>>,
}

/// Creates a bounded SPSC ring holding at least `capacity` elements
/// (rounded up to a power of two, minimum 2).
pub fn spsc_channel<T: Send>(capacity: usize) -> (SpscSender<T>, SpscReceiver<T>) {
    let capacity = capacity.max(2).next_power_of_two();
    let slots = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let inner = Arc::new(Inner {
        mask: capacity - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        slots,
    });
    (
        SpscSender {
            inner: Arc::clone(&inner),
        },
        SpscReceiver { inner },
    )
}

impl<T> SpscSender<T> {
    /// Enqueues `value`, or hands it back when the ring is full.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let inner = &*self.inner;
        let tail = inner.tail.0.load(Ordering::Relaxed);
        let head = inner.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > inner.mask {
            return Err(value);
        }
        // SAFETY: the slot at `tail` is outside [head, tail) — it is either
        // virgin or its previous value was consumed (head advanced past it);
        // only this producer writes slots, and the Release store below
        // publishes the write before the consumer can read it.
        unsafe { (*inner.slots[tail & inner.mask].get()).write(value) };
        inner.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Number of elements currently buffered.
    pub fn len(&self) -> usize {
        let tail = self.inner.tail.0.load(Ordering::Relaxed);
        let head = self.inner.head.0.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> SpscReceiver<T> {
    /// Dequeues the oldest element, or `None` when the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        let inner = &*self.inner;
        let head = inner.head.0.load(Ordering::Relaxed);
        let tail = inner.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: head < tail, so the slot holds a value the producer
        // published with its Release store on `tail` (paired with the
        // Acquire load above); only this consumer reads slots, and the
        // Release store on `head` below returns the slot to the producer.
        let value = unsafe { (*inner.slots[head & inner.mask].get()).assume_init_read() };
        inner.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Number of elements currently buffered.
    pub fn len(&self) -> usize {
        let tail = self.inner.tail.0.load(Ordering::Acquire);
        let head = self.inner.head.0.load(Ordering::Relaxed);
        tail.wrapping_sub(head)
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (mut tx, mut rx) = spsc_channel::<u32>(4);
        assert!(rx.pop().is_none());
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.len(), 4);
        assert_eq!(tx.push(99).unwrap_err(), 99, "full ring rejects");
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert!(rx.pop().is_none());
        assert!(rx.is_empty() && tx.is_empty());
    }

    #[test]
    fn wraparound_preserves_order() {
        let (mut tx, mut rx) = spsc_channel::<u64>(2);
        for round in 0..100u64 {
            tx.push(2 * round).unwrap();
            tx.push(2 * round + 1).unwrap();
            assert_eq!(rx.pop(), Some(2 * round));
            assert_eq!(rx.pop(), Some(2 * round + 1));
        }
    }

    #[test]
    fn capacity_rounds_up() {
        let (mut tx, _rx) = spsc_channel::<u8>(3);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert!(tx.push(4).is_err());
    }

    #[test]
    fn drops_unconsumed_values() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let (mut tx, mut rx) = spsc_channel::<Counted>(4);
            assert!(tx.push(Counted).is_ok());
            assert!(tx.push(Counted).is_ok());
            assert!(tx.push(Counted).is_ok());
            drop(rx.pop());
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 3, "2 in ring + 1 popped");
    }

    #[test]
    fn cross_thread_handoff_delivers_everything_in_order() {
        const N: u64 = 200_000;
        let (mut tx, mut rx) = spsc_channel::<u64>(64);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                while let Err(back) = tx.push(v) {
                    v = back;
                    std::thread::yield_now();
                }
            }
        });
        let mut expected = 0u64;
        while expected < N {
            match rx.pop() {
                Some(v) => {
                    assert_eq!(v, expected, "FIFO order violated");
                    expected += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert!(rx.pop().is_none());
    }
}
