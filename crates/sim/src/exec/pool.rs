//! The persistent worker pool behind [`crate::Simulation`]'s parallel
//! backend.
//!
//! One pool owns `threads` OS threads.  Each round the driver *moves* every
//! lane (a boxed [`RoundTask`]) to its worker over that worker's private
//! SPSC ring, and the workers hand finished lanes back over one shared MPMC
//! collection queue.  The driver waits until all lanes have returned — that
//! wait **is** the deterministic round barrier: no lane can observe round
//! `r + 1` state before every lane has finished round `r`.
//!
//! Lane `l` is always dispatched to worker `l % threads`, so the
//! lane→thread mapping is a pure function of the configuration; thread
//! scheduling can change *when* a lane runs, never *what* it computes.
//!
//! Workers park when their ring is empty and are unparked on submit; the
//! driver parks (with a timeout, to tolerate missed unparks) while the
//! collection queue is empty.  On a loaded host this costs two futex hops
//! per worker per round — the cost model PERF.md's barrier section measures.

use super::mpmc::MpmcQueue;
use super::spsc::{spsc_channel, SpscSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A unit of per-round work that can be shipped to a worker thread.
pub trait RoundTask: Send + 'static {
    /// Executes this task's share of round `round`.
    fn run_task(&mut self, round: u64);
}

enum Job<J> {
    Run {
        idx: usize,
        task: Box<J>,
        round: u64,
    },
    Stop,
}

/// A persistent pool of worker threads executing [`RoundTask`]s.
///
/// The pool is generic without bounds so it can live inside
/// `Simulation<A>` unconditionally; only [`WorkerPool::new`] requires the
/// task to actually be shippable.
pub struct WorkerPool<J> {
    senders: Vec<SpscSender<Job<J>>>,
    handles: Vec<JoinHandle<()>>,
    results: Arc<MpmcQueue<(usize, Box<J>)>>,
}

impl<J: RoundTask> WorkerPool<J> {
    /// Spawns `threads` workers sized for up to `max_tasks` in-flight tasks
    /// per round.
    pub fn new(threads: usize, max_tasks: usize) -> Self {
        let threads = threads.max(1);
        let capacity = (max_tasks + 2).next_power_of_two();
        let results = Arc::new(MpmcQueue::new(capacity));
        let driver = std::thread::current();
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let (tx, mut rx) = spsc_channel::<Job<J>>(capacity);
            let results = Arc::clone(&results);
            let driver = driver.clone();
            let handle = std::thread::Builder::new()
                .name(format!("skueue-lane-{w}"))
                .spawn(move || loop {
                    match rx.pop() {
                        Some(Job::Run {
                            idx,
                            mut task,
                            round,
                        }) => {
                            task.run_task(round);
                            let mut item = (idx, task);
                            while let Err(back) = results.push(item) {
                                item = back;
                                std::thread::yield_now();
                            }
                            driver.unpark();
                        }
                        Some(Job::Stop) => break,
                        // The park token makes this race-free: an unpark
                        // that lands between the failed pop and the park
                        // makes park return immediately.
                        None => std::thread::park(),
                    }
                })
                .expect("failed to spawn lane worker thread");
            senders.push(tx);
            handles.push(handle);
        }
        WorkerPool {
            senders,
            handles,
            results,
        }
    }
}

impl<J> WorkerPool<J> {
    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.senders.len()
    }

    /// Ships task `idx` to its worker (`idx % worker_count`) for `round`.
    pub fn submit(&mut self, idx: usize, task: Box<J>, round: u64) {
        let w = idx % self.senders.len();
        let mut job = Job::Run { idx, task, round };
        while let Err(back) = self.senders[w].push(job) {
            job = back;
            self.handles[w].thread().unpark();
            std::thread::yield_now();
        }
        self.handles[w].thread().unpark();
    }

    /// Waits for the next finished task.  Panics if a worker died (a task
    /// panicked on its thread) — the simulation cannot continue with a lost
    /// lane.
    pub fn collect_one(&mut self) -> (usize, Box<J>) {
        loop {
            if let Some(item) = self.results.pop() {
                return item;
            }
            if self.handles.iter().any(|h| h.is_finished()) && self.results.is_empty() {
                panic!("a lane worker thread exited while work was outstanding (lane panicked)");
            }
            std::thread::park_timeout(Duration::from_millis(1));
        }
    }
}

impl<J> Drop for WorkerPool<J> {
    fn drop(&mut self) {
        for (w, tx) in self.senders.iter_mut().enumerate() {
            let mut job = Job::Stop;
            while let Err(back) = tx.push(job) {
                job = back;
                self.handles[w].thread().unpark();
                std::thread::yield_now();
            }
            self.handles[w].thread().unpark();
        }
        for handle in self.handles.drain(..) {
            // A worker that panicked already aborted the run via
            // `collect_one`; during unwinding, ignore the secondary error.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::thread_token;

    struct Doubler {
        input: u64,
        output: u64,
        ran_on: u64,
    }

    impl RoundTask for Doubler {
        fn run_task(&mut self, round: u64) {
            self.output = self.input * 2 + round;
            self.ran_on = thread_token();
        }
    }

    #[test]
    fn pool_runs_tasks_and_returns_them() {
        let mut pool: WorkerPool<Doubler> = WorkerPool::new(3, 8);
        assert_eq!(pool.worker_count(), 3);
        for repeat in 0..50u64 {
            for idx in 0..8usize {
                pool.submit(
                    idx,
                    Box::new(Doubler {
                        input: idx as u64,
                        output: 0,
                        ran_on: 0,
                    }),
                    repeat,
                );
            }
            let mut seen = [false; 8];
            for _ in 0..8 {
                let (idx, task) = pool.collect_one();
                assert!(!seen[idx], "task {idx} returned twice");
                seen[idx] = true;
                assert_eq!(task.output, idx as u64 * 2 + repeat);
                assert_ne!(task.ran_on, 0);
                assert_ne!(
                    task.ran_on,
                    thread_token(),
                    "task must have run off the driver thread"
                );
            }
        }
    }

    #[test]
    fn distinct_workers_get_distinct_threads() {
        let mut pool: WorkerPool<Doubler> = WorkerPool::new(2, 4);
        for idx in 0..4usize {
            pool.submit(
                idx,
                Box::new(Doubler {
                    input: 0,
                    output: 0,
                    ran_on: 0,
                }),
                1,
            );
        }
        let mut token_of_worker = [0u64; 2];
        for _ in 0..4 {
            let (idx, task) = pool.collect_one();
            let w = idx % 2;
            if token_of_worker[w] == 0 {
                token_of_worker[w] = task.ran_on;
            } else {
                assert_eq!(
                    token_of_worker[w], task.ran_on,
                    "worker {w} must be a persistent thread"
                );
            }
        }
        assert_ne!(token_of_worker[0], token_of_worker[1]);
    }

    #[test]
    fn drop_shuts_workers_down() {
        let pool: WorkerPool<Doubler> = WorkerPool::new(4, 4);
        drop(pool); // must not hang
    }
}
