//! Execution backends for the round loop.
//!
//! PR 4 made anchor shards independent by construction: every protocol
//! message stays inside its shard's lane, so the per-round work of different
//! lanes is embarrassingly parallel.  This module supplies the machinery
//! that lets [`crate::Simulation`] exploit that:
//!
//! * [`ExecMode`] — the user-facing switch between the classic
//!   single-threaded backend and the parallel lane backend,
//! * [`spsc`] — a bounded single-producer/single-consumer ring buffer used
//!   as the driver→worker job channel (one per worker thread),
//! * [`mpmc`] — a bounded multi-producer/multi-consumer queue (Vyukov-style
//!   per-slot sequence numbers, in the spirit of Nikolaev's SCQ) used as the
//!   shared worker→driver collection queue,
//! * [`pool`] — the persistent worker pool that executes one lane's round on
//!   a dedicated OS thread and hands the lane back over the collection
//!   queue, forming the deterministic round barrier.
//!
//! Determinism contract: the pool moves whole lanes (boxed) between threads;
//! a lane's round is computed entirely by lane-owned state, and the driver
//! recombines per-lane outputs in fixed lane order after the barrier.  The
//! schedule of *threads* therefore never influences the schedule of
//! *messages* — the merged history is byte-identical to the single-threaded
//! backend's, whatever the thread count.
//!
//! The queues are hand-rolled (the workspace builds offline, `crates/compat`
//! idiom: no crates.io) and are the only place in `skueue-sim` where unsafe
//! code is permitted; both confine it to slot reads/writes guarded by the
//! head/tail (resp. per-slot sequence) protocol.

#[allow(unsafe_code)]
pub mod mpmc;
pub mod pool;
#[allow(unsafe_code)]
pub mod spsc;

pub use mpmc::MpmcQueue;
pub use pool::{RoundTask, WorkerPool};
pub use spsc::{spsc_channel, SpscReceiver, SpscSender};

use std::sync::atomic::{AtomicU64, Ordering};

/// Which backend executes the simulation's lanes each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecMode {
    /// All lanes run on the calling thread, in lane order (the classic
    /// backend; the default).
    #[default]
    SingleThread,
    /// Lanes are fanned out to a persistent pool of worker threads and
    /// recombined behind a deterministic round barrier.  Lane `l` always
    /// runs on worker `l % threads`, so the mapping — and the merged
    /// history — is independent of scheduling.
    Parallel {
        /// Number of worker threads (values `<= 1` behave like
        /// [`ExecMode::SingleThread`]).
        threads: usize,
    },
}

impl ExecMode {
    /// Normalises a thread count into a mode: `0` and `1` select the
    /// single-threaded backend.
    pub fn from_threads(threads: usize) -> Self {
        if threads <= 1 {
            ExecMode::SingleThread
        } else {
            ExecMode::Parallel { threads }
        }
    }

    /// The number of OS threads the mode asks for (1 for single-threaded).
    pub fn threads(&self) -> usize {
        match *self {
            ExecMode::SingleThread => 1,
            ExecMode::Parallel { threads } => threads.max(1),
        }
    }

    /// True for the parallel backend with at least two workers.
    pub fn is_parallel(&self) -> bool {
        self.threads() > 1
    }
}

/// Pads a value to its own cache line pair so the producer and consumer
/// cursors of the queues never false-share.
#[repr(align(128))]
#[derive(Debug, Default)]
pub(crate) struct CachePadded<T>(pub T);

static NEXT_THREAD_TOKEN: AtomicU64 = AtomicU64::new(1);

std::thread_local! {
    static THREAD_TOKEN: u64 = NEXT_THREAD_TOKEN.fetch_add(1, Ordering::Relaxed);
}

/// A small process-unique token for the current thread (stable `ThreadId`
/// numbering is unstable in std).  Used to report which OS thread executed
/// each lane, so tests and CI can assert that lanes really ran on distinct
/// threads.
pub fn thread_token() -> u64 {
    THREAD_TOKEN.with(|t| *t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_mode_normalisation() {
        assert_eq!(ExecMode::from_threads(0), ExecMode::SingleThread);
        assert_eq!(ExecMode::from_threads(1), ExecMode::SingleThread);
        assert_eq!(ExecMode::from_threads(4), ExecMode::Parallel { threads: 4 });
        assert_eq!(ExecMode::default().threads(), 1);
        assert_eq!(ExecMode::Parallel { threads: 8 }.threads(), 8);
        assert!(!ExecMode::SingleThread.is_parallel());
        assert!(ExecMode::Parallel { threads: 2 }.is_parallel());
        assert!(!ExecMode::Parallel { threads: 1 }.is_parallel());
    }

    #[test]
    fn thread_tokens_are_stable_per_thread_and_distinct_across() {
        let here = thread_token();
        assert_eq!(here, thread_token(), "token must be stable per thread");
        let there = std::thread::spawn(thread_token).join().unwrap();
        assert_ne!(here, there, "distinct threads must get distinct tokens");
    }
}
