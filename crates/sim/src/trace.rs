//! Optional event tracing for debugging and for the failure-injection tests.

use crate::ids::NodeId;
use crate::Round;
use serde::{Deserialize, Serialize};

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A message was handed to the simulation.
    Sent {
        /// Sending node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
        /// Round of the send.
        round: Round,
        /// Round at which delivery is scheduled.
        deliver_at: Round,
    },
    /// A message was delivered to its destination actor.
    Delivered {
        /// Sending node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
        /// Delivery round.
        round: Round,
    },
    /// A node executed its `TIMEOUT` action.
    Timeout {
        /// The node.
        node: NodeId,
        /// Round of the timeout.
        round: Round,
    },
    /// A node was added to the simulation.
    NodeAdded {
        /// The node.
        node: NodeId,
        /// Round in which it was added.
        round: Round,
    },
    /// A node was deactivated.
    NodeDeactivated {
        /// The node.
        node: NodeId,
        /// Round in which it was deactivated.
        round: Round,
    },
}

impl TraceEvent {
    /// Round at which the event happened.
    pub fn round(&self) -> Round {
        match *self {
            TraceEvent::Sent { round, .. }
            | TraceEvent::Delivered { round, .. }
            | TraceEvent::Timeout { round, .. }
            | TraceEvent::NodeAdded { round, .. }
            | TraceEvent::NodeDeactivated { round, .. } => round,
        }
    }
}

/// Bounded event trace.  When the capacity is exceeded the oldest events are
/// dropped (the interesting part of a failing test is almost always the end).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace with the given capacity (0 disables bounding).
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event.
    pub fn push(&mut self, event: TraceEvent) {
        if self.capacity > 0 && self.events.len() >= self.capacity {
            // Drop the oldest half to amortise the shift cost.
            let drop = (self.capacity / 2).max(1);
            self.events.drain(0..drop);
            self.dropped += drop as u64;
        }
        self.events.push(event);
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events dropped due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events involving a particular node (as sender, receiver or subject).
    pub fn involving(&self, node: NodeId) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| match **e {
                TraceEvent::Sent { from, to, .. } | TraceEvent::Delivered { from, to, .. } => {
                    from == node || to == node
                }
                TraceEvent::Timeout { node: n, .. }
                | TraceEvent::NodeAdded { node: n, .. }
                | TraceEvent::NodeDeactivated { node: n, .. } => n == node,
            })
            .collect()
    }

    /// Clears all retained events.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut t = Trace::with_capacity(0);
        t.push(TraceEvent::NodeAdded {
            node: NodeId(1),
            round: 0,
        });
        t.push(TraceEvent::Sent {
            from: NodeId(1),
            to: NodeId(2),
            round: 1,
            deliver_at: 2,
        });
        t.push(TraceEvent::Timeout {
            node: NodeId(3),
            round: 1,
        });
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.involving(NodeId(1)).len(), 2);
        assert_eq!(t.involving(NodeId(3)).len(), 1);
        assert_eq!(t.involving(NodeId(9)).len(), 0);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn capacity_bound_drops_oldest() {
        let mut t = Trace::with_capacity(4);
        for r in 0..10 {
            t.push(TraceEvent::Timeout {
                node: NodeId(0),
                round: r,
            });
        }
        assert!(t.events().len() <= 4 + 1);
        assert!(t.dropped() > 0);
        // Retained events are the most recent ones.
        let last = t.events().last().unwrap().round();
        assert_eq!(last, 9);
    }

    #[test]
    fn event_round_accessor() {
        assert_eq!(
            TraceEvent::Delivered {
                from: NodeId(0),
                to: NodeId(1),
                round: 7
            }
            .round(),
            7
        );
        assert_eq!(
            TraceEvent::NodeDeactivated {
                node: NodeId(0),
                round: 3
            }
            .round(),
            3
        );
    }

    #[test]
    fn clear_resets() {
        let mut t = Trace::with_capacity(2);
        t.push(TraceEvent::Timeout {
            node: NodeId(0),
            round: 0,
        });
        t.push(TraceEvent::Timeout {
            node: NodeId(0),
            round: 1,
        });
        t.push(TraceEvent::Timeout {
            node: NodeId(0),
            round: 2,
        });
        t.clear();
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }
}
