//! Serialisable replay scenarios.
//!
//! A [`ReplayScenario`] is a cluster-level action list — requests, churn
//! injections, explicit round advances — produced by the model checker's
//! counterexample shrinker (`skueue-model`) and re-executed against the real
//! protocol by the regression tests.  The simulator itself knows nothing
//! about clusters, so this module only defines the *format*: a compact,
//! stable, human-readable line syntax (`P3 S7 D4 | e1 e2 J d1 L2`), so
//! pinned counterexamples in `tests/` stay reviewable diffs.

use serde::{Deserialize, Serialize};

/// One step of a replay scenario, at the cluster API level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplayStep {
    /// Issue an enqueue at this process (payload chosen by the harness).
    Enqueue(u64),
    /// Issue a dequeue at this process.
    Dequeue(u64),
    /// Join a new process.
    Join,
    /// Request leave of this process.
    Leave(u64),
    /// Advance the simulation this many rounds.
    Rounds(u64),
}

/// A serialisable, replayable scenario.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayScenario {
    /// Initial number of processes.
    pub processes: u64,
    /// Simulation seed (the delivery schedule under asynchronous delivery).
    pub seed: u64,
    /// Maximum message delay (`0` = synchronous delivery).
    pub max_delay: u64,
    /// The steps, in order.
    pub steps: Vec<ReplayStep>,
}

impl ReplayScenario {
    /// Renders the scenario in the compact line syntax:
    /// `P<processes> S<seed> D<max_delay> | <steps...>` where a step is
    /// `e<p>` (enqueue at p), `d<p>` (dequeue at p), `J` (join),
    /// `L<p>` (leave of p) or `r<k>` (advance k rounds).
    pub fn to_compact(&self) -> String {
        let mut out = format!("P{} S{} D{} |", self.processes, self.seed, self.max_delay);
        for step in &self.steps {
            out.push(' ');
            match step {
                ReplayStep::Enqueue(p) => out.push_str(&format!("e{p}")),
                ReplayStep::Dequeue(p) => out.push_str(&format!("d{p}")),
                ReplayStep::Join => out.push('J'),
                ReplayStep::Leave(p) => out.push_str(&format!("L{p}")),
                ReplayStep::Rounds(k) => out.push_str(&format!("r{k}")),
            }
        }
        out
    }

    /// Parses the compact line syntax produced by [`Self::to_compact`].
    pub fn from_compact(line: &str) -> Result<Self, String> {
        let (header, body) = line
            .split_once('|')
            .ok_or_else(|| format!("missing `|` separator in {line:?}"))?;
        let mut processes = None;
        let mut seed = None;
        let mut max_delay = None;
        for token in header.split_whitespace() {
            let (tag, value) = token.split_at(1);
            let value: u64 = value
                .parse()
                .map_err(|e| format!("bad header token {token:?}: {e}"))?;
            match tag {
                "P" => processes = Some(value),
                "S" => seed = Some(value),
                "D" => max_delay = Some(value),
                _ => return Err(format!("unknown header tag {tag:?}")),
            }
        }
        let mut steps = Vec::new();
        for token in body.split_whitespace() {
            if token == "J" {
                steps.push(ReplayStep::Join);
                continue;
            }
            let (tag, value) = token.split_at(1);
            let parse = |v: &str| -> Result<u64, String> {
                v.parse().map_err(|e| format!("bad step {token:?}: {e}"))
            };
            steps.push(match tag {
                "e" => ReplayStep::Enqueue(parse(value)?),
                "d" => ReplayStep::Dequeue(parse(value)?),
                "L" => ReplayStep::Leave(parse(value)?),
                "r" => ReplayStep::Rounds(parse(value)?),
                _ => return Err(format!("unknown step tag {tag:?}")),
            });
        }
        Ok(ReplayScenario {
            processes: processes.ok_or("missing P header")?,
            seed: seed.ok_or("missing S header")?,
            max_delay: max_delay.ok_or("missing D header")?,
            steps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trips() {
        let scenario = ReplayScenario {
            processes: 3,
            seed: 7,
            max_delay: 4,
            steps: vec![
                ReplayStep::Enqueue(1),
                ReplayStep::Enqueue(2),
                ReplayStep::Join,
                ReplayStep::Dequeue(1),
                ReplayStep::Leave(2),
                ReplayStep::Rounds(60),
            ],
        };
        let line = scenario.to_compact();
        assert_eq!(line, "P3 S7 D4 | e1 e2 J d1 L2 r60");
        assert_eq!(ReplayScenario::from_compact(&line).unwrap(), scenario);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(ReplayScenario::from_compact("P3 S7 D4 e1").is_err());
        assert!(ReplayScenario::from_compact("P3 S7 | e1").is_err());
        assert!(ReplayScenario::from_compact("P3 S7 D4 | x1").is_err());
        assert!(ReplayScenario::from_compact("P3 S7 D4 | eX").is_err());
    }
}
