//! Figure 3 bench: stack rounds-per-request at representative sizes/ratios.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skueue_core::Mode;
use skueue_workloads::{run_fixed_rate, ScenarioParams};
use std::time::Duration;

fn fig3_stack(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_stack");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &n in &[50usize, 200] {
        for &ratio in &[0.5f64, 1.0] {
            let id = BenchmarkId::new(format!("push_ratio_{ratio}"), n);
            group.bench_with_input(id, &(n, ratio), |b, &(n, ratio)| {
                b.iter(|| {
                    run_fixed_rate(
                        ScenarioParams::fixed_rate(n, Mode::Stack, ratio)
                            .with_generation_rounds(20)
                            .without_verification(),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig3_stack);
criterion_main!(benches);
