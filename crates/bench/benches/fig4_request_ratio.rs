//! Figure 4 bench: queue vs stack under increasing per-node load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skueue_core::Mode;
use skueue_workloads::{run_per_node_rate, ScenarioParams};
use std::time::Duration;

fn fig4_request_ratio(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_request_ratio");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for mode in [Mode::Queue, Mode::Stack] {
        for &p in &[0.1f64, 0.5] {
            let id = BenchmarkId::new(format!("{mode:?}"), p);
            group.bench_with_input(id, &(mode, p), |b, &(mode, p)| {
                b.iter(|| {
                    run_per_node_rate(
                        ScenarioParams::per_node_rate(100, mode, p)
                            .with_generation_rounds(20)
                            .without_verification(),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig4_request_ratio);
criterion_main!(benches);
