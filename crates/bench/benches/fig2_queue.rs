//! Figure 2 bench: queue rounds-per-request at representative sizes/ratios.
//!
//! Criterion times a reduced data point of the Figure 2 sweep; the full
//! sweep (and the numbers in EXPERIMENTS.md) comes from the `experiments`
//! binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skueue_core::Mode;
use skueue_workloads::{run_fixed_rate, ScenarioParams};
use std::time::Duration;

fn fig2_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_queue");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &n in &[50usize, 200] {
        for &ratio in &[0.5f64, 1.0] {
            let id = BenchmarkId::new(format!("ratio_{ratio}"), n);
            group.bench_with_input(id, &(n, ratio), |b, &(n, ratio)| {
                b.iter(|| {
                    run_fixed_rate(
                        ScenarioParams::fixed_rate(n, Mode::Queue, ratio)
                            .with_generation_rounds(20)
                            .without_verification(),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig2_queue);
criterion_main!(benches);
