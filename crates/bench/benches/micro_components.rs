//! Component micro-benchmarks: anchor assignment, interval decomposition,
//! DHT store operations, label hashing.

use criterion::{criterion_group, criterion_main, Criterion};
use skueue_core::{AnchorState, Batch, BatchOp, Mode};
use skueue_dht::{Element, NodeStore, StoredEntry};
use skueue_overlay::{Label, LabelHasher};
use skueue_sim::ids::{NodeId, ProcessId, RequestId};
use std::time::Duration;

fn micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_components");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));

    group.bench_function("anchor_assign_mixed_batch", |b| {
        let mut batch = Batch::empty();
        for i in 0..1000 {
            batch.push_op(if i % 3 == 0 {
                BatchOp::Dequeue
            } else {
                BatchOp::Enqueue
            });
        }
        b.iter(|| {
            let mut anchor = AnchorState::new();
            anchor.assign(&batch, Mode::Queue)
        })
    });

    group.bench_function("dht_store_put_get_1000", |b| {
        let hasher = LabelHasher::default();
        b.iter(|| {
            let mut store = NodeStore::new();
            for p in 0..1000u64 {
                let entry = StoredEntry::queue(
                    p,
                    hasher.position_key(p),
                    Element::new(RequestId::new(ProcessId(0), p), p),
                );
                store.put(entry);
            }
            for p in 0..1000u64 {
                store.get_queue(p, RequestId::new(ProcessId(1), p), NodeId(0));
            }
            store.len()
        })
    });

    group.bench_function("label_hashing_10k_positions", |b| {
        let hasher = LabelHasher::default();
        b.iter(|| {
            let mut acc = 0u64;
            for p in 0..10_000u64 {
                acc ^= hasher.position_key(p).raw();
            }
            acc
        })
    });

    group.bench_function("label_ring_arithmetic", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            let mut x = Label::from_raw(0x0123_4567_89AB_CDEF);
            for _ in 0..10_000 {
                x = x.debruijn_step(acc.is_multiple_of(2));
                acc = acc.wrapping_add(x.ring_distance(Label::HALF));
            }
            acc
        })
    });

    group.finish();
}

criterion_group!(benches, micro);
criterion_main!(benches);
