//! E5 bench: batch combination and size accounting under heavy load
//! (Theorem 18 / Theorem 20).

use criterion::{criterion_group, criterion_main, Criterion};
use skueue_core::{Batch, BatchOp, Mode};
use skueue_workloads::{run_per_node_rate, ScenarioParams};
use std::time::Duration;

fn batch_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_size");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    // Micro: combining many batches (the anchor's hot path).
    group.bench_function("combine_1000_batches", |b| {
        let parts: Vec<Batch> = (0..1000)
            .map(|i| {
                let mut batch = Batch::empty();
                for j in 0..(i % 7) {
                    batch.push_op(if j % 2 == 0 {
                        BatchOp::Enqueue
                    } else {
                        BatchOp::Dequeue
                    });
                }
                batch
            })
            .collect();
        b.iter(|| {
            let mut acc = Batch::empty();
            for p in &parts {
                acc.combine(p);
            }
            acc
        })
    });

    // Macro: full system at one request per node per round; the result's
    // batch-size statistics are what Theorem 18/20 bound.
    group.bench_function("queue_full_load_n50", |b| {
        b.iter(|| {
            run_per_node_rate(
                ScenarioParams::per_node_rate(50, Mode::Queue, 1.0)
                    .with_generation_rounds(15)
                    .without_verification(),
            )
        })
    });
    group.bench_function("stack_full_load_n50", |b| {
        b.iter(|| {
            run_per_node_rate(
                ScenarioParams::per_node_rate(50, Mode::Stack, 1.0)
                    .with_generation_rounds(15)
                    .without_verification(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, batch_ops);
criterion_main!(benches);
