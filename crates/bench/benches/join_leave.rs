//! E6 bench: join/leave churn handling (Theorem 17).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skueue_workloads::run_churn_scenario;
use std::time::Duration;

fn join_leave(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_leave");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for &(n, joins, leaves) in &[(8usize, 3usize, 2usize), (16, 6, 4)] {
        let id = BenchmarkId::new("churn", format!("n{n}_j{joins}_l{leaves}"));
        group.bench_with_input(id, &(n, joins, leaves), |b, &(n, joins, leaves)| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_churn_scenario(n, joins, leaves, seed)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, join_leave);
criterion_main!(benches);
