//! E4 bench: LDB routing (Lemma 3) — hop computation over static topologies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skueue_overlay::{
    recommended_bit_budget, route_step, Label, LabelHasher, RouteAction, RouteProgress, Topology,
    VKind, VirtualId,
};
use skueue_sim::ids::{NodeId, ProcessId};
use std::time::Duration;

fn route_once(topology: &Topology, from: VirtualId, key: Label) -> u32 {
    let node_of = |v: VirtualId| NodeId(v.process.raw() * 3 + v.kind.index() as u64);
    let vid_of =
        |n: NodeId| VirtualId::new(ProcessId(n.0 / 3), VKind::from_index((n.0 % 3) as usize));
    let mut current = from;
    let mut progress = RouteProgress::new(key, recommended_bit_budget(topology.num_processes()));
    loop {
        let view = topology.local_view(current, &node_of).expect("member");
        match route_step(&view, &mut progress) {
            RouteAction::Deliver => return progress.hops,
            RouteAction::Forward(next) => {
                progress.hops += 1;
                current = vid_of(next);
            }
        }
    }
}

fn routing_hops(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_hops");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for &n in &[100u64, 1000, 10_000] {
        let processes: Vec<ProcessId> = (0..n).map(ProcessId).collect();
        let topology = Topology::build(&processes, LabelHasher::default()).expect("non-empty");
        group.bench_with_input(
            BenchmarkId::new("route_100_keys", n),
            &topology,
            |b, topo| {
                b.iter(|| {
                    let mut total_hops = 0u32;
                    let mut raw = 0x1234_5678u64;
                    for i in 0..100u64 {
                        raw = raw.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let key = Label::from_raw(raw);
                        let from = topo.at_rank((i as usize * 31) % topo.len()).vid;
                        total_hops += route_once(topo, from, key);
                    }
                    total_hops
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, routing_hops);
criterion_main!(benches);
