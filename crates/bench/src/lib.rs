//! # skueue-bench — experiment harness
//!
//! Reproduces every figure of the Skueue paper's evaluation section plus the
//! derived experiments listed in DESIGN.md.  Two entry points:
//!
//! * the `experiments` binary (`cargo run -p skueue-bench --release --bin
//!   experiments -- <experiment>`) runs full parameter sweeps and prints the
//!   series the paper plots (and JSON records for EXPERIMENTS.md),
//! * the Criterion benches (`cargo bench`) time representative single points
//!   of each experiment so regressions in protocol cost show up in CI.
//!
//! The default sweeps are scaled down from the paper's 100 000 processes ×
//! 1000 rounds so that the whole suite finishes on a laptop; pass
//! `--paper-scale` to the binary for the full-size runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod throughput;

pub use harness::{fig2_sweep, fig3_sweep, fig4_sweep, print_series, ExperimentPoint, SweepConfig};
pub use throughput::{
    measure_fig2_point, measure_point, points_to_json, print_throughput, run_shard_sweep,
    run_thread_sweep, run_throughput, run_trace_sweep, PointSpec, ThroughputConfig,
    ThroughputPoint,
};
