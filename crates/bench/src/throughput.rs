//! Wall-clock throughput harness — the tracked perf baseline.
//!
//! The Criterion benches time micro components; this module times whole
//! fig2-style sweep points (`run_fixed_rate` at insert ratio 0.5) and reports
//! **ops/sec** (completed requests per wall-clock second) and **rounds/sec**
//! (simulated rounds per wall-clock second), plus the Stage-4 batching
//! metrics (`hops_per_op`, `dht_ops_per_message`) and the maximum number of
//! pipelined waves observed.  The `throughput` binary wraps it and emits a
//! machine-readable `BENCH_pr3.json` at the repo root so the perf trajectory
//! of the hot paths is tracked across PRs (see PERF.md).
//!
//! Verification is disabled for the timed runs: the harness measures the
//! simulator's delivery loop and the protocol's aggregation path, not the
//! O(history²)-ish consistency checkers.

use serde::{Deserialize, Serialize};
use skueue_core::Mode;
use skueue_workloads::{run_fixed_rate, ScenarioParams};
use std::time::Instant;

/// One timed fig2-style sweep point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputPoint {
    /// Number of processes (the fig2 x-axis).
    pub processes: usize,
    /// Requests completed during the run.
    pub requests: u64,
    /// Total simulated rounds (generation + drain).
    pub rounds: u64,
    /// Best wall-clock time over the configured repeats, in milliseconds.
    pub wall_ms: f64,
    /// Completed requests per wall-clock second.
    pub ops_per_sec: f64,
    /// Simulated rounds per wall-clock second.
    pub rounds_per_sec: f64,
    /// Mean DHT routing hops per operation (`hops_per_op`).
    pub dht_hops_mean: f64,
    /// Mean DHT operations per `DhtBatch` message (coalescing factor).
    pub dht_ops_per_message_mean: f64,
    /// Largest number of aggregation waves any node had in flight.
    pub max_waves_in_flight: u64,
}

/// Parameters of a throughput run.
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// Process counts to sweep (fig2 x-axis points).
    pub process_counts: Vec<usize>,
    /// Rounds of request generation per point.
    pub generation_rounds: u64,
    /// Timed repetitions per point; the best (minimum) wall time is kept.
    pub repeats: usize,
    /// Workload / simulation seed.
    pub seed: u64,
}

impl ThroughputConfig {
    /// Quick mode for CI smoke runs (seconds).
    pub fn quick(seed: u64) -> Self {
        ThroughputConfig {
            process_counts: vec![100, 1000],
            generation_rounds: 100,
            repeats: 1,
            seed,
        }
    }

    /// Full mode for the tracked baseline (a minute or two).
    pub fn full(seed: u64) -> Self {
        ThroughputConfig {
            process_counts: vec![100, 300, 1000, 3000],
            generation_rounds: 100,
            repeats: 3,
            seed,
        }
    }

    /// Paper-scale smoke point (fig2, n = 10⁴, capped rounds): one data
    /// point big enough that a pipelining or batching regression shows up
    /// as a multi-minute CI step instead of a pass.
    pub fn paper_smoke(seed: u64) -> Self {
        ThroughputConfig {
            process_counts: vec![10_000],
            generation_rounds: 50,
            repeats: 1,
            seed,
        }
    }
}

/// Times one fig2-style point (queue, insert ratio 0.5, 10 requests/round)
/// and returns the best-of-`repeats` measurement.
pub fn measure_fig2_point(
    n: usize,
    generation_rounds: u64,
    repeats: usize,
    seed: u64,
) -> ThroughputPoint {
    let mut best: Option<ThroughputPoint> = None;
    for _ in 0..repeats.max(1) {
        let params = ScenarioParams::fixed_rate(n, Mode::Queue, 0.5)
            .with_generation_rounds(generation_rounds)
            .with_seed(seed)
            .without_verification();
        let start = Instant::now();
        let result = run_fixed_rate(params);
        let wall = start.elapsed();
        let wall_ms = wall.as_secs_f64() * 1e3;
        let rounds = generation_rounds + result.drain_rounds;
        let secs = wall.as_secs_f64().max(1e-9);
        let point = ThroughputPoint {
            processes: n,
            requests: result.requests,
            rounds,
            wall_ms,
            ops_per_sec: result.requests as f64 / secs,
            rounds_per_sec: rounds as f64 / secs,
            dht_hops_mean: result.mean_dht_hops,
            dht_ops_per_message_mean: result.mean_dht_ops_per_message,
            max_waves_in_flight: result.max_waves_in_flight,
        };
        let better = best
            .as_ref()
            .map(|b| point.wall_ms < b.wall_ms)
            .unwrap_or(true);
        if better {
            best = Some(point);
        }
    }
    best.expect("repeats >= 1")
}

/// Runs the configured sweep and returns one point per process count.
pub fn run_throughput(config: &ThroughputConfig) -> Vec<ThroughputPoint> {
    config
        .process_counts
        .iter()
        .map(|&n| measure_fig2_point(n, config.generation_rounds, config.repeats, config.seed))
        .collect()
}

/// Renders a point list as a JSON array (hand-rolled: the offline `serde`
/// stub does not serialise — see `crates/compat/README.md`).
pub fn points_to_json(points: &[ThroughputPoint], indent: &str) -> String {
    let mut out = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "{indent}  {{\"processes\": {}, \"requests\": {}, \"rounds\": {}, \"wall_ms\": {:.1}, \"ops_per_sec\": {:.1}, \"rounds_per_sec\": {:.1}, \"dht_hops_mean\": {:.2}, \"dht_ops_per_message_mean\": {:.2}, \"max_waves_in_flight\": {}}}{}\n",
            p.processes,
            p.requests,
            p.rounds,
            p.wall_ms,
            p.ops_per_sec,
            p.rounds_per_sec,
            p.dht_hops_mean,
            p.dht_ops_per_message_mean,
            p.max_waves_in_flight,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!("{indent}]"));
    out
}

/// Prints a human-readable throughput table.
pub fn print_throughput(title: &str, points: &[ThroughputPoint]) {
    println!("\n=== {title} ===");
    println!(
        "{:>8} {:>9} {:>8} {:>10} {:>12} {:>12} {:>9} {:>9} {:>6}",
        "n",
        "requests",
        "rounds",
        "wall ms",
        "ops/sec",
        "rounds/sec",
        "hops/op",
        "ops/msg",
        "waves"
    );
    for p in points {
        println!(
            "{:>8} {:>9} {:>8} {:>10.1} {:>12.1} {:>12.1} {:>9.2} {:>9.2} {:>6}",
            p.processes,
            p.requests,
            p.rounds,
            p.wall_ms,
            p.ops_per_sec,
            p.rounds_per_sec,
            p.dht_hops_mean,
            p.dht_ops_per_message_mean,
            p.max_waves_in_flight,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_point_measures_something() {
        let p = measure_fig2_point(20, 10, 1, 1);
        assert_eq!(p.processes, 20);
        assert_eq!(p.requests, 100);
        assert!(p.rounds >= 10);
        assert!(p.wall_ms > 0.0);
        assert!(p.ops_per_sec > 0.0);
        assert!(p.rounds_per_sec > 0.0);
        assert!(p.dht_hops_mean >= 0.0);
        assert!(
            p.dht_ops_per_message_mean >= 1.0,
            "every DhtBatch carries at least one op"
        );
        assert!(
            p.max_waves_in_flight >= 2,
            "the wave pipeline must actually overlap waves"
        );
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let mk = |processes, wall_ms| ThroughputPoint {
            processes,
            requests: 100,
            rounds: 42,
            wall_ms,
            ops_per_sec: 2.0,
            rounds_per_sec: 3.0,
            dht_hops_mean: 4.5,
            dht_ops_per_message_mean: 1.5,
            max_waves_in_flight: 3,
        };
        let points = vec![mk(10, 1.5), mk(20, 2.5)];
        let json = points_to_json(&points, "  ");
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with(']'));
        assert_eq!(json.matches("\"processes\"").count(), 2);
        assert_eq!(json.matches("\"dht_ops_per_message_mean\"").count(), 2);
        assert_eq!(json.matches("},").count(), 1, "comma between, not after");
    }

    #[test]
    fn configs_cover_the_key_points() {
        assert!(ThroughputConfig::quick(1).process_counts.contains(&1000));
        assert!(ThroughputConfig::full(1).process_counts.contains(&3000));
        assert_eq!(ThroughputConfig::paper_smoke(1).process_counts, [10_000]);
    }
}
