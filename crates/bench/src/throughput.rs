//! Wall-clock throughput harness — the tracked perf baseline.
//!
//! The Criterion benches time micro components; this module times whole
//! fig2-style sweep points (`run_fixed_rate` at insert ratio 0.5) and reports
//! **ops/sec** (completed requests per wall-clock second) and **rounds/sec**
//! (simulated rounds per wall-clock second), plus the Stage-4 batching
//! metrics (`hops_per_op`, `dht_ops_per_message`), the maximum number of
//! pipelined waves observed, and — for sharded runs — how the aggregation
//! waves spread over the anchor shards.  The `throughput` binary wraps it
//! and emits a machine-readable `BENCH_pr4.json` at the repo root so the
//! perf trajectory of the hot paths is tracked across PRs (see PERF.md).
//!
//! Verification is disabled for the timed runs: the harness measures the
//! simulator's delivery loop and the protocol's aggregation path, not the
//! O(history²)-ish consistency checkers.

use serde::{Deserialize, Serialize};
use skueue_core::{Mode, TraceLevel};
use skueue_workloads::{run_fixed_rate, ScenarioParams};
use std::time::Instant;

/// One timed fig2-style sweep point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputPoint {
    /// Number of processes (the fig2 x-axis).
    pub processes: usize,
    /// Number of anchor shards the point ran with (1 = unsharded).
    pub shards: usize,
    /// Worker threads of the round loop (1 = the single-threaded backend;
    /// both backends produce byte-identical histories, so every metric in
    /// this row except the wall-clock ones is thread-count-invariant).
    pub threads: usize,
    /// Whether the nearest-middle routing finger was enabled (changes
    /// `dht_hops_mean` and therefore the schedule; the BENCH_pr8 finger
    /// section reports matched off/on rows).
    pub middle_fingers: bool,
    /// Requests completed during the run.
    pub requests: u64,
    /// Total simulated rounds (generation + drain).
    pub rounds: u64,
    /// Best wall-clock time over the configured repeats, in milliseconds.
    pub wall_ms: f64,
    /// Completed requests per wall-clock second.
    pub ops_per_sec: f64,
    /// Simulated rounds per wall-clock second.
    pub rounds_per_sec: f64,
    /// Mean DHT routing hops per operation (`hops_per_op`).
    pub dht_hops_mean: f64,
    /// Mean DHT operations per `DhtBatch` message (coalescing factor).
    pub dht_ops_per_message_mean: f64,
    /// Largest number of aggregation waves any node had in flight.
    pub max_waves_in_flight: u64,
    /// Waves assigned per shard anchor (indexed by shard id) — shard
    /// imbalance at a glance.  Empty for frozen baselines that predate
    /// sharding.
    pub per_shard_waves: Vec<u64>,
    /// `DhtReply` entries that arrived for a request no node knows (the
    /// benign reply/departure race; non-zero values under a churn-free
    /// workload would flag a routing bug).
    pub unmatched_dht_replies: u64,
    /// Per-lane wall-clock time spent running rounds, in milliseconds
    /// (indexed by lane = shard id).  The spread is the lane imbalance the
    /// round barrier pays for.
    pub lane_busy_ms: Vec<f64>,
    /// Per-lane cumulative time sitting idle at the round barrier while
    /// slower lanes finished, in milliseconds (parallel backend only; all
    /// zeros single-threaded).
    pub lane_barrier_wait_ms: Vec<f64>,
    /// Median request latency in rounds (nearest-rank, from the history —
    /// populated regardless of the tracing level; 0 in frozen pre-PR-9
    /// baselines).
    pub p50_rounds: u64,
    /// 99th-percentile request latency in rounds.
    pub p99_rounds: u64,
    /// 99.9th-percentile request latency in rounds.
    pub p999_rounds: u64,
    /// Lifecycle tracing level the point ran with (`"off"`, `"spans"`,
    /// `"full"`) — trace-on rows measure the recording overhead.
    pub trace: &'static str,
    /// Trace events recorded during the run (0 with tracing off).
    pub trace_events: u64,
}

/// Parameters of a throughput run.
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// Process counts to sweep (fig2 x-axis points).
    pub process_counts: Vec<usize>,
    /// Rounds of request generation per point.
    pub generation_rounds: u64,
    /// Timed repetitions per point; the best (minimum) wall time is kept.
    pub repeats: usize,
    /// Workload / simulation seed.
    pub seed: u64,
    /// Anchor shards per point (1 = the unsharded protocol).
    pub shards: usize,
}

impl ThroughputConfig {
    /// Quick mode for CI smoke runs (seconds).
    pub fn quick(seed: u64) -> Self {
        ThroughputConfig {
            process_counts: vec![100, 1000],
            generation_rounds: 100,
            repeats: 1,
            seed,
            shards: 1,
        }
    }

    /// Full mode for the tracked baseline (a minute or two).
    pub fn full(seed: u64) -> Self {
        ThroughputConfig {
            process_counts: vec![100, 300, 1000, 3000],
            generation_rounds: 100,
            repeats: 3,
            seed,
            shards: 1,
        }
    }

    /// Paper-scale smoke point (fig2, n = 10⁴, capped rounds): one data
    /// point big enough that a pipelining or batching regression shows up
    /// as a multi-minute CI step instead of a pass.
    pub fn paper_smoke(seed: u64) -> Self {
        ThroughputConfig {
            process_counts: vec![10_000],
            generation_rounds: 50,
            repeats: 1,
            seed,
            shards: 1,
        }
    }

    /// Runs the same points over `shards` anchor shards.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }
}

/// Full specification of one timed point — the fig2 open-loop workload
/// (queue, insert ratio 0.5) with every knob the PR-8 report sweeps.
#[derive(Debug, Clone)]
pub struct PointSpec {
    /// Number of processes.
    pub n: usize,
    /// Rounds of request generation.
    pub generation_rounds: u64,
    /// Open-loop offered load: requests injected per generation round
    /// (fig2 uses 10; the heavy-load row uses 1000 for ≥ 10⁵ requests).
    pub requests_per_round: u64,
    /// Timed repetitions; the best (minimum) wall time is kept.
    pub repeats: usize,
    /// Workload / simulation seed.
    pub seed: u64,
    /// Anchor shards (= simulation lanes).
    pub shards: usize,
    /// Worker threads of the round loop (1 = single-threaded backend).
    pub threads: usize,
    /// Nearest-middle routing finger on/off.
    pub middle_fingers: bool,
    /// Lifecycle tracing level (default off — the measured hot path).
    pub trace: TraceLevel,
}

impl PointSpec {
    /// The fig2 point at its paper parameters (10 requests/round).
    pub fn fig2(
        n: usize,
        generation_rounds: u64,
        repeats: usize,
        seed: u64,
        shards: usize,
    ) -> Self {
        PointSpec {
            n,
            generation_rounds,
            requests_per_round: 10,
            repeats,
            seed,
            shards,
            threads: 1,
            middle_fingers: false,
            trace: TraceLevel::Off,
        }
    }

    /// The heavy-load open-loop row: 1000 requests/round for 100 rounds —
    /// ≥ 10⁵ completed requests per run.
    pub fn heavy(n: usize, seed: u64, shards: usize) -> Self {
        PointSpec {
            n,
            generation_rounds: 100,
            requests_per_round: 1000,
            repeats: 1,
            seed,
            shards,
            threads: 1,
            middle_fingers: false,
            trace: TraceLevel::Off,
        }
    }

    /// Runs the point's round loop on `threads` worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables the nearest-middle routing finger.
    pub fn with_middle_fingers(mut self, enabled: bool) -> Self {
        self.middle_fingers = enabled;
        self
    }

    /// Enables lifecycle tracing at `level` (measures recording overhead).
    pub fn with_trace(mut self, level: TraceLevel) -> Self {
        self.trace = level;
        self
    }
}

/// Times one point described by `spec` and returns the best-of-`repeats`
/// measurement.
pub fn measure_point(spec: &PointSpec) -> ThroughputPoint {
    let mut best: Option<ThroughputPoint> = None;
    for _ in 0..spec.repeats.max(1) {
        let params = ScenarioParams::fixed_rate(spec.n, Mode::Queue, 0.5)
            .with_generation_rounds(spec.generation_rounds)
            .with_requests_per_round(spec.requests_per_round)
            .with_seed(spec.seed)
            .with_shards(spec.shards)
            .with_threads(spec.threads)
            .with_middle_fingers(spec.middle_fingers)
            .with_trace(spec.trace)
            .without_verification();
        let start = Instant::now();
        let result = run_fixed_rate(params);
        let wall = start.elapsed();
        let wall_ms = wall.as_secs_f64() * 1e3;
        let rounds = spec.generation_rounds + result.drain_rounds;
        let secs = wall.as_secs_f64().max(1e-9);
        let to_ms =
            |ns_list: &[u64]| -> Vec<f64> { ns_list.iter().map(|&ns| ns as f64 / 1e6).collect() };
        let point = ThroughputPoint {
            processes: spec.n,
            shards: spec.shards,
            threads: result.threads,
            middle_fingers: spec.middle_fingers,
            requests: result.requests,
            rounds,
            wall_ms,
            ops_per_sec: result.requests as f64 / secs,
            rounds_per_sec: rounds as f64 / secs,
            dht_hops_mean: result.mean_dht_hops,
            dht_ops_per_message_mean: result.mean_dht_ops_per_message,
            max_waves_in_flight: result.max_waves_in_flight,
            per_shard_waves: result.per_shard_waves.clone(),
            unmatched_dht_replies: result.unmatched_dht_replies,
            lane_busy_ms: to_ms(&result.lane_busy_ns),
            lane_barrier_wait_ms: to_ms(&result.lane_barrier_wait_ns),
            p50_rounds: result.p50_rounds,
            p99_rounds: result.p99_rounds,
            p999_rounds: result.p999_rounds,
            trace: spec.trace.name(),
            trace_events: result.trace_events,
        };
        let better = best
            .as_ref()
            .map(|b| point.wall_ms < b.wall_ms)
            .unwrap_or(true);
        if better {
            best = Some(point);
        }
    }
    best.expect("repeats >= 1")
}

/// Times one fig2-style point (queue, insert ratio 0.5, 10 requests/round)
/// over `shards` anchor shards and returns the best-of-`repeats`
/// measurement.
pub fn measure_fig2_point(
    n: usize,
    generation_rounds: u64,
    repeats: usize,
    seed: u64,
    shards: usize,
) -> ThroughputPoint {
    measure_point(&PointSpec::fig2(
        n,
        generation_rounds,
        repeats,
        seed,
        shards,
    ))
}

/// Runs the thread sweep: the same fig2 point (fixed `n`, fixed `shards`)
/// at every worker-thread count in `thread_counts`, one measured point per
/// count.  All schedule metrics are identical across the rows (the backends
/// are byte-identical); only the wall-clock columns move.
pub fn run_thread_sweep(
    n: usize,
    shards: usize,
    thread_counts: &[usize],
    generation_rounds: u64,
    repeats: usize,
    seed: u64,
) -> Vec<ThroughputPoint> {
    thread_counts
        .iter()
        .map(|&t| {
            measure_point(
                &PointSpec::fig2(n, generation_rounds, repeats, seed, shards).with_threads(t),
            )
        })
        .collect()
}

/// Runs the PR-9 trace-overhead sweep: the same fig2 point at every
/// `shards` × `threads` combination, once with tracing off and once at
/// [`TraceLevel::Full`] — matched row pairs, so `off.ops_per_sec /
/// full.ops_per_sec` is the recording overhead and nothing else.
pub fn run_trace_sweep(
    n: usize,
    shard_counts: &[usize],
    thread_counts: &[usize],
    generation_rounds: u64,
    repeats: usize,
    seed: u64,
) -> Vec<ThroughputPoint> {
    let mut rows = Vec::new();
    for &s in shard_counts {
        for &t in thread_counts {
            // The parallel backend runs one lane per shard, so threads clamp
            // to the shard count — skip combinations that would just repeat
            // an earlier pair under a different label.
            if t > s && thread_counts.contains(&s) {
                continue;
            }
            for level in [TraceLevel::Off, TraceLevel::Full] {
                rows.push(measure_point(
                    &PointSpec::fig2(n, generation_rounds, repeats, seed, s)
                        .with_threads(t)
                        .with_trace(level),
                ));
            }
        }
    }
    rows
}

/// Runs the configured sweep and returns one point per process count.
pub fn run_throughput(config: &ThroughputConfig) -> Vec<ThroughputPoint> {
    config
        .process_counts
        .iter()
        .map(|&n| {
            measure_fig2_point(
                n,
                config.generation_rounds,
                config.repeats,
                config.seed,
                config.shards,
            )
        })
        .collect()
}

/// Runs the shard sweep: the same fig2 point at every shard count in
/// `shard_counts`, one measured point per count.
pub fn run_shard_sweep(
    n: usize,
    shard_counts: &[usize],
    generation_rounds: u64,
    repeats: usize,
    seed: u64,
) -> Vec<ThroughputPoint> {
    shard_counts
        .iter()
        .map(|&s| measure_fig2_point(n, generation_rounds, repeats, seed, s))
        .collect()
}

fn waves_json(waves: &[u64]) -> String {
    let inner: Vec<String> = waves.iter().map(|w| w.to_string()).collect();
    format!("[{}]", inner.join(", "))
}

fn ms_json(ms: &[f64]) -> String {
    let inner: Vec<String> = ms.iter().map(|m| format!("{m:.1}")).collect();
    format!("[{}]", inner.join(", "))
}

/// Renders a point list as a JSON array (hand-rolled: the offline `serde`
/// stub does not serialise — see `crates/compat/README.md`).
pub fn points_to_json(points: &[ThroughputPoint], indent: &str) -> String {
    let mut out = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "{indent}  {{\"processes\": {}, \"shards\": {}, \"threads\": {}, \"middle_fingers\": {}, \"requests\": {}, \"rounds\": {}, \"wall_ms\": {:.1}, \"ops_per_sec\": {:.1}, \"rounds_per_sec\": {:.1}, \"dht_hops_mean\": {:.2}, \"dht_ops_per_message_mean\": {:.2}, \"max_waves_in_flight\": {}, \"per_shard_waves\": {}, \"unmatched_dht_replies\": {}, \"lane_busy_ms\": {}, \"lane_barrier_wait_ms\": {}, \"p50_rounds\": {}, \"p99_rounds\": {}, \"p999_rounds\": {}, \"trace\": \"{}\", \"trace_events\": {}}}{}\n",
            p.processes,
            p.shards,
            p.threads,
            p.middle_fingers,
            p.requests,
            p.rounds,
            p.wall_ms,
            p.ops_per_sec,
            p.rounds_per_sec,
            p.dht_hops_mean,
            p.dht_ops_per_message_mean,
            p.max_waves_in_flight,
            waves_json(&p.per_shard_waves),
            p.unmatched_dht_replies,
            ms_json(&p.lane_busy_ms),
            ms_json(&p.lane_barrier_wait_ms),
            p.p50_rounds,
            p.p99_rounds,
            p.p999_rounds,
            p.trace,
            p.trace_events,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!("{indent}]"));
    out
}

/// Prints a human-readable throughput table.  The two lane-timing columns
/// make lane imbalance visible at a glance: `busy max/min` is the spread of
/// per-lane wall time, `barrier max` is the worst cumulative time a lane
/// spent parked at the round barrier (0 on the single-threaded backend).
pub fn print_throughput(title: &str, points: &[ThroughputPoint]) {
    println!("\n=== {title} ===");
    println!(
        "{:>8} {:>3} {:>3} {:>3} {:>5} {:>9} {:>8} {:>10} {:>12} {:>12} {:>9} {:>9} {:>6} {:>9} {:>5} {:>5} {:>5} {:>15} {:>11} {:>16}",
        "n",
        "S",
        "T",
        "fgr",
        "trace",
        "requests",
        "rounds",
        "wall ms",
        "ops/sec",
        "rounds/sec",
        "hops/op",
        "ops/msg",
        "waves",
        "unmatched",
        "p50",
        "p99",
        "p999",
        "busy max/min ms",
        "barrier max",
        "waves/shard"
    );
    for p in points {
        let per_shard = if p.per_shard_waves.is_empty() {
            "-".to_string()
        } else {
            waves_json(&p.per_shard_waves)
        };
        let busy = if p.lane_busy_ms.is_empty() {
            "-".to_string()
        } else {
            let max = p.lane_busy_ms.iter().cloned().fold(f64::MIN, f64::max);
            let min = p.lane_busy_ms.iter().cloned().fold(f64::MAX, f64::min);
            format!("{max:.1}/{min:.1}")
        };
        let barrier = if p.lane_barrier_wait_ms.is_empty() {
            "-".to_string()
        } else {
            let max = p
                .lane_barrier_wait_ms
                .iter()
                .cloned()
                .fold(f64::MIN, f64::max);
            format!("{max:.1}")
        };
        println!(
            "{:>8} {:>3} {:>3} {:>3} {:>5} {:>9} {:>8} {:>10.1} {:>12.1} {:>12.1} {:>9.2} {:>9.2} {:>6} {:>9} {:>5} {:>5} {:>5} {:>15} {:>11} {:>16}",
            p.processes,
            p.shards,
            p.threads,
            if p.middle_fingers { "on" } else { "off" },
            p.trace,
            p.requests,
            p.rounds,
            p.wall_ms,
            p.ops_per_sec,
            p.rounds_per_sec,
            p.dht_hops_mean,
            p.dht_ops_per_message_mean,
            p.max_waves_in_flight,
            p.unmatched_dht_replies,
            p.p50_rounds,
            p.p99_rounds,
            p.p999_rounds,
            busy,
            barrier,
            per_shard,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_point_measures_something() {
        let p = measure_fig2_point(20, 10, 1, 1, 1);
        assert_eq!(p.processes, 20);
        assert_eq!(p.shards, 1);
        assert_eq!(p.requests, 100);
        assert!(p.rounds >= 10);
        assert!(p.wall_ms > 0.0);
        assert!(p.ops_per_sec > 0.0);
        assert!(p.rounds_per_sec > 0.0);
        assert!(p.dht_hops_mean >= 0.0);
        assert!(
            p.dht_ops_per_message_mean >= 1.0,
            "every DhtBatch carries at least one op"
        );
        assert!(
            p.max_waves_in_flight >= 2,
            "the wave pipeline must actually overlap waves"
        );
        assert_eq!(
            p.unmatched_dht_replies, 0,
            "churn-free workloads must not orphan replies"
        );
    }

    #[test]
    fn sharded_point_spreads_waves() {
        let p = measure_fig2_point(40, 10, 1, 1, 4);
        assert_eq!(p.shards, 4);
        assert_eq!(p.per_shard_waves.len(), 4);
        assert!(
            p.per_shard_waves.iter().filter(|&&w| w > 0).count() >= 2,
            "waves must spread over shards: {:?}",
            p.per_shard_waves
        );
    }

    #[test]
    fn shard_sweep_covers_all_counts() {
        let points = run_shard_sweep(24, &[1, 2], 5, 1, 3);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].shards, 1);
        assert_eq!(points[1].shards, 2);
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let mk = |processes, wall_ms| ThroughputPoint {
            processes,
            shards: 2,
            threads: 2,
            middle_fingers: false,
            requests: 100,
            rounds: 42,
            wall_ms,
            ops_per_sec: 2.0,
            rounds_per_sec: 3.0,
            dht_hops_mean: 4.5,
            dht_ops_per_message_mean: 1.5,
            max_waves_in_flight: 3,
            per_shard_waves: vec![7, 9],
            unmatched_dht_replies: 0,
            lane_busy_ms: vec![1.25, 0.75],
            lane_barrier_wait_ms: vec![0.0, 0.5],
            p50_rounds: 21,
            p99_rounds: 35,
            p999_rounds: 40,
            trace: "full",
            trace_events: 1234,
        };
        let points = vec![mk(10, 1.5), mk(20, 2.5)];
        let json = points_to_json(&points, "  ");
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with(']'));
        assert_eq!(json.matches("\"processes\"").count(), 2);
        assert_eq!(json.matches("\"threads\": 2").count(), 2);
        assert_eq!(json.matches("\"middle_fingers\": false").count(), 2);
        assert_eq!(json.matches("\"per_shard_waves\": [7, 9]").count(), 2);
        assert_eq!(json.matches("\"unmatched_dht_replies\"").count(), 2);
        assert_eq!(json.matches("\"lane_busy_ms\": [1.2, 0.8]").count(), 2);
        assert_eq!(
            json.matches("\"lane_barrier_wait_ms\": [0.0, 0.5]").count(),
            2
        );
        assert_eq!(json.matches("\"p50_rounds\": 21").count(), 2);
        assert_eq!(json.matches("\"p999_rounds\": 40").count(), 2);
        assert_eq!(json.matches("\"trace\": \"full\"").count(), 2);
        assert_eq!(json.matches("\"trace_events\": 1234").count(), 2);
        assert_eq!(json.matches("},").count(), 1, "comma between, not after");
        // Rows must stay one-line: the perf gate's extract_ops_per_sec scans
        // line-wise for `"processes": N, "shards": S,` + `"ops_per_sec":`.
        for line in json.lines().filter(|l| l.contains("\"processes\"")) {
            assert!(line.contains("\"ops_per_sec\""));
            assert!(line.contains("\"trace\""));
        }
    }

    #[test]
    fn thread_sweep_rows_share_the_schedule() {
        // The schedule-derived columns of a thread sweep must be identical
        // across rows — the backends are byte-identical; only wall-clock
        // columns may differ.
        let rows = run_thread_sweep(32, 4, &[1, 2], 10, 1, 7);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].threads, 1);
        assert_eq!(rows[1].threads, 2);
        assert_eq!(rows[0].requests, rows[1].requests);
        assert_eq!(rows[0].rounds, rows[1].rounds);
        assert_eq!(rows[0].dht_hops_mean, rows[1].dht_hops_mean);
        assert_eq!(rows[0].per_shard_waves, rows[1].per_shard_waves);
        assert_eq!(rows[0].lane_busy_ms.len(), 4);
        assert!(rows[0].lane_barrier_wait_ms.iter().all(|&ms| ms == 0.0));
        assert!(rows[1].lane_barrier_wait_ms.iter().any(|&ms| ms > 0.0));
    }

    #[test]
    fn heavy_spec_completes_at_least_its_offered_load() {
        // Scaled-down shape check of the heavy-load row (the real row runs
        // 1000 requests/round × 100 rounds in the snapshot binary).
        let mut spec = PointSpec::heavy(24, 3, 2);
        spec.generation_rounds = 10;
        spec.requests_per_round = 50;
        let p = measure_point(&spec);
        assert_eq!(p.requests, 500);
        assert_eq!(p.shards, 2);
        assert!(
            PointSpec::heavy(3000, 42, 8).requests_per_round
                * PointSpec::heavy(3000, 42, 8).generation_rounds
                >= 100_000
        );
    }

    #[test]
    fn finger_point_cuts_hops() {
        let base = PointSpec::fig2(128, 10, 1, 11, 1);
        let plain = measure_point(&base);
        let fingered = measure_point(&base.clone().with_middle_fingers(true));
        assert!(fingered.middle_fingers);
        assert!(
            fingered.dht_hops_mean < plain.dht_hops_mean,
            "finger must cut hops/op: {} vs {}",
            fingered.dht_hops_mean,
            plain.dht_hops_mean
        );
    }

    #[test]
    fn quick_point_reports_percentiles_without_tracing() {
        let p = measure_fig2_point(20, 10, 1, 1, 1);
        assert_eq!(p.trace, "off");
        assert_eq!(p.trace_events, 0);
        assert!(p.p50_rounds > 0, "percentiles come from the history");
        assert!(p.p99_rounds >= p.p50_rounds);
        assert!(p.p999_rounds >= p.p99_rounds);
    }

    #[test]
    fn trace_sweep_pairs_match_schedules() {
        // Scaled-down shape check of the PR-9 sweep: matched off/full rows
        // share every schedule-derived column; only the trace columns and
        // wall clock differ.
        let rows = run_trace_sweep(24, &[2], &[1], 8, 1, 5);
        assert_eq!(rows.len(), 2);
        let (off, full) = (&rows[0], &rows[1]);
        assert_eq!(off.trace, "off");
        assert_eq!(full.trace, "full");
        assert_eq!(off.trace_events, 0);
        assert!(full.trace_events > 0);
        assert_eq!(off.requests, full.requests);
        assert_eq!(off.rounds, full.rounds);
        assert_eq!(off.dht_hops_mean, full.dht_hops_mean);
        assert_eq!(off.per_shard_waves, full.per_shard_waves);
        assert_eq!(
            (off.p50_rounds, off.p99_rounds, off.p999_rounds),
            (full.p50_rounds, full.p99_rounds, full.p999_rounds),
            "tracing must not change the latency distribution"
        );
    }

    #[test]
    fn configs_cover_the_key_points() {
        assert!(ThroughputConfig::quick(1).process_counts.contains(&1000));
        assert!(ThroughputConfig::full(1).process_counts.contains(&3000));
        assert_eq!(ThroughputConfig::paper_smoke(1).process_counts, [10_000]);
        assert_eq!(ThroughputConfig::quick(1).with_shards(4).shards, 4);
    }
}
