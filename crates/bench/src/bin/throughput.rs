//! Throughput snapshot binary — produces `BENCH_pr3.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run -p skueue-bench --release --bin throughput -- [FLAGS]
//!
//! FLAGS: --quick        two points, one repeat (CI smoke; default)
//!        --full         four points, best of three repeats
//!        --paper-smoke  one fig2 point at n = 10⁴, capped rounds (CI
//!                       pipelining/batching regression canary)
//!        --seed <u64>   workload/simulation seed (default 42)
//!        --out <path>   write the JSON report there (default: stdout only)
//! ```
//!
//! The report contains the *measured* numbers of the current tree plus the
//! frozen PR-2 baseline (the `current` numbers committed in BENCH_pr2.json,
//! measured with the same methodology right before the batched-routing /
//! pipelined-wave rework) so the speedup of the protocol-path rework is
//! tracked in-repo.  See PERF.md for interpretation — note that `rounds`
//! differs from the baseline by design: PR 3 changes the protocol schedule
//! (demand-driven pipelined waves need fewer rounds), so `ops_per_sec` is
//! the end-to-end comparable number.

use skueue_bench::{
    points_to_json, print_throughput, run_throughput, ThroughputConfig, ThroughputPoint,
};

/// Seed the frozen baseline was measured with; other seeds run a different
/// schedule and are not comparable.
const BASELINE_SEED: u64 = 42;

/// Pre-PR-3 throughput at the fig2 points (queue, insert ratio 0.5,
/// 10 requests/round, 100 generation rounds, seed 42): the `current` block
/// of the committed BENCH_pr2.json — per-op hop-by-hop DHT routing and the
/// single implicit in-flight wave.  The Stage-4 batching metrics did not
/// exist yet; they are recorded as zero ("not measured").
const BASELINE: &[ThroughputPoint] = &[
    ThroughputPoint {
        processes: 100,
        requests: 1000,
        rounds: 308,
        wall_ms: 4.8,
        ops_per_sec: 210_203.0,
        rounds_per_sec: 64_742.5,
        dht_hops_mean: 0.0,
        dht_ops_per_message_mean: 0.0,
        max_waves_in_flight: 1,
    },
    ThroughputPoint {
        processes: 300,
        requests: 1000,
        rounds: 646,
        wall_ms: 10.1,
        ops_per_sec: 99_353.1,
        rounds_per_sec: 64_182.1,
        dht_hops_mean: 0.0,
        dht_ops_per_message_mean: 0.0,
        max_waves_in_flight: 1,
    },
    ThroughputPoint {
        processes: 1000,
        requests: 1000,
        rounds: 973,
        wall_ms: 26.9,
        ops_per_sec: 37_175.3,
        rounds_per_sec: 36_171.6,
        dht_hops_mean: 0.0,
        dht_ops_per_message_mean: 0.0,
        max_waves_in_flight: 1,
    },
    ThroughputPoint {
        processes: 3000,
        requests: 1000,
        rounds: 2582,
        wall_ms: 202.0,
        ops_per_sec: 4_951.0,
        rounds_per_sec: 12_783.4,
        dht_hops_mean: 0.0,
        dht_ops_per_message_mean: 0.0,
        max_waves_in_flight: 1,
    },
];

#[derive(PartialEq)]
enum ModeFlag {
    Quick,
    Full,
    PaperSmoke,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = ModeFlag::Quick;
    let mut seed = 42u64;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => mode = ModeFlag::Quick,
            "--full" => mode = ModeFlag::Full,
            "--paper-smoke" => mode = ModeFlag::PaperSmoke,
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(42);
            }
            "--out" => {
                i += 1;
                out = args.get(i).cloned();
            }
            other => eprintln!("ignoring unknown flag {other}"),
        }
        i += 1;
    }

    let (config, mode_name) = match mode {
        ModeFlag::Quick => (ThroughputConfig::quick(seed), "quick"),
        ModeFlag::Full => (ThroughputConfig::full(seed), "full"),
        ModeFlag::PaperSmoke => (ThroughputConfig::paper_smoke(seed), "paper-smoke"),
    };
    println!("Skueue throughput harness — mode: {mode_name}, seed: {seed}");
    let current = run_throughput(&config);
    print_throughput("fig2 throughput (queue, insert ratio 0.5)", &current);

    if mode == ModeFlag::PaperSmoke {
        // The paper-scale canary: completing at all within the CI time
        // budget is the check; print the point and exit without a report.
        let p = &current[0];
        println!(
            "\npaper-scale smoke point done: n={} requests={} in {:.1} ms ({:.1} ops/sec, {} waves in flight)",
            p.processes, p.requests, p.wall_ms, p.ops_per_sec, p.max_waves_in_flight
        );
        assert!(
            p.max_waves_in_flight >= 2,
            "wave pipelining regressed: no overlapping waves observed"
        );
        return;
    }

    print_throughput(
        "pre-PR-3 baseline (BENCH_pr2.json current; per-op routing, single wave)",
        BASELINE,
    );

    // The baseline was measured with seed 42; a different seed runs a
    // different schedule, so comparing ops/sec against it would be
    // meaningless — report null instead.
    let (speedup_n1000, speedup_n3000) = if seed == BASELINE_SEED {
        (
            speedup_at(1000, BASELINE, &current),
            speedup_at(3000, BASELINE, &current),
        )
    } else {
        println!("\nseed {seed} != baseline seed {BASELINE_SEED}: speedup not comparable");
        (None, None)
    };
    if let Some(s) = speedup_n3000 {
        println!("\nspeedup at n=3000 vs pre-PR-3: {s:.2}x (ops/sec)");
    }
    if let Some(s) = speedup_n1000 {
        println!("speedup at n=1000 vs pre-PR-3: {s:.2}x (ops/sec)");
    }

    let json = report_json(seed, mode_name, &current, speedup_n1000, speedup_n3000);
    match out {
        Some(path) => {
            std::fs::write(&path, &json).expect("write report file");
            println!("wrote {path}");
        }
        None => println!("\n{json}"),
    }
}

/// Ops/sec ratio current/baseline at the given point, if both sides have it.
fn speedup_at(n: usize, baseline: &[ThroughputPoint], current: &[ThroughputPoint]) -> Option<f64> {
    let b = baseline.iter().find(|p| p.processes == n)?;
    let c = current.iter().find(|p| p.processes == n)?;
    if b.ops_per_sec > 0.0 {
        Some(c.ops_per_sec / b.ops_per_sec)
    } else {
        None
    }
}

fn report_json(
    seed: u64,
    mode: &str,
    current: &[ThroughputPoint],
    speedup_n1000: Option<f64>,
    speedup_n3000: Option<f64>,
) -> String {
    let fmt = |s: Option<f64>| {
        s.map(|v| format!("{v:.2}"))
            .unwrap_or_else(|| "null".to_string())
    };
    format!(
        "{{\n  \"pr\": 3,\n  \"workload\": \"fig2 point: queue, insert_ratio 0.5, 10 requests/round, 100 generation rounds\",\n  \"seed\": {seed},\n  \"mode\": \"{mode}\",\n  \"baseline\": {},\n  \"current\": {},\n  \"speedup_ops_per_sec_n1000\": {},\n  \"speedup_ops_per_sec_n3000\": {}\n}}\n",
        points_to_json(BASELINE, "  "),
        points_to_json(current, "  "),
        fmt(speedup_n1000),
        fmt(speedup_n3000),
    )
}
