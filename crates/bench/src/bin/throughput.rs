//! Throughput snapshot binary — produces `BENCH_pr2.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run -p skueue-bench --release --bin throughput -- [FLAGS]
//!
//! FLAGS: --quick        two points, one repeat (CI smoke; default)
//!        --full         four points, best of three repeats
//!        --seed <u64>   workload/simulation seed (default 42)
//!        --out <path>   write the JSON report there (default: stdout only)
//! ```
//!
//! The report contains the *measured* numbers of the current tree plus the
//! frozen pre-PR-2 baseline (measured on the same machine class with the
//! same methodology, commit 74bb838) so the speedup of the hot-loop rework
//! is tracked in-repo.  See PERF.md for interpretation.

use skueue_bench::{
    points_to_json, print_throughput, run_throughput, ThroughputConfig, ThroughputPoint,
};

/// Seed the frozen baseline was measured with; other seeds run a different
/// schedule and are not comparable.
const BASELINE_SEED: u64 = 42;

/// Pre-PR-2 throughput at the fig2 points (queue, insert ratio 0.5,
/// 10 requests/round, 100 generation rounds, seed 42), measured at commit
/// 74bb838 with the flat-inbox scheduler and cloning batch aggregation
/// (full mode, best of three repeats).
const BASELINE: &[ThroughputPoint] = &[
    ThroughputPoint {
        processes: 100,
        requests: 1000,
        rounds: 308,
        wall_ms: 9.6,
        ops_per_sec: 103_781.0,
        rounds_per_sec: 31_964.6,
    },
    ThroughputPoint {
        processes: 300,
        requests: 1000,
        rounds: 646,
        wall_ms: 27.4,
        ops_per_sec: 36_459.6,
        rounds_per_sec: 23_552.9,
    },
    ThroughputPoint {
        processes: 1000,
        requests: 1000,
        rounds: 973,
        wall_ms: 108.5,
        ops_per_sec: 9_214.9,
        rounds_per_sec: 8_966.1,
    },
    ThroughputPoint {
        processes: 3000,
        requests: 1000,
        rounds: 2582,
        wall_ms: 1105.0,
        ops_per_sec: 905.0,
        rounds_per_sec: 2_336.6,
    },
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = true;
    let mut seed = 42u64;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--full" => quick = false,
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(42);
            }
            "--out" => {
                i += 1;
                out = args.get(i).cloned();
            }
            other => eprintln!("ignoring unknown flag {other}"),
        }
        i += 1;
    }

    let config = if quick {
        ThroughputConfig::quick(seed)
    } else {
        ThroughputConfig::full(seed)
    };
    println!(
        "Skueue throughput harness — mode: {}, seed: {seed}",
        if quick { "quick" } else { "full" }
    );
    let current = run_throughput(&config);
    print_throughput("fig2 throughput (queue, insert ratio 0.5)", &current);
    print_throughput("pre-PR-2 baseline (commit 74bb838)", BASELINE);

    // The baseline was measured with seed 42; a different seed runs a
    // different schedule (different round counts), so comparing ops/sec
    // against it would be meaningless — report null instead.
    let speedup = if seed == BASELINE_SEED {
        speedup_at(1000, BASELINE, &current)
    } else {
        println!("\nseed {seed} != baseline seed {BASELINE_SEED}: speedup not comparable");
        None
    };
    if let Some(s) = speedup {
        println!("\nspeedup at n=1000 vs baseline: {s:.2}x (ops/sec)");
    }

    let json = report_json(seed, quick, &current, speedup);
    match out {
        Some(path) => {
            std::fs::write(&path, &json).expect("write report file");
            println!("wrote {path}");
        }
        None => println!("\n{json}"),
    }
}

/// Ops/sec ratio current/baseline at the given point, if both sides have it.
fn speedup_at(n: usize, baseline: &[ThroughputPoint], current: &[ThroughputPoint]) -> Option<f64> {
    let b = baseline.iter().find(|p| p.processes == n)?;
    let c = current.iter().find(|p| p.processes == n)?;
    if b.ops_per_sec > 0.0 {
        Some(c.ops_per_sec / b.ops_per_sec)
    } else {
        None
    }
}

fn report_json(
    seed: u64,
    quick: bool,
    current: &[ThroughputPoint],
    speedup: Option<f64>,
) -> String {
    let speedup_str = speedup
        .map(|s| format!("{s:.2}"))
        .unwrap_or_else(|| "null".to_string());
    format!(
        "{{\n  \"pr\": 2,\n  \"workload\": \"fig2 point: queue, insert_ratio 0.5, 10 requests/round, 100 generation rounds\",\n  \"seed\": {seed},\n  \"mode\": \"{}\",\n  \"baseline_commit\": \"74bb838\",\n  \"baseline\": {},\n  \"current\": {},\n  \"speedup_ops_per_sec_n1000\": {speedup_str}\n}}\n",
        if quick { "quick" } else { "full" },
        points_to_json(BASELINE, "  "),
        points_to_json(current, "  "),
    )
}
