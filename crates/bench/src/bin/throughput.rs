//! Throughput snapshot binary — produces `BENCH_pr4.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run -p skueue-bench --release --bin throughput -- [FLAGS]
//!
//! FLAGS: --quick          two points, one repeat, shard sweep at n = 10³
//!                         (CI smoke; default)
//!        --full           four points, best of three repeats, shard sweep
//!                         at n = 3·10³
//!        --paper-smoke    one fig2 point at n = 10⁴, capped rounds (CI
//!                         pipelining/batching regression canary)
//!        --sharded-smoke  fig2 at n = 10⁴ over 4 anchor shards with the
//!                         cross-shard verifier ON; asserts consistency and
//!                         that ≥ 2 shards assigned waves (CI canary)
//!        --seed <u64>     workload/simulation seed (default 42)
//!        --repeats <n>    override the mode's timed repetitions per point
//!                         (best-of-n; raise on noisy/shared machines)
//!        --out <path>     write the JSON report there (default: stdout)
//!
//! The two smoke modes are pass/fail canaries, not measurements: they take
//! only --seed and ignore --repeats/--out (no report is produced).
//! ```
//!
//! The report contains the *measured* numbers of the current tree, the
//! frozen PR-3 baseline (the `current` numbers committed in BENCH_pr3.json,
//! measured with the same methodology right before anchor sharding), and a
//! **shard sweep** — the same fig2 point at S ∈ {1, 2, 4, 8} anchor shards —
//! so both the regression-free S = 1 path and the sharding win are tracked
//! in-repo.  See PERF.md for interpretation.

use skueue_bench::{
    points_to_json, print_throughput, run_shard_sweep, run_throughput, ThroughputConfig,
    ThroughputPoint,
};
use skueue_workloads::run_sharded_fig2;

/// Seed the frozen baseline was measured with; other seeds run a different
/// schedule and are not comparable.
const BASELINE_SEED: u64 = 42;

/// Shard counts of the tracked sweep section.
const SHARD_SWEEP: &[usize] = &[1, 2, 4, 8];

/// Pre-PR-4 throughput at the fig2 points (queue, insert ratio 0.5,
/// 10 requests/round, 100 generation rounds, seed 42): the `current` block
/// of the committed BENCH_pr3.json — batched DHT routing and pipelined
/// waves, single global anchor.  Shard metrics did not exist yet; they are
/// recorded as empty/zero ("not measured").
fn pr3_baseline() -> Vec<ThroughputPoint> {
    let frozen =
        |processes, requests, rounds, wall_ms, ops, rps, hops, opm, waves| ThroughputPoint {
            processes,
            shards: 1,
            requests,
            rounds,
            wall_ms,
            ops_per_sec: ops,
            rounds_per_sec: rps,
            dht_hops_mean: hops,
            dht_ops_per_message_mean: opm,
            max_waves_in_flight: waves,
            per_shard_waves: Vec::new(),
            unmatched_dht_replies: 0,
        };
    vec![
        frozen(100, 1000, 266, 9.6, 103_868.7, 27_629.1, 43.67, 1.66, 26),
        frozen(300, 1000, 328, 21.0, 47_564.1, 15_601.0, 46.80, 1.25, 26),
        frozen(1000, 1000, 545, 40.6, 24_609.3, 13_412.1, 55.87, 1.10, 29),
        frozen(3000, 1000, 1345, 84.1, 11_890.2, 15_992.3, 65.47, 1.03, 29),
    ]
}

#[derive(PartialEq)]
enum ModeFlag {
    Quick,
    Full,
    PaperSmoke,
    ShardedSmoke,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = ModeFlag::Quick;
    let mut seed = 42u64;
    let mut repeats: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => mode = ModeFlag::Quick,
            "--full" => mode = ModeFlag::Full,
            "--paper-smoke" => mode = ModeFlag::PaperSmoke,
            "--sharded-smoke" => mode = ModeFlag::ShardedSmoke,
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(42);
            }
            "--repeats" => {
                i += 1;
                repeats = args.get(i).and_then(|s| s.parse().ok());
            }
            "--out" => {
                i += 1;
                out = args.get(i).cloned();
            }
            other => eprintln!("ignoring unknown flag {other}"),
        }
        i += 1;
    }

    if mode == ModeFlag::ShardedSmoke {
        run_sharded_smoke(seed);
        return;
    }

    let (mut config, mode_name, sweep_n) = match mode {
        ModeFlag::Quick => (ThroughputConfig::quick(seed), "quick", 1000),
        ModeFlag::Full => (ThroughputConfig::full(seed), "full", 3000),
        ModeFlag::PaperSmoke => (ThroughputConfig::paper_smoke(seed), "paper-smoke", 0),
        ModeFlag::ShardedSmoke => unreachable!("handled above"),
    };
    if let Some(r) = repeats {
        config.repeats = r.max(1);
    }
    println!("Skueue throughput harness — mode: {mode_name}, seed: {seed}");
    let current = run_throughput(&config);
    print_throughput("fig2 throughput (queue, insert ratio 0.5)", &current);

    if mode == ModeFlag::PaperSmoke {
        // The paper-scale canary: completing at all within the CI time
        // budget is the check; print the point and exit without a report.
        let p = &current[0];
        println!(
            "\npaper-scale smoke point done: n={} requests={} in {:.1} ms ({:.1} ops/sec, {} waves in flight)",
            p.processes, p.requests, p.wall_ms, p.ops_per_sec, p.max_waves_in_flight
        );
        assert!(
            p.max_waves_in_flight >= 2,
            "wave pipelining regressed: no overlapping waves observed"
        );
        return;
    }

    // The shard sweep: the same fig2 point at S ∈ {1, 2, 4, 8}.
    let sweep = run_shard_sweep(
        sweep_n,
        SHARD_SWEEP,
        config.generation_rounds,
        config.repeats,
        seed,
    );
    print_throughput(
        &format!("shard sweep (fig2 point at n = {sweep_n})"),
        &sweep,
    );

    let baseline = pr3_baseline();
    print_throughput(
        "pre-PR-4 baseline (BENCH_pr3.json current; single global anchor)",
        &baseline,
    );

    // The baseline was measured with seed 42; a different seed runs a
    // different schedule, so comparing ops/sec against it would be
    // meaningless — report null instead.
    let (speedup_s1, speedup_s4) = if seed == BASELINE_SEED {
        (
            speedup_at(3000, 1, &baseline, &current),
            speedup_at(3000, 4, &baseline, &sweep),
        )
    } else {
        println!("\nseed {seed} != baseline seed {BASELINE_SEED}: speedup not comparable");
        (None, None)
    };
    if let Some(s) = speedup_s1 {
        println!("\nspeedup at n=3000, S=1 vs pre-PR-4: {s:.2}x (ops/sec)");
    }
    if let Some(s) = speedup_s4 {
        println!("speedup at n=3000, S=4 vs pre-PR-4: {s:.2}x (ops/sec)");
    }

    let json = report_json(
        seed,
        mode_name,
        config.repeats,
        sweep_n,
        &baseline,
        &current,
        &sweep,
        speedup_s1,
        speedup_s4,
    );
    match out {
        Some(path) => {
            std::fs::write(&path, &json).expect("write report file");
            println!("wrote {path}");
        }
        None => println!("\n{json}"),
    }
}

/// CI canary for the sharded protocol: the paper-scale fig2 point over four
/// anchor shards with the cross-shard verifier enabled.  Panics (fails the
/// CI step) on an inconsistent history or if the waves did not actually
/// spread over the shards.
fn run_sharded_smoke(seed: u64) {
    println!("Skueue sharded smoke — fig2 n=10000, shards=4, verifier ON, seed {seed}");
    let start = std::time::Instant::now();
    let result = run_sharded_fig2(10_000, 4, seed);
    let wall = start.elapsed().as_secs_f64();
    println!(
        "done in {:.1} s: {} requests, {} empty removes, waves per shard {:?}, unmatched replies {}",
        wall,
        result.requests,
        result.empty_removes,
        result.per_shard_waves,
        result.unmatched_dht_replies
    );
    assert!(
        result.consistent,
        "cross-shard verifier rejected the sharded fig2 history"
    );
    let assigning = result.per_shard_waves.iter().filter(|&&w| w > 0).count();
    assert!(
        assigning >= 2,
        "expected ≥ 2 shards to assign waves, got {:?}",
        result.per_shard_waves
    );
    println!("sharded smoke OK: {assigning}/4 shards assigned waves, history verified");
}

/// Ops/sec ratio of a (process-count, shard-count) point against the
/// unsharded baseline row at the same process count.
fn speedup_at(
    n: usize,
    shards: usize,
    baseline: &[ThroughputPoint],
    current: &[ThroughputPoint],
) -> Option<f64> {
    let b = baseline.iter().find(|p| p.processes == n)?;
    let c = current
        .iter()
        .find(|p| p.processes == n && p.shards == shards)?;
    if b.ops_per_sec > 0.0 {
        Some(c.ops_per_sec / b.ops_per_sec)
    } else {
        None
    }
}

#[allow(clippy::too_many_arguments)]
fn report_json(
    seed: u64,
    mode: &str,
    repeats: usize,
    sweep_n: usize,
    baseline: &[ThroughputPoint],
    current: &[ThroughputPoint],
    sweep: &[ThroughputPoint],
    speedup_s1: Option<f64>,
    speedup_s4: Option<f64>,
) -> String {
    let fmt = |s: Option<f64>| {
        s.map(|v| format!("{v:.2}"))
            .unwrap_or_else(|| "null".to_string())
    };
    format!(
        "{{\n  \"pr\": 4,\n  \"workload\": \"fig2 point: queue, insert_ratio 0.5, 10 requests/round, 100 generation rounds\",\n  \"seed\": {seed},\n  \"mode\": \"{mode}\",\n  \"repeats\": {repeats},\n  \"shard_sweep_processes\": {sweep_n},\n  \"baseline\": {},\n  \"current\": {},\n  \"shard_sweep\": {},\n  \"speedup_ops_per_sec_n3000_s1\": {},\n  \"speedup_ops_per_sec_n3000_s4\": {}\n}}\n",
        points_to_json(baseline, "  "),
        points_to_json(current, "  "),
        points_to_json(sweep, "  "),
        fmt(speedup_s1),
        fmt(speedup_s4),
    )
}
