//! Throughput snapshot binary — produces `BENCH_pr5.json` — and the CI
//! perf-regression gate.
//!
//! Usage:
//!
//! ```text
//! cargo run -p skueue-bench --release --bin throughput -- [FLAGS]
//!
//! FLAGS: --quick          two points, one repeat, shard sweep at n = 10³
//!                         (CI smoke; default)
//!        --full           four points, best of three repeats, shard sweep
//!                         at n = 3·10³
//!        --paper-smoke    one fig2 point at n = 10⁴, capped rounds (CI
//!                         pipelining/batching regression canary)
//!        --sharded-smoke  fig2 at n = 10⁴ over 4 anchor shards with the
//!                         cross-shard verifier ON; asserts consistency and
//!                         that ≥ 2 shards assigned waves (CI canary)
//!        --threads-sweep  the PR-8 parallel-backend report: fig2 n = 3·10³
//!                         S = 8 at threads ∈ {1, 2, 4, 8}, a heavy-load
//!                         open-loop row (10⁵ requests) on both backends,
//!                         and matched nearest-middle-finger off/on rows;
//!                         emits BENCH_pr8.json-style output (use --out)
//!        --parallel-smoke fig2 at n = 10⁴ over 4 anchor shards on the
//!                         parallel backend (threads = 4) with the verifier
//!                         ON; asserts consistency and that the lanes really
//!                         ran on ≥ 2 distinct worker threads (CI canary)
//!        --trace-sweep    the PR-9 trace-overhead report: fig2 n = 3·10³ at
//!                         S ∈ {1, 4} × threads ∈ {1, 4}, tracing off vs
//!                         full in matched row pairs; emits
//!                         BENCH_pr9.json-style output (use --out)
//!        --trace-smoke    fig2 at n = 10⁴ over 4 shards with span tracing
//!                         ON; asserts the Chrome export is valid JSON, all
//!                         lanes recorded events, and slice count ==
//!                         completed requests (CI canary)
//!        --trace-out <p>  export a Chrome trace of the fig2 n = 3·10³ point
//!                         (full tracing) to <p>; asserts the export is
//!                         byte-identical at threads = 1 and 4
//!        --check <path>   perf-regression gate: measure the fig2 n = 3000
//!                         point at S = 1 and S = 4 (best of --repeats,
//!                         default 3) and fail (exit 1) if either falls
//!                         below 0.8× the matching `shard_sweep` row of the
//!                         frozen snapshot at <path> (normally
//!                         BENCH_pr4.json); --out writes the fresh points
//!                         as a JSON artifact
//!        --seed <u64>     workload/simulation seed (default 42)
//!        --repeats <n>    override the mode's timed repetitions per point
//!                         (best-of-n; raise on noisy/shared machines)
//!        --out <path>     write the JSON report there (default: stdout)
//!
//! The two smoke modes are pass/fail canaries, not measurements: they take
//! only --seed and ignore --repeats/--out (no report is produced).
//! ```
//!
//! The report contains the *measured* numbers of the current tree, the
//! frozen PR-4 baseline (the `current` numbers committed in BENCH_pr4.json,
//! measured with the same methodology right before payloads became
//! generic), and a **shard sweep** — the same fig2 point at S ∈ {1, 2, 4, 8}
//! anchor shards — so both the regression-free S = 1 path and the sharding
//! win are tracked in-repo.  See PERF.md for interpretation.

use skueue_bench::{
    measure_point, points_to_json, print_throughput, run_shard_sweep, run_thread_sweep,
    run_throughput, run_trace_sweep, PointSpec, ThroughputConfig, ThroughputPoint,
};
use skueue_core::{Mode, TraceLevel};
use skueue_trace::validate_json;
use skueue_workloads::{run_fixed_rate, run_fixed_rate_traced, run_sharded_fig2, ScenarioParams};

/// Seed the frozen baseline was measured with; other seeds run a different
/// schedule and are not comparable.
const BASELINE_SEED: u64 = 42;

/// Shard counts of the tracked sweep section.
const SHARD_SWEEP: &[usize] = &[1, 2, 4, 8];

/// The perf-regression gate fails when a measured point drops below this
/// fraction of the frozen baseline (best-of-N tolerates runner noise; the
/// 20 % headroom tolerates slower CI hardware of the same class).
const CHECK_THRESHOLD: f64 = 0.8;

/// Pre-PR-5 throughput at the fig2 points (queue, insert ratio 0.5,
/// 10 requests/round, 100 generation rounds, seed 42): the `current` block
/// of the committed BENCH_pr4.json — sharded anchors, batched DHT routing,
/// pipelined waves, `u64` payloads hard-wired.
fn pr4_baseline() -> Vec<ThroughputPoint> {
    let frozen = |processes, requests, rounds, wall_ms, ops, rps, hops, opm, waves, psw: &[u64]| {
        ThroughputPoint {
            processes,
            shards: 1,
            threads: 1,
            middle_fingers: false,
            requests,
            rounds,
            wall_ms,
            ops_per_sec: ops,
            rounds_per_sec: rps,
            dht_hops_mean: hops,
            dht_ops_per_message_mean: opm,
            max_waves_in_flight: waves,
            per_shard_waves: psw.to_vec(),
            unmatched_dht_replies: 0,
            // The frozen baseline predates the lane-timing and latency
            // percentile columns (and tracing itself).
            lane_busy_ms: Vec::new(),
            lane_barrier_wait_ms: Vec::new(),
            p50_rounds: 0,
            p99_rounds: 0,
            p999_rounds: 0,
            trace: "off",
            trace_events: 0,
        }
    };
    vec![
        frozen(
            100,
            1000,
            273,
            6.4,
            155_575.9,
            42_472.2,
            25.40,
            1.35,
            26,
            &[66],
        ),
        frozen(
            300,
            1000,
            334,
            11.8,
            84_605.3,
            28_258.2,
            28.32,
            1.13,
            26,
            &[64],
        ),
        frozen(
            1000,
            1000,
            1621,
            26.7,
            37_457.0,
            60_717.8,
            37.98,
            1.05,
            29,
            &[128],
        ),
        frozen(
            3000,
            1000,
            1340,
            52.7,
            18_972.7,
            25_423.4,
            48.06,
            1.02,
            29,
            &[71],
        ),
    ]
}

#[derive(PartialEq)]
enum ModeFlag {
    Quick,
    Full,
    PaperSmoke,
    ShardedSmoke,
    ThreadsSweep,
    ParallelSmoke,
    Check,
    TraceSweep,
    TraceSmoke,
    TraceOut,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = ModeFlag::Quick;
    let mut seed = 42u64;
    let mut repeats: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut check_baseline: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => mode = ModeFlag::Quick,
            "--full" => mode = ModeFlag::Full,
            "--paper-smoke" => mode = ModeFlag::PaperSmoke,
            "--sharded-smoke" => mode = ModeFlag::ShardedSmoke,
            "--threads-sweep" => mode = ModeFlag::ThreadsSweep,
            "--parallel-smoke" => mode = ModeFlag::ParallelSmoke,
            "--trace-sweep" => mode = ModeFlag::TraceSweep,
            "--trace-smoke" => mode = ModeFlag::TraceSmoke,
            "--trace-out" => {
                i += 1;
                mode = ModeFlag::TraceOut;
                out = args.get(i).cloned();
            }
            "--check" => {
                i += 1;
                mode = ModeFlag::Check;
                check_baseline = args.get(i).cloned();
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(42);
            }
            "--repeats" => {
                i += 1;
                repeats = args.get(i).and_then(|s| s.parse().ok());
            }
            "--out" => {
                i += 1;
                out = args.get(i).cloned();
            }
            other => eprintln!("ignoring unknown flag {other}"),
        }
        i += 1;
    }

    if mode == ModeFlag::ShardedSmoke {
        run_sharded_smoke(seed);
        return;
    }
    if mode == ModeFlag::ParallelSmoke {
        run_parallel_smoke(seed);
        return;
    }
    if mode == ModeFlag::ThreadsSweep {
        run_pr8_sweep(seed, repeats.unwrap_or(1).max(1), out.as_deref());
        return;
    }
    if mode == ModeFlag::Check {
        let path = check_baseline.expect("--check requires a baseline JSON path");
        run_perf_check(&path, seed, repeats.unwrap_or(3).max(1), out.as_deref());
        return;
    }
    if mode == ModeFlag::TraceSweep {
        run_pr9_trace_sweep(seed, repeats.unwrap_or(1).max(1), out.as_deref());
        return;
    }
    if mode == ModeFlag::TraceSmoke {
        run_trace_smoke(seed);
        return;
    }
    if mode == ModeFlag::TraceOut {
        let path = out.expect("--trace-out requires an output path");
        run_trace_export(seed, &path);
        return;
    }

    let (mut config, mode_name, sweep_n) = match mode {
        ModeFlag::Quick => (ThroughputConfig::quick(seed), "quick", 1000),
        ModeFlag::Full => (ThroughputConfig::full(seed), "full", 3000),
        ModeFlag::PaperSmoke => (ThroughputConfig::paper_smoke(seed), "paper-smoke", 0),
        ModeFlag::ShardedSmoke
        | ModeFlag::ParallelSmoke
        | ModeFlag::ThreadsSweep
        | ModeFlag::Check
        | ModeFlag::TraceSweep
        | ModeFlag::TraceSmoke
        | ModeFlag::TraceOut => unreachable!("handled above"),
    };
    if let Some(r) = repeats {
        config.repeats = r.max(1);
    }
    println!("Skueue throughput harness — mode: {mode_name}, seed: {seed}");
    let current = run_throughput(&config);
    print_throughput("fig2 throughput (queue, insert ratio 0.5)", &current);

    if mode == ModeFlag::PaperSmoke {
        // The paper-scale canary: completing at all within the CI time
        // budget is the check; print the point and exit without a report.
        let p = &current[0];
        println!(
            "\npaper-scale smoke point done: n={} requests={} in {:.1} ms ({:.1} ops/sec, {} waves in flight)",
            p.processes, p.requests, p.wall_ms, p.ops_per_sec, p.max_waves_in_flight
        );
        assert!(
            p.max_waves_in_flight >= 2,
            "wave pipelining regressed: no overlapping waves observed"
        );
        return;
    }

    // The shard sweep: the same fig2 point at S ∈ {1, 2, 4, 8}.
    let sweep = run_shard_sweep(
        sweep_n,
        SHARD_SWEEP,
        config.generation_rounds,
        config.repeats,
        seed,
    );
    print_throughput(
        &format!("shard sweep (fig2 point at n = {sweep_n})"),
        &sweep,
    );

    let baseline = pr4_baseline();
    print_throughput(
        "pre-PR-5 baseline (BENCH_pr4.json current; u64 payloads hard-wired)",
        &baseline,
    );

    // The baseline was measured with seed 42; a different seed runs a
    // different schedule, so comparing ops/sec against it would be
    // meaningless — report null instead.
    let (speedup_s1, speedup_s4) = if seed == BASELINE_SEED {
        (
            speedup_at(3000, 1, &baseline, &current),
            speedup_at(3000, 4, &baseline, &sweep),
        )
    } else {
        println!("\nseed {seed} != baseline seed {BASELINE_SEED}: speedup not comparable");
        (None, None)
    };
    if let Some(s) = speedup_s1 {
        println!("\nspeedup at n=3000, S=1 vs pre-PR-5: {s:.2}x (ops/sec)");
    }
    if let Some(s) = speedup_s4 {
        println!("speedup at n=3000, S=4 vs pre-PR-5: {s:.2}x (ops/sec)");
    }

    let json = report_json(
        seed,
        mode_name,
        config.repeats,
        sweep_n,
        &baseline,
        &current,
        &sweep,
        speedup_s1,
        speedup_s4,
    );
    match out {
        Some(path) => {
            std::fs::write(&path, &json).expect("write report file");
            println!("wrote {path}");
        }
        None => println!("\n{json}"),
    }
}

/// CI canary for the sharded protocol: the paper-scale fig2 point over four
/// anchor shards with the cross-shard verifier enabled.  Panics (fails the
/// CI step) on an inconsistent history or if the waves did not actually
/// spread over the shards.
fn run_sharded_smoke(seed: u64) {
    println!("Skueue sharded smoke — fig2 n=10000, shards=4, verifier ON, seed {seed}");
    let start = std::time::Instant::now();
    let result = run_sharded_fig2(10_000, 4, seed);
    let wall = start.elapsed().as_secs_f64();
    println!(
        "done in {:.1} s: {} requests, {} empty removes, waves per shard {:?}, unmatched replies {}",
        wall,
        result.requests,
        result.empty_removes,
        result.per_shard_waves,
        result.unmatched_dht_replies
    );
    assert!(
        result.consistent,
        "cross-shard verifier rejected the sharded fig2 history"
    );
    let assigning = result.per_shard_waves.iter().filter(|&&w| w > 0).count();
    assert!(
        assigning >= 2,
        "expected ≥ 2 shards to assign waves, got {:?}",
        result.per_shard_waves
    );
    println!("sharded smoke OK: {assigning}/4 shards assigned waves, history verified");
}

/// CI canary for the *parallel execution backend*: the paper-scale fig2
/// point over four anchor shards on four worker threads, verifier ON.
/// Panics (fails the CI step) on an inconsistent history or when the lanes
/// did not actually run on ≥ 2 distinct worker threads.
fn run_parallel_smoke(seed: u64) {
    println!("Skueue parallel smoke — fig2 n=10000, shards=4, threads=4, verifier ON, seed {seed}");
    let start = std::time::Instant::now();
    let result = run_fixed_rate(
        ScenarioParams::fixed_rate(10_000, Mode::Queue, 0.5)
            .with_seed(seed)
            .with_shards(4)
            .with_threads(4),
    );
    let wall = start.elapsed().as_secs_f64();
    println!(
        "done in {:.1} s: {} requests on {} threads, {} distinct lane threads, waves per shard {:?}",
        wall, result.requests, result.threads, result.distinct_lane_threads, result.per_shard_waves
    );
    assert_eq!(result.threads, 4, "parallel backend was not enabled");
    assert!(
        result.distinct_lane_threads >= 2,
        "lanes did not spread over worker threads"
    );
    assert!(
        result.consistent,
        "cross-shard verifier rejected the parallel backend's history"
    );
    let busy: Vec<String> = result
        .lane_busy_ns
        .iter()
        .map(|ns| format!("{:.0}ms", *ns as f64 / 1e6))
        .collect();
    println!(
        "parallel smoke OK: history verified, lane busy times [{}]",
        busy.join(", ")
    );
}

/// The PR-8 parallel-backend report (`--threads-sweep`): the fig2 n = 3000
/// S = 8 point at threads ∈ {1, 2, 4, 8}, a heavy-load open-loop row
/// (1000 requests/round × 100 rounds ≥ 10⁵ requests) on both backends, and
/// matched nearest-middle-finger off/on rows.  Written as BENCH_pr8.json by
/// `scripts/bench_snapshot.sh`.
fn run_pr8_sweep(seed: u64, repeats: usize, out: Option<&str>) {
    const SWEEP_N: usize = 3000;
    const SWEEP_SHARDS: usize = 8;
    const THREADS: [usize; 4] = [1, 2, 4, 8];
    const GENERATION_ROUNDS: u64 = 100;

    let host_cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!(
        "Skueue PR-8 report — fig2 n={SWEEP_N} S={SWEEP_SHARDS}, threads {THREADS:?}, \
         best of {repeats}, seed {seed}, host cores {host_cores}"
    );

    let thread_sweep = run_thread_sweep(
        SWEEP_N,
        SWEEP_SHARDS,
        &THREADS,
        GENERATION_ROUNDS,
        repeats,
        seed,
    );
    print_throughput(
        &format!("thread sweep (fig2 n = {SWEEP_N}, S = {SWEEP_SHARDS})"),
        &thread_sweep,
    );

    let heavy: Vec<ThroughputPoint> = [1usize, 4]
        .iter()
        .map(|&t| measure_point(&PointSpec::heavy(SWEEP_N, seed, SWEEP_SHARDS).with_threads(t)))
        .collect();
    print_throughput(
        &format!("heavy load (open loop, 1000 requests/round, n = {SWEEP_N}, S = {SWEEP_SHARDS})"),
        &heavy,
    );
    for p in &heavy {
        assert!(
            p.requests >= 100_000,
            "heavy row must complete ≥ 10⁵ requests, got {}",
            p.requests
        );
    }

    let fingers: Vec<ThroughputPoint> = [false, true]
        .iter()
        .map(|&on| {
            measure_point(
                &PointSpec::fig2(SWEEP_N, GENERATION_ROUNDS, repeats, seed, SWEEP_SHARDS)
                    .with_middle_fingers(on),
            )
        })
        .collect();
    print_throughput(
        "nearest-middle finger (matched rows, off vs on; compare dht_hops_mean)",
        &fingers,
    );

    let speedup_t4 = {
        let t1 = thread_sweep.iter().find(|p| p.threads == 1);
        let t4 = thread_sweep.iter().find(|p| p.threads == 4);
        match (t1, t4) {
            (Some(a), Some(b)) if a.ops_per_sec > 0.0 => Some(b.ops_per_sec / a.ops_per_sec),
            _ => None,
        }
    };
    let hop_cut = if fingers[0].dht_hops_mean > 0.0 {
        Some(fingers[1].dht_hops_mean / fingers[0].dht_hops_mean)
    } else {
        None
    };
    if let Some(s) = speedup_t4 {
        println!(
            "\nspeedup at threads=4 vs threads=1: {s:.2}x (ops/sec; host has {host_cores} core(s))"
        );
    }
    if let Some(h) = hop_cut {
        println!("finger hop ratio (on/off dht_hops_mean): {h:.2}");
    }

    let fmt = |s: Option<f64>| {
        s.map(|v| format!("{v:.3}"))
            .unwrap_or_else(|| "null".to_string())
    };
    let json = format!(
        "{{\n  \"pr\": 8,\n  \"workload\": \"fig2 point: queue, insert_ratio 0.5, 100 generation rounds; heavy rows at 1000 requests/round\",\n  \"seed\": {seed},\n  \"repeats\": {repeats},\n  \"host_cores\": {host_cores},\n  \"note\": \"the two backends produce byte-identical histories; wall-clock speedup requires >1 physical core — on a single-core host the thread rows measure barrier overhead, not speedup\",\n  \"thread_sweep\": {},\n  \"heavy_load\": {},\n  \"middle_fingers\": {},\n  \"speedup_ops_per_sec_threads4_vs_1\": {},\n  \"finger_hop_ratio_on_vs_off\": {}\n}}\n",
        points_to_json(&thread_sweep, "  "),
        points_to_json(&heavy, "  "),
        points_to_json(&fingers, "  "),
        fmt(speedup_t4),
        fmt(hop_cut),
    );
    match out {
        Some(path) => {
            std::fs::write(path, &json).expect("write PR-8 report file");
            println!("wrote {path}");
        }
        None => println!("\n{json}"),
    }
}

/// The PR-9 trace-overhead report (`--trace-sweep`): the fig2 n = 3000
/// point at every S ∈ {1, 4} × threads ∈ {1, 4} combination, once with
/// tracing off and once at `TraceLevel::Full` — matched row pairs, so the
/// off/full ops/sec ratio isolates the recording overhead.  Written as
/// BENCH_pr9.json by `scripts/bench_snapshot.sh --trace`.
fn run_pr9_trace_sweep(seed: u64, repeats: usize, out: Option<&str>) {
    const SWEEP_N: usize = 3000;
    const SHARDS: [usize; 2] = [1, 4];
    const THREADS: [usize; 2] = [1, 4];
    const GENERATION_ROUNDS: u64 = 100;

    println!(
        "Skueue PR-9 trace-overhead report — fig2 n={SWEEP_N}, S∈{SHARDS:?}, T∈{THREADS:?}, \
         trace off vs full, best of {repeats}, seed {seed}"
    );
    let rows = run_trace_sweep(SWEEP_N, &SHARDS, &THREADS, GENERATION_ROUNDS, repeats, seed);
    print_throughput(
        &format!("trace-overhead sweep (fig2 n = {SWEEP_N}, off vs full rows)"),
        &rows,
    );

    // Matched pairs come out adjacent (off, full); report full-tracing
    // overhead as wall-clock ratio off/full per combination.
    let mut overheads: Vec<(usize, usize, f64)> = Vec::new();
    for pair in rows.chunks(2) {
        let (off, full) = (&pair[0], &pair[1]);
        assert_eq!((off.trace, full.trace), ("off", "full"));
        assert_eq!(
            off.requests, full.requests,
            "tracing must not change the schedule"
        );
        if full.ops_per_sec > 0.0 {
            overheads.push((off.shards, off.threads, off.ops_per_sec / full.ops_per_sec));
        }
    }
    for &(s, t, ratio) in &overheads {
        println!("S={s} T={t}: full-tracing overhead {ratio:.3}x (off/full ops/sec)");
    }

    let overhead_json: Vec<String> = overheads
        .iter()
        .map(|(s, t, r)| {
            format!(
                "    {{\"shards\": {s}, \"threads\": {t}, \"off_over_full_ops_per_sec\": {r:.3}}}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"pr\": 9,\n  \"workload\": \"fig2 point: queue, insert_ratio 0.5, 10 requests/round, 100 generation rounds\",\n  \"seed\": {seed},\n  \"repeats\": {repeats},\n  \"note\": \"matched off/full row pairs; off rows are the measured hot path (the perf gate's configuration), full rows carry every span and hop event\",\n  \"trace_sweep\": {},\n  \"full_tracing_overhead\": [\n{}\n  ]\n}}\n",
        points_to_json(&rows, "  "),
        overhead_json.join(",\n"),
    );
    match out {
        Some(path) => {
            std::fs::write(path, &json).expect("write PR-9 report file");
            println!("wrote {path}");
        }
        None => println!("\n{json}"),
    }
}

/// CI canary for the tracing subsystem (`--trace-smoke`): the paper-scale
/// fig2 point with span tracing on.  Panics (fails the CI step) when the
/// Chrome export is not valid JSON, when a populated shard lane recorded no
/// events, or when the per-op slice count does not match the completed
/// requests.
fn run_trace_smoke(seed: u64) {
    println!("Skueue trace smoke — fig2 n=10000, shards=4, trace=spans, seed {seed}");
    let start = std::time::Instant::now();
    let artifacts = run_fixed_rate_traced(
        ScenarioParams::fixed_rate(10_000, Mode::Queue, 0.5)
            .with_generation_rounds(50)
            .with_seed(seed)
            .with_shards(4)
            .with_trace(TraceLevel::Spans)
            .without_verification(),
    );
    let wall = start.elapsed().as_secs_f64();
    let result = &artifacts.result;
    println!(
        "done in {:.1} s: {} requests, {} trace events over {} shard lanes, \
         stage p50/p99/p999 = {}/{}/{} rounds",
        wall,
        result.requests,
        result.trace_events,
        artifacts.shard_event_counts.len(),
        result.p50_rounds,
        result.p99_rounds,
        result.p999_rounds
    );
    assert!(
        validate_json(&artifacts.chrome_json),
        "chrome trace export is not valid JSON"
    );
    assert_eq!(
        artifacts.shard_event_counts.len(),
        4,
        "every shard lane must record events: {:?}",
        artifacts.shard_event_counts
    );
    for &(shard, events) in &artifacts.shard_event_counts {
        assert!(events >= 1, "shard lane {shard} recorded no events");
    }
    let slices = artifacts.chrome_json.matches("\"cat\":\"op\"").count() as u64;
    assert_eq!(
        slices, result.requests,
        "one chrome slice per completed request"
    );
    println!("trace smoke OK: valid JSON, {slices} op slices, all 4 lanes populated");
}

/// The acceptance-check export (`--trace-out <path>`): runs the fig2
/// n = 3000 point at full tracing on the single-threaded and the 4-thread
/// backend, asserts the two Chrome exports are byte-identical with one
/// per-op slice per completed request, and writes the trace to `path`
/// (load it in Perfetto or `chrome://tracing` — see OBSERVABILITY.md).
fn run_trace_export(seed: u64, path: &str) {
    const EXPORT_N: usize = 3000;
    println!("Skueue trace export — fig2 n={EXPORT_N}, shards=4, trace=full, seed {seed}");
    let base = ScenarioParams::fixed_rate(EXPORT_N, Mode::Queue, 0.5)
        .with_generation_rounds(100)
        .with_seed(seed)
        .with_shards(4)
        .with_trace(TraceLevel::Full)
        .without_verification();
    let single = run_fixed_rate_traced(base);
    let parallel = run_fixed_rate_traced(base.with_threads(4));
    assert_eq!(
        single.trace_fingerprint, parallel.trace_fingerprint,
        "merged trace logs diverged across thread counts"
    );
    assert_eq!(
        single.chrome_json, parallel.chrome_json,
        "chrome exports diverged across thread counts"
    );
    assert!(validate_json(&single.chrome_json));
    let slices = single.chrome_json.matches("\"cat\":\"op\"").count() as u64;
    assert_eq!(
        slices, single.result.requests,
        "one chrome slice per completed request"
    );
    std::fs::write(path, &single.chrome_json).expect("write chrome trace file");
    println!(
        "wrote {path}: {} events rendered, {} op slices ({} requests), byte-identical at T=1 and T=4",
        single.result.trace_events, slices, single.result.requests
    );
    println!("stage breakdown (rounds, nearest-rank):");
    for (stage, stats) in &single.result.stage_latencies {
        println!(
            "  {stage:<12} n={:<5} p50={:<5} p99={:<5} p999={:<5} max={}",
            stats.count, stats.p50, stats.p99, stats.p999, stats.max
        );
    }
}

/// The CI perf-regression gate (`--check <baseline.json>`): measures the
/// fig2 n = 3000 point at S = 1 and S = 4 (best of `repeats`) and compares
/// ops/sec against the matching `shard_sweep` rows of the frozen snapshot.
/// Exits non-zero when either point drops below [`CHECK_THRESHOLD`]× its
/// baseline.  `out` receives the fresh points as a JSON artifact either way.
fn run_perf_check(baseline_path: &str, seed: u64, repeats: usize, out: Option<&str>) {
    const CHECK_N: usize = 3000;
    const CHECK_SHARDS: [usize; 2] = [1, 4];
    const GENERATION_ROUNDS: u64 = 100;

    if seed != BASELINE_SEED {
        eprintln!(
            "warning: --check with seed {seed} != baseline seed {BASELINE_SEED}; \
             the schedules differ and the comparison is not meaningful"
        );
    }
    let json = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    println!(
        "Skueue perf gate — fig2 n={CHECK_N}, S∈{CHECK_SHARDS:?}, best of {repeats}, \
         threshold {CHECK_THRESHOLD}x vs {baseline_path}"
    );

    let mut measured =
        skueue_bench::run_shard_sweep(CHECK_N, &CHECK_SHARDS, GENERATION_ROUNDS, repeats, seed);
    print_throughput("measured (current tree)", &measured);

    let baseline_for = |shards: usize| -> f64 {
        extract_ops_per_sec(&json, "shard_sweep", CHECK_N, shards).unwrap_or_else(|| {
            panic!("baseline {baseline_path} has no shard_sweep row for n={CHECK_N} S={shards}")
        })
    };

    // A point below threshold gets up to two full re-measures before the
    // gate fails: best-of-N only filters noise *within* its window, and a
    // multi-second background burst on a shared runner can blanket all N
    // repeats at once.  A genuine code regression fails every pass; noise
    // bursts rarely cover three disjoint measurement windows.
    for point in &mut measured {
        let baseline_ops = baseline_for(point.shards);
        for attempt in 1..=2 {
            if point.ops_per_sec / baseline_ops >= CHECK_THRESHOLD {
                break;
            }
            println!(
                "n={} S={} measured {:.1} ops/sec (< {CHECK_THRESHOLD}x of {:.1}); \
                 re-measuring ({attempt}/2)",
                point.processes, point.shards, point.ops_per_sec, baseline_ops
            );
            let again = skueue_bench::measure_fig2_point(
                CHECK_N,
                GENERATION_ROUNDS,
                repeats,
                seed,
                point.shards,
            );
            if again.ops_per_sec > point.ops_per_sec {
                *point = again;
            }
        }
    }

    let mut failures = Vec::new();
    let mut ratios = Vec::new();
    for point in &measured {
        let baseline_ops = baseline_for(point.shards);
        let ratio = point.ops_per_sec / baseline_ops;
        ratios.push((point.shards, baseline_ops, ratio));
        println!(
            "n={} S={}: {:.1} ops/sec vs baseline {:.1} → {:.2}x",
            point.processes, point.shards, point.ops_per_sec, baseline_ops, ratio
        );
        if ratio < CHECK_THRESHOLD {
            failures.push(format!(
                "n={} S={} regressed to {:.2}x of baseline ({:.1} vs {:.1} ops/sec)",
                point.processes, point.shards, ratio, point.ops_per_sec, baseline_ops
            ));
        }
    }

    if let Some(path) = out {
        let ratio_json: Vec<String> = ratios
            .iter()
            .map(|(s, b, r)| {
                format!(
                    "    {{\"shards\": {s}, \"baseline_ops_per_sec\": {b:.1}, \"ratio\": {r:.3}}}"
                )
            })
            .collect();
        let report = format!(
            "{{\n  \"gate\": \"fig2 n={CHECK_N} perf regression check\",\n  \"baseline\": \"{baseline_path}\",\n  \"threshold\": {CHECK_THRESHOLD},\n  \"seed\": {seed},\n  \"repeats\": {repeats},\n  \"measured\": {},\n  \"ratios\": [\n{}\n  ],\n  \"passed\": {}\n}}\n",
            points_to_json(&measured, "  "),
            ratio_json.join(",\n"),
            failures.is_empty(),
        );
        std::fs::write(path, report).expect("write perf-check artifact");
        println!("wrote {path}");
    }

    if failures.is_empty() {
        println!("perf gate OK: both points ≥ {CHECK_THRESHOLD}x baseline");
    } else {
        for f in &failures {
            eprintln!("PERF REGRESSION: {f}");
        }
        std::process::exit(1);
    }
}

/// Pulls `ops_per_sec` out of the named section's row matching
/// `(processes, shards)` in one of this repo's hand-rolled snapshot JSONs.
/// String scanning on purpose: the offline serde stub cannot deserialise,
/// and the snapshot format is produced by this very binary.
fn extract_ops_per_sec(json: &str, section: &str, processes: usize, shards: usize) -> Option<f64> {
    let start = json.find(&format!("\"{section}\""))?;
    let body = &json[start..];
    // The section's own closing bracket sits on its own line at indent ≤ 2;
    // a plain `]` search would stop at a row's nested `per_shard_waves`
    // array instead.
    let end = body
        .find("\n  ]")
        .or_else(|| body.find("\n]"))
        .unwrap_or(body.len());
    let needle = format!("\"processes\": {processes}, \"shards\": {shards},");
    for line in body[..end].lines() {
        if line.contains(&needle) {
            let key = "\"ops_per_sec\": ";
            let at = line.find(key)? + key.len();
            let rest = &line[at..];
            let stop = rest.find(',').unwrap_or(rest.len());
            return rest[..stop].trim().parse().ok();
        }
    }
    None
}

/// Ops/sec ratio of a (process-count, shard-count) point against the
/// unsharded baseline row at the same process count.
fn speedup_at(
    n: usize,
    shards: usize,
    baseline: &[ThroughputPoint],
    current: &[ThroughputPoint],
) -> Option<f64> {
    let b = baseline.iter().find(|p| p.processes == n)?;
    let c = current
        .iter()
        .find(|p| p.processes == n && p.shards == shards)?;
    if b.ops_per_sec > 0.0 {
        Some(c.ops_per_sec / b.ops_per_sec)
    } else {
        None
    }
}

#[allow(clippy::too_many_arguments)]
fn report_json(
    seed: u64,
    mode: &str,
    repeats: usize,
    sweep_n: usize,
    baseline: &[ThroughputPoint],
    current: &[ThroughputPoint],
    sweep: &[ThroughputPoint],
    speedup_s1: Option<f64>,
    speedup_s4: Option<f64>,
) -> String {
    let fmt = |s: Option<f64>| {
        s.map(|v| format!("{v:.2}"))
            .unwrap_or_else(|| "null".to_string())
    };
    format!(
        "{{\n  \"pr\": 5,\n  \"workload\": \"fig2 point: queue, insert_ratio 0.5, 10 requests/round, 100 generation rounds\",\n  \"seed\": {seed},\n  \"mode\": \"{mode}\",\n  \"repeats\": {repeats},\n  \"shard_sweep_processes\": {sweep_n},\n  \"baseline\": {},\n  \"current\": {},\n  \"shard_sweep\": {},\n  \"speedup_ops_per_sec_n3000_s1\": {},\n  \"speedup_ops_per_sec_n3000_s4\": {}\n}}\n",
        points_to_json(baseline, "  "),
        points_to_json(current, "  "),
        points_to_json(sweep, "  "),
        fmt(speedup_s1),
        fmt(speedup_s4),
    )
}
