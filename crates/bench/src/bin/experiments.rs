//! Regenerates every figure of the Skueue paper (plus the derived
//! experiments of DESIGN.md) and prints the series as tables.
//!
//! Usage:
//!
//! ```text
//! cargo run -p skueue-bench --release --bin experiments -- [EXPERIMENT] [FLAGS]
//!
//! EXPERIMENT: all | fig2 | fig3 | fig4 | scaling | batchsize | churn |
//!             fairness | payloads | ablation-batching | ablation-combining
//! FLAGS:      --smoke        tiny sweep (seconds; used by CI)
//!             --paper-scale  the paper's full parameter grid (hours)
//!             --seed <u64>   workload/simulation seed (default 42)
//! ```

use skueue_bench::{fig2_sweep, fig3_sweep, fig4_sweep, print_series, SweepConfig};
use skueue_core::Mode;
use skueue_workloads::{
    run_central_baseline, run_churn_scenario, run_fairness_scenario, run_per_node_rate,
    run_string_payload_fig2, ScenarioParams,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = "all".to_string();
    let mut config = SweepConfig::Default;
    let mut seed = 42u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => config = SweepConfig::Smoke,
            "--paper-scale" => config = SweepConfig::PaperScale,
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(42);
            }
            name if !name.starts_with("--") => experiment = name.to_string(),
            other => eprintln!("ignoring unknown flag {other}"),
        }
        i += 1;
    }

    let run_all = experiment == "all";
    println!("Skueue experiment harness — scale: {config:?}, seed: {seed}");

    if run_all || experiment == "fig2" {
        let points = fig2_sweep(config, seed);
        print_series(
            "Figure 2: avg rounds per request on the QUEUE vs n (curves: enqueue probability)",
            "n",
            &points,
        );
    }
    if run_all || experiment == "fig3" {
        let points = fig3_sweep(config, seed);
        print_series(
            "Figure 3: avg rounds per request on the STACK vs n (curves: push probability)",
            "n",
            &points,
        );
    }
    if run_all || experiment == "fig4" {
        let points = fig4_sweep(config, seed);
        print_series(
            "Figure 4: avg rounds per request vs per-node request probability (queue vs stack)",
            "p",
            &points,
        );
    }
    if run_all || experiment == "scaling" {
        scaling(config, seed);
    }
    if run_all || experiment == "batchsize" {
        batch_size(config, seed);
    }
    if run_all || experiment == "churn" {
        churn(config, seed);
    }
    if run_all || experiment == "fairness" {
        fairness(config, seed);
    }
    if run_all || experiment == "payloads" {
        payloads(config, seed);
    }
    if run_all || experiment == "ablation-batching" {
        ablation_batching(config, seed);
    }
    if run_all || experiment == "ablation-combining" {
        ablation_combining(config, seed);
    }
}

/// E4: per-request rounds and DHT hops as a function of n (Theorem 15 /
/// Lemma 3 shape check).
fn scaling(config: SweepConfig, seed: u64) {
    println!("\n=== E4: scaling of rounds-per-request and DHT hops with n ===");
    println!(
        "{:>10} {:>14} {:>12} {:>14}",
        "n", "avg rounds", "mean hops", "max batch"
    );
    for &n in &config.process_counts() {
        let params = ScenarioParams::fixed_rate(n, Mode::Queue, 0.5)
            .with_generation_rounds(config.generation_rounds().min(100))
            .with_seed(seed);
        let r = skueue_workloads::run_fixed_rate(params);
        println!(
            "{:>10} {:>14.2} {:>12.2} {:>14}",
            n, r.avg_rounds_per_request, r.mean_dht_hops, r.max_batch_size
        );
    }
}

/// E5: batch sizes under one request per node per round (Theorems 18 and 20).
fn batch_size(config: SweepConfig, seed: u64) {
    println!("\n=== E5: batch sizes at one request per node per round ===");
    println!(
        "{:>8} {:>10} {:>16} {:>16}",
        "mode", "n", "mean batch size", "max batch size"
    );
    let n = config.fig4_processes().min(2000);
    for mode in [Mode::Queue, Mode::Stack] {
        let params = ScenarioParams::per_node_rate(n, mode, 1.0)
            .with_generation_rounds(config.generation_rounds().min(50))
            .with_seed(seed);
        let r = run_per_node_rate(params);
        println!(
            "{:>8} {:>10} {:>16.2} {:>16}",
            format!("{mode:?}"),
            n,
            r.mean_batch_size,
            r.max_batch_size
        );
    }
}

/// E6: update-phase duration under bulk joins/leaves (Theorem 17).
fn churn(config: SweepConfig, seed: u64) {
    println!("\n=== E6: churn — bulk joins and leaves ===");
    println!(
        "{:>10} {:>8} {:>8} {:>12} {:>12} {:>12}",
        "initial n", "joins", "leaves", "join rounds", "leave rounds", "consistent"
    );
    let sizes: Vec<(usize, usize, usize)> = match config {
        SweepConfig::Smoke => vec![(6, 2, 1)],
        SweepConfig::Default => vec![(10, 5, 3), (20, 10, 5), (40, 20, 10)],
        SweepConfig::PaperScale => vec![(100, 50, 25), (200, 100, 50)],
    };
    for (n, joins, leaves) in sizes {
        let r = run_churn_scenario(n, joins, leaves, seed);
        println!(
            "{:>10} {:>8} {:>8} {:>12} {:>12} {:>12}",
            r.initial_processes, r.joins, r.leaves, r.join_rounds, r.leave_rounds, r.consistent
        );
    }
}

/// E7: fairness of the element distribution (Corollary 19).
fn fairness(config: SweepConfig, seed: u64) {
    println!("\n=== E7: fairness of the stored-element distribution ===");
    println!(
        "{:>10} {:>10} {:>14} {:>10}",
        "n", "elements", "max/mean", "cv"
    );
    let cases: Vec<(usize, u64)> = match config {
        SweepConfig::Smoke => vec![(10, 300)],
        SweepConfig::Default => vec![(20, 2_000), (50, 5_000), (100, 10_000)],
        SweepConfig::PaperScale => vec![(1_000, 100_000)],
    };
    for (n, elements) in cases {
        let r = run_fairness_scenario(n, elements, seed);
        println!(
            "{:>10} {:>10} {:>14.2} {:>10.3}",
            n, r.elements, r.max_over_mean, r.cv
        );
    }
}

/// Generic payloads: a `Skueue<String>` job queue over 4 anchor shards,
/// verified end to end by `check_queue_sharded` (whose payload round-trip
/// rule proves every dequeued job string is byte-identical to its enqueue).
/// Exits non-zero on an inconsistent history, so this doubles as the CI
/// canary for the non-`u64` instantiation.
fn payloads(config: SweepConfig, seed: u64) {
    println!("\n=== Generic payloads: Skueue<String> job queue over 4 shards ===");
    let (n, shards) = match config {
        SweepConfig::Smoke => (32, 4),
        SweepConfig::Default => (1_000, 4),
        SweepConfig::PaperScale => (10_000, 4),
    };
    let r = run_string_payload_fig2(n, shards, seed);
    println!(
        "n={} shards={} requests={} empty={} avg rounds={:.2} consistent={}",
        r.processes, r.shards, r.requests, r.empty_removes, r.avg_rounds_per_request, r.consistent
    );
    assert!(
        r.consistent,
        "cross-shard checker rejected the String-payload history"
    );
    println!("String payloads verified over {} shards ✓", r.shards);
}

/// E8: Skueue vs the unbatched central-server baseline under increasing load.
fn ablation_batching(config: SweepConfig, seed: u64) {
    println!("\n=== E8 (ablation): batched Skueue vs unbatched central server ===");
    println!(
        "{:>8} {:>10} {:>22} {:>22}",
        "p", "n", "skueue avg rounds", "central avg rounds"
    );
    let n = match config {
        SweepConfig::Smoke => 30,
        _ => 500,
    };
    let rounds = config.generation_rounds().min(50);
    for &p in &config.request_probabilities() {
        let skueue = run_per_node_rate(
            ScenarioParams::per_node_rate(n, Mode::Queue, p)
                .with_generation_rounds(rounds)
                .with_seed(seed),
        );
        // The central server handles 10 requests per round — generous for a
        // single machine, yet it saturates once n·p exceeds it.
        let central = run_central_baseline(n, p, 0.5, rounds, 10, seed);
        println!(
            "{:>8} {:>10} {:>22.2} {:>22.2}",
            p, n, skueue.avg_rounds_per_request, central.avg_rounds_per_request
        );
    }
}

/// E9: the effect of the stack's local combining — how many requests are
/// resolved locally (and therefore instantly) as the per-node request rate
/// grows.  This is the mechanism behind the Figure 4 observation that "the
/// stack's performance gets even better if the rate at which requests are
/// generated increases".
///
/// Note: the Section VI protocol relies on local combining to keep a node's
/// residual batch in the `POP^a · PUSH^b` form; running the stack with the
/// optimisation disabled is outside the paper's protocol and is therefore not
/// measured as a separate configuration (see DESIGN.md).
fn ablation_combining(config: SweepConfig, seed: u64) {
    println!("\n=== E9 (ablation): effect of the stack's local combining ===");
    println!(
        "{:>8} {:>10} {:>16} {:>18} {:>20}",
        "p", "n", "avg rounds", "combined requests", "combined fraction"
    );
    let n = match config {
        SweepConfig::Smoke => 30,
        _ => 500,
    };
    let rounds = config.generation_rounds().min(50);
    for &p in &[0.25, 0.5, 1.0] {
        let on = run_per_node_rate(
            ScenarioParams::per_node_rate(n, Mode::Stack, p)
                .with_generation_rounds(rounds)
                .with_seed(seed),
        );
        let fraction = if on.requests > 0 {
            on.locally_combined as f64 / on.requests as f64
        } else {
            0.0
        };
        println!(
            "{:>8} {:>10} {:>16.2} {:>18} {:>20.2}",
            p, n, on.avg_rounds_per_request, on.locally_combined, fraction
        );
    }
}
