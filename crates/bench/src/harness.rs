//! Sweep definitions and result formatting shared by the `experiments`
//! binary and the Criterion benches.

use serde::{Deserialize, Serialize};
use skueue_core::Mode;
use skueue_workloads::{run_fixed_rate, run_per_node_rate, ScenarioParams, ScenarioResult};

/// Scale of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepConfig {
    /// Laptop-friendly default (minutes).
    Default,
    /// Quick smoke test (seconds) — used by integration tests.
    Smoke,
    /// The paper's full scale (hours).
    PaperScale,
}

impl SweepConfig {
    /// Process counts for the Figure 2/3 x-axis.
    pub fn process_counts(self) -> Vec<usize> {
        match self {
            SweepConfig::Smoke => vec![20, 60],
            SweepConfig::Default => vec![100, 300, 1000, 3000, 10_000],
            SweepConfig::PaperScale => vec![10_000, 25_000, 50_000, 75_000, 100_000],
        }
    }

    /// Rounds of request generation.
    pub fn generation_rounds(self) -> u64 {
        match self {
            SweepConfig::Smoke => 20,
            SweepConfig::Default => 100,
            SweepConfig::PaperScale => 1000,
        }
    }

    /// Insert-probability curves of Figures 2 and 3.
    pub fn insert_ratios(self) -> Vec<f64> {
        match self {
            SweepConfig::Smoke => vec![0.5, 1.0],
            _ => vec![0.0, 0.25, 0.5, 0.75, 1.0],
        }
    }

    /// Per-node request probabilities of Figure 4.
    pub fn request_probabilities(self) -> Vec<f64> {
        match self {
            SweepConfig::Smoke => vec![0.1, 0.5],
            _ => vec![0.05, 0.1, 0.15, 0.2, 0.25, 0.5, 1.0],
        }
    }

    /// Number of processes used for Figure 4.
    pub fn fig4_processes(self) -> usize {
        match self {
            SweepConfig::Smoke => 50,
            SweepConfig::Default => 2000,
            SweepConfig::PaperScale => 10_000,
        }
    }

    /// Whether per-point consistency verification is enabled (always on for
    /// the smaller scales; off for the paper scale to keep memory bounded).
    pub fn verify(self) -> bool {
        !matches!(self, SweepConfig::PaperScale)
    }
}

/// One sweep point, annotated with the curve it belongs to.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentPoint {
    /// Curve label (e.g. the insert ratio or the request probability).
    pub curve: String,
    /// X coordinate (number of processes or request probability).
    pub x: f64,
    /// The measured scenario result.
    pub result: ScenarioResult,
}

/// Runs the Figure 2 sweep (queue, fixed-rate workload).
pub fn fig2_sweep(config: SweepConfig, seed: u64) -> Vec<ExperimentPoint> {
    fixed_rate_sweep(Mode::Queue, config, seed)
}

/// Runs the Figure 3 sweep (stack, fixed-rate workload).
pub fn fig3_sweep(config: SweepConfig, seed: u64) -> Vec<ExperimentPoint> {
    fixed_rate_sweep(Mode::Stack, config, seed)
}

fn fixed_rate_sweep(mode: Mode, config: SweepConfig, seed: u64) -> Vec<ExperimentPoint> {
    let mut points = Vec::new();
    for &ratio in &config.insert_ratios() {
        for &n in &config.process_counts() {
            let mut params = ScenarioParams::fixed_rate(n, mode, ratio)
                .with_generation_rounds(config.generation_rounds())
                .with_seed(seed);
            if !config.verify() {
                params = params.without_verification();
            }
            let result = run_fixed_rate(params);
            points.push(ExperimentPoint {
                curve: format!("insert_ratio={ratio}"),
                x: n as f64,
                result,
            });
        }
    }
    points
}

/// Runs the Figure 4 sweep (queue vs stack under increasing per-node load).
pub fn fig4_sweep(config: SweepConfig, seed: u64) -> Vec<ExperimentPoint> {
    let mut points = Vec::new();
    for mode in [Mode::Queue, Mode::Stack] {
        for &p in &config.request_probabilities() {
            let mut params = ScenarioParams::per_node_rate(config.fig4_processes(), mode, p)
                .with_generation_rounds(config.generation_rounds())
                .with_seed(seed);
            if !config.verify() {
                params = params.without_verification();
            }
            let result = run_per_node_rate(params);
            points.push(ExperimentPoint {
                curve: format!("{mode:?}"),
                x: p,
                result,
            });
        }
    }
    points
}

/// Prints a sweep as a fixed-width table (one row per point), mirroring the
/// series of the corresponding paper figure.
pub fn print_series(title: &str, x_label: &str, points: &[ExperimentPoint]) {
    println!("\n=== {title} ===");
    println!(
        "{:<24} {:>10} {:>10} {:>14} {:>12} {:>12} {:>10}",
        "curve", x_label, "requests", "avg rounds", "max rounds", "batch size", "consistent"
    );
    for p in points {
        println!(
            "{:<24} {:>10} {:>10} {:>14.2} {:>12} {:>12.2} {:>10}",
            p.curve,
            p.x,
            p.result.requests,
            p.result.avg_rounds_per_request,
            p.result.max_rounds_per_request,
            p.result.mean_batch_size,
            p.result.consistent
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_configs_are_small() {
        let c = SweepConfig::Smoke;
        assert!(c.process_counts().iter().all(|&n| n <= 100));
        assert!(c.generation_rounds() <= 50);
        assert!(c.verify());
        assert!(!SweepConfig::PaperScale.verify());
        assert!(SweepConfig::Default.process_counts().len() >= 4);
    }

    #[test]
    fn fig2_smoke_sweep_runs_and_scales_logarithmically() {
        let points = fig2_sweep(SweepConfig::Smoke, 3);
        assert_eq!(points.len(), 4); // 2 ratios × 2 sizes
        assert!(points.iter().all(|p| p.result.consistent));
        // Larger systems must not be more than ~4x slower per request than
        // the small ones at this scale (logarithmic growth, Theorem 15).
        let small: f64 = points
            .iter()
            .filter(|p| p.x < 50.0)
            .map(|p| p.result.avg_rounds_per_request)
            .fold(0.0, f64::max);
        let large: f64 = points
            .iter()
            .filter(|p| p.x > 50.0)
            .map(|p| p.result.avg_rounds_per_request)
            .fold(0.0, f64::max);
        assert!(large < small * 4.0, "small={small}, large={large}");
    }

    #[test]
    fn fig4_smoke_sweep_runs() {
        let points = fig4_sweep(SweepConfig::Smoke, 5);
        assert_eq!(points.len(), 4); // 2 modes × 2 probabilities
        assert!(points.iter().all(|p| p.result.consistent));
    }

    #[test]
    fn print_series_does_not_panic() {
        let points = fig2_sweep(SweepConfig::Smoke, 1);
        print_series("smoke", "n", &points);
    }
}
