//! Ready-to-run experiment scenarios.
//!
//! Each function runs one *data point* of a paper figure (or of one of the
//! derived experiments in DESIGN.md) and returns a serialisable result
//! record.  The experiment binary in `skueue-bench` sweeps these over the
//! parameter grids of the figures and prints the same series the paper plots.

use crate::generator::{FixedRateGenerator, PerNodeRateGenerator};
use serde::{Deserialize, Serialize};
use skueue_core::{Mode, Payload, SkueueCluster, TraceLevel};
use skueue_sim::ids::ProcessId;
use skueue_verify::{check_queue, check_queue_sharded, check_stack};

/// Parameters of a fixed-rate or per-node-rate scenario run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScenarioParams {
    /// Number of processes.
    pub processes: usize,
    /// Queue or stack.
    pub mode: Mode,
    /// Probability that a generated request is an insert.
    pub insert_ratio: f64,
    /// Rounds during which requests are generated.
    pub generation_rounds: u64,
    /// Fixed-rate workload: requests per round.  Per-node workload: ignored.
    pub requests_per_round: u64,
    /// Per-node workload: per-round request probability of each process.
    pub request_probability: f64,
    /// RNG seed (workload and simulation).
    pub seed: u64,
    /// Round budget for draining after generation stops.
    pub drain_budget: u64,
    /// Verify sequential consistency of the resulting history.
    pub verify: bool,
    /// Number of anchor shards (1 = the unsharded protocol; `> 1` verifies
    /// with the cross-shard checker against the merged order).
    pub shards: usize,
    /// Worker threads of the parallel execution backend (1 = the
    /// single-threaded backend; the two produce byte-identical histories,
    /// so this is purely a wall-clock knob).
    pub threads: usize,
    /// Enables the nearest-middle routing finger (default off; changes hop
    /// counts and therefore schedules — see `SkueueBuilder::middle_fingers`).
    pub middle_fingers: bool,
    /// Per-op lifecycle tracing level (default [`TraceLevel::Off`]; tracing
    /// is observation-only — it never changes the schedule).
    pub trace_level: TraceLevel,
}

impl ScenarioParams {
    /// Defaults mirroring the paper's setup at a reduced scale (see
    /// EXPERIMENTS.md): 10 requests/round, insert ratio 0.5.
    pub fn fixed_rate(processes: usize, mode: Mode, insert_ratio: f64) -> Self {
        ScenarioParams {
            processes,
            mode,
            insert_ratio,
            generation_rounds: 200,
            requests_per_round: 10,
            request_probability: 0.0,
            seed: 0x5EED,
            drain_budget: 50_000,
            verify: true,
            shards: 1,
            threads: 1,
            middle_fingers: false,
            trace_level: TraceLevel::Off,
        }
    }

    /// Defaults for the Figure 4 workload.
    pub fn per_node_rate(processes: usize, mode: Mode, request_probability: f64) -> Self {
        ScenarioParams {
            processes,
            mode,
            insert_ratio: 0.5,
            generation_rounds: 100,
            requests_per_round: 0,
            request_probability,
            seed: 0x5EED,
            drain_budget: 50_000,
            verify: true,
            shards: 1,
            threads: 1,
            middle_fingers: false,
            trace_level: TraceLevel::Off,
        }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the generation window.
    pub fn with_generation_rounds(mut self, rounds: u64) -> Self {
        self.generation_rounds = rounds;
        self
    }

    /// Disables the (potentially expensive) consistency verification.
    pub fn without_verification(mut self) -> Self {
        self.verify = false;
        self
    }

    /// Partitions the queue into `shards` anchor shards (see
    /// `SkueueBuilder::shards`).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Runs the round loop on `threads` worker threads (see
    /// `SkueueBuilder::threads`; byte-identical histories, wall-clock only).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables the nearest-middle routing finger (see
    /// `SkueueBuilder::middle_fingers`).
    pub fn with_middle_fingers(mut self, enabled: bool) -> Self {
        self.middle_fingers = enabled;
        self
    }

    /// Overrides the fixed-rate workload's requests per round (the open-loop
    /// offered load; ignored by the per-node-rate workload).
    pub fn with_requests_per_round(mut self, requests: u64) -> Self {
        self.requests_per_round = requests;
        self
    }

    /// Enables per-op lifecycle tracing (see `SkueueBuilder::trace`;
    /// observation-only, adds the stage-latency breakdown to the result).
    pub fn with_trace(mut self, level: TraceLevel) -> Self {
        self.trace_level = level;
        self
    }

    fn build_cluster<T: Payload>(&self) -> SkueueCluster<T> {
        SkueueCluster::builder()
            .processes(self.processes)
            .mode(self.mode)
            .seed(self.seed)
            .shards(self.shards)
            .threads(self.threads)
            .middle_fingers(self.middle_fingers)
            .trace(self.trace_level)
            .build()
            .expect("scenario parameters describe a valid cluster")
    }
}

/// Result of one scenario run — one data point of a figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Number of processes.
    pub processes: usize,
    /// Queue or stack.
    pub mode: Mode,
    /// Insert ratio used.
    pub insert_ratio: f64,
    /// Per-node request probability (0 for the fixed-rate workload).
    pub request_probability: f64,
    /// Requests issued.
    pub requests: u64,
    /// Requests that returned `⊥`.
    pub empty_removes: u64,
    /// **The paper's headline metric**: average number of rounds per request.
    pub avg_rounds_per_request: f64,
    /// Maximum rounds any single request took.
    pub max_rounds_per_request: u64,
    /// Rounds needed to drain after generation stopped.
    pub drain_rounds: u64,
    /// Mean batch size over all batches sent (Theorems 18/20).
    pub mean_batch_size: f64,
    /// Maximum batch size observed.
    pub max_batch_size: u64,
    /// Mean DHT routing hops per operation (`hops_per_op`).
    pub mean_dht_hops: f64,
    /// Mean DHT operations carried per `DhtBatch` message — the batched
    /// routing layer's coalescing factor (1.0 means no sharing).
    pub mean_dht_ops_per_message: f64,
    /// Largest number of aggregation waves any node had in flight.
    pub max_waves_in_flight: u64,
    /// Replies that raced their requester's departure.  Asserted to be zero
    /// at quiescence — a drained cluster must have matched every reply.
    pub unmatched_dht_replies: u64,
    /// Number of anchor shards the run was partitioned into.
    pub shards: usize,
    /// Aggregation waves assigned per shard anchor (indexed by shard id) —
    /// the direct view of shard imbalance; `[total]` when unsharded.
    pub per_shard_waves: Vec<u64>,
    /// Worker threads the parallel backend actually used (1 = the
    /// single-threaded backend; always capped at the lane count).
    pub threads: usize,
    /// Per-lane wall-clock time spent inside `run_round`, in nanoseconds
    /// (indexed by lane = shard id).  The spread across lanes is the lane
    /// imbalance the barrier pays for every round.
    pub lane_busy_ns: Vec<u64>,
    /// Per-lane cumulative time a lane sat idle at the round barrier while
    /// slower lanes finished (each round's wall time minus the lane's own
    /// busy time), in nanoseconds.  Parallel backend only; all zeros on the
    /// single-threaded backend.
    pub lane_barrier_wait_ns: Vec<u64>,
    /// Number of distinct OS threads the lanes last ran on (1 on the
    /// single-threaded backend; ≥ 2 proves the parallel backend actually
    /// spread lanes over workers — the CI smoke asserts this).
    pub distinct_lane_threads: usize,
    /// Whether the history passed the sequential-consistency checks
    /// (`true` when verification was skipped).  Sharded runs use the
    /// cross-shard checker (`check_queue_sharded`) against the merged
    /// `(wave, shard, local)` order.
    pub consistent: bool,
    /// Requests completed purely locally by the stack's combining.
    pub locally_combined: u64,
    /// Median request latency in rounds (nearest-rank, from the history —
    /// available with tracing off).
    pub p50_rounds: u64,
    /// 99th-percentile request latency in rounds.
    pub p99_rounds: u64,
    /// 99.9th-percentile request latency in rounds.
    pub p999_rounds: u64,
    /// Trace events recorded (0 with tracing off).
    pub trace_events: u64,
    /// Per-stage latency breakdown from the lifecycle trace, in
    /// [`skueue_core::TraceAnalysis::stage_table`] order (queue-wait,
    /// aggregation, assignment, dht-routing, reply, total); empty with
    /// tracing off.
    pub stage_latencies: Vec<(&'static str, skueue_core::StageStats)>,
}

fn finish<T: Payload>(
    cluster: SkueueCluster<T>,
    params: &ScenarioParams,
    drain_rounds: u64,
) -> ScenarioResult {
    let history = cluster.history();
    let avg = history.mean_latency();
    let max = history.max_latency();
    let batch_hist = cluster.batch_size_histogram();
    let hop_hist = cluster.dht_hop_histogram();
    let ops_per_msg_hist = cluster.dht_ops_per_message_histogram();
    let waves_hist = cluster.waves_in_flight_histogram();

    let consistent = if params.verify {
        let report = match params.mode {
            Mode::Queue if cluster.shards() > 1 => {
                check_queue_sharded(history, &cluster.shard_map())
            }
            Mode::Queue => check_queue(history),
            Mode::Stack => check_stack(history),
        };
        report.is_consistent()
    } else {
        true
    };

    let per_shard_waves = cluster.shard_wave_counts();

    // At quiescence every DHT reply must have found its requester: a non-zero
    // count here means a reply raced a departure and was silently dropped.
    assert_eq!(
        cluster.unmatched_dht_replies(),
        0,
        "unmatched DHT replies at quiescence"
    );

    // Companion invariant for the lifecycle trace: with no unmatched
    // replies, a drained cluster must also have zero orphan spans (every
    // issued op reached a completion event), and every span tree must be
    // well-formed.
    let (trace_events, stage_latencies) = if cluster.trace_level().is_off() {
        (0, Vec::new())
    } else {
        let analysis = cluster.trace_analysis();
        assert_eq!(
            analysis.orphan_count(),
            0,
            "orphan trace spans at quiescence"
        );
        if let Some(violation) = analysis.shape_violation() {
            panic!("malformed trace span: {violation}");
        }
        (
            cluster.trace_log().len() as u64,
            analysis.stage_table().to_vec(),
        )
    };

    let (p50_rounds, p99_rounds, p999_rounds) = history.latency_percentiles();

    ScenarioResult {
        processes: params.processes,
        mode: params.mode,
        insert_ratio: params.insert_ratio,
        request_probability: params.request_probability,
        requests: history.len() as u64,
        empty_removes: history.count_empty() as u64,
        avg_rounds_per_request: avg,
        max_rounds_per_request: max,
        drain_rounds,
        mean_batch_size: batch_hist.mean(),
        max_batch_size: batch_hist.max().unwrap_or(0),
        mean_dht_hops: hop_hist.mean(),
        mean_dht_ops_per_message: ops_per_msg_hist.mean(),
        max_waves_in_flight: waves_hist.max().unwrap_or(0),
        unmatched_dht_replies: cluster.unmatched_dht_replies(),
        shards: cluster.shards(),
        per_shard_waves,
        threads: cluster.parallel_threads().max(1),
        lane_busy_ns: cluster.sim_metrics().lane_busy_ns.clone(),
        lane_barrier_wait_ns: cluster.sim_metrics().lane_barrier_wait_ns.clone(),
        distinct_lane_threads: {
            let tokens = &cluster.sim_metrics().lane_thread_tokens;
            let mut distinct: Vec<u64> = tokens.clone();
            distinct.sort_unstable();
            distinct.dedup();
            distinct.len().max(1)
        },
        consistent,
        locally_combined: cluster.locally_combined(),
        p50_rounds,
        p99_rounds,
        p999_rounds,
        trace_events,
        stage_latencies,
    }
}

/// Runs one data point of the Figure 2 / Figure 3 workload: a fixed number of
/// requests per round assigned to random processes.  (The `u64`
/// instantiation of [`run_payload_fixed_rate`] — one shared loop, so the
/// generic and default paths can never drift apart.)
pub fn run_fixed_rate(params: ScenarioParams) -> ScenarioResult {
    run_payload_fixed_rate(params, |c| c)
}

/// Runs one *sharded* fig2 data point: the Figure 2 fixed-rate workload
/// (queue, insert ratio 0.5, 10 requests/round) over `shards` anchor
/// shards, verified with the cross-shard checker.  `shards = 1` is exactly
/// [`run_fixed_rate`] on the paper's configuration.
pub fn run_sharded_fig2(processes: usize, shards: usize, seed: u64) -> ScenarioResult {
    run_fixed_rate(
        ScenarioParams::fixed_rate(processes, Mode::Queue, 0.5)
            .with_seed(seed)
            .with_shards(shards),
    )
}

/// Runs one *payload-generic* fixed-rate data point: the exact Figure 2
/// schedule (same RNG draws, same per-round targets) driving a `Skueue<T>`
/// whose insert payloads come from `mk`.  The history is verified by the
/// mode-appropriate checker — including the payload round-trip check —
/// exactly like [`run_fixed_rate`]; `T = u64` with `mk = identity` is
/// bit-identical to it.
pub fn run_payload_fixed_rate<T: Payload>(
    params: ScenarioParams,
    mut mk: impl FnMut(u64) -> T,
) -> ScenarioResult {
    let (cluster, drain_rounds) = run_fixed_rate_cluster(&params, &mut mk);
    finish(cluster, &params, drain_rounds)
}

/// The shared fixed-rate driver loop: builds the cluster, generates for
/// `generation_rounds`, drains, and hands the quiescent cluster back.
fn run_fixed_rate_cluster<T: Payload>(
    params: &ScenarioParams,
    mk: &mut impl FnMut(u64) -> T,
) -> (SkueueCluster<T>, u64) {
    let mut cluster = params.build_cluster::<T>();
    let mut generator = FixedRateGenerator::new(
        params.insert_ratio,
        params.generation_rounds,
        params.seed ^ 0xA5,
    )
    .with_requests_per_round(params.requests_per_round);

    for round in 0..params.generation_rounds {
        generator
            .tick_with(&mut cluster, round, &mut *mk)
            .expect("active processes exist");
        cluster.run_round();
    }
    let drain_rounds = cluster
        .run_until_all_complete(params.drain_budget)
        .expect("requests must drain within the budget");
    (cluster, drain_rounds)
}

/// What a traced fixed-rate run leaves behind beyond the scenario result.
#[derive(Debug, Clone)]
pub struct TracedRunArtifacts {
    /// The scenario result (with the stage-latency breakdown populated).
    pub result: ScenarioResult,
    /// The deterministic Chrome trace-event export of the merged log
    /// (byte-identical across thread counts for a given seed).
    pub chrome_json: String,
    /// `(shard, events recorded)` per populated shard lane.
    pub shard_event_counts: Vec<(u32, u64)>,
    /// FNV fingerprint of the merged trace log (the determinism tests'
    /// cross-backend comparison key).
    pub trace_fingerprint: u64,
}

/// Runs one fig2 data point with lifecycle tracing enabled and returns the
/// result together with the Chrome-trace export and the merged-log
/// fingerprint.  Forces at least [`TraceLevel::Spans`] when the params left
/// tracing off — an untraced run has nothing to export.
pub fn run_fixed_rate_traced(mut params: ScenarioParams) -> TracedRunArtifacts {
    if params.trace_level.is_off() {
        params.trace_level = TraceLevel::Spans;
    }
    let (cluster, drain_rounds) = run_fixed_rate_cluster::<u64>(&params, &mut |c| c);
    let chrome_json = cluster.export_chrome_trace();
    let shard_event_counts = cluster.trace_log().shard_event_counts();
    let trace_fingerprint = cluster.trace_log().fingerprint();
    TracedRunArtifacts {
        result: finish(cluster, &params, drain_rounds),
        chrome_json,
        shard_event_counts,
        trace_fingerprint,
    }
}

/// Runs one sharded fig2 point over a **`String` payload** queue — the
/// non-trivial instantiation CI exercises end to end: every insert carries a
/// formatted job id, the run is verified with the cross-shard checker, and
/// the checker's payload round-trip rule proves each dequeue returned its
/// enqueue's exact string.
pub fn run_string_payload_fig2(processes: usize, shards: usize, seed: u64) -> ScenarioResult {
    run_payload_fixed_rate(
        ScenarioParams::fixed_rate(processes, Mode::Queue, 0.5)
            .with_seed(seed)
            .with_shards(shards),
        |counter| format!("job-{counter:08}"),
    )
}

/// Runs one data point of the Figure 4 workload: every process generates a
/// request with probability `request_probability` per round.
pub fn run_per_node_rate(params: ScenarioParams) -> ScenarioResult {
    let mut cluster = params.build_cluster::<u64>();
    let mut generator = PerNodeRateGenerator::new(
        params.request_probability,
        params.insert_ratio,
        params.generation_rounds,
        params.seed ^ 0xC3,
    );

    for round in 0..params.generation_rounds {
        generator
            .tick(&mut cluster, round)
            .expect("active processes exist");
        cluster.run_round();
    }
    let drain_rounds = cluster
        .run_until_all_complete(params.drain_budget)
        .expect("requests must drain within the budget");
    finish(cluster, &params, drain_rounds)
}

/// Result of a churn scenario (experiment E6, Theorem 17).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChurnResult {
    /// Initial number of processes.
    pub initial_processes: usize,
    /// Processes joined during the run.
    pub joins: usize,
    /// Processes that left during the run.
    pub leaves: usize,
    /// Rounds until all joins were integrated.
    pub join_rounds: u64,
    /// Rounds until all leaves completed.
    pub leave_rounds: u64,
    /// Whether the queue history stayed sequentially consistent.
    pub consistent: bool,
    /// Final number of active processes.
    pub final_processes: usize,
}

/// Runs a churn scenario: bulk-join `joins` processes, then bulk-leave
/// `leaves` processes, with a light request load before and after, and
/// verifies consistency end-to-end.
pub fn run_churn_scenario(
    initial_processes: usize,
    joins: usize,
    leaves: usize,
    seed: u64,
) -> ChurnResult {
    let mut cluster = SkueueCluster::builder()
        .processes(initial_processes)
        .seed(seed)
        .build()
        .expect("at least one initial process");

    // Warm-up load.
    for i in 0..(initial_processes as u64 * 2) {
        cluster
            .client(ProcessId(i % initial_processes as u64))
            .enqueue(i)
            .expect("initial processes are active");
    }
    cluster
        .run_until_all_complete(20_000)
        .expect("warm-up drains");

    // Bulk join.
    let mut joined = Vec::new();
    for _ in 0..joins {
        joined.push(cluster.join(None).expect("bootstrap exists"));
    }
    let join_start = cluster.round();
    cluster
        .run_until(|c| joined.iter().all(|&p| c.process_is_active(p)), 100_000)
        .expect("joins must integrate");
    let join_rounds = cluster.round() - join_start;

    // Load that exercises the new members.
    for (i, &p) in joined.iter().enumerate() {
        cluster
            .client(p)
            .enqueue(10_000 + i as u64)
            .expect("joined processes are active");
    }
    cluster
        .run_until_all_complete(20_000)
        .expect("post-join load drains");

    // Bulk leave (never the anchor's process).
    let mut left = Vec::new();
    let candidates: Vec<ProcessId> = cluster.active_process_ids();
    for p in candidates {
        if left.len() >= leaves {
            break;
        }
        if cluster.leave(p).is_ok() {
            left.push(p);
        }
    }
    let leave_start = cluster.round();
    cluster
        .run_until(|c| left.iter().all(|&p| c.process_has_left(p)), 100_000)
        .expect("leaves must complete");
    let leave_rounds = cluster.round() - leave_start;

    // Post-churn load: drain the queue completely to prove no data was lost.
    let survivors = cluster.active_process_ids();
    let remaining = cluster.anchor_state().map(|a| a.size()).unwrap_or(0);
    let drains: Vec<_> = (0..remaining)
        .map(|i| {
            cluster
                .client(survivors[(i % survivors.len() as u64) as usize])
                .dequeue()
                .expect("survivors are active")
        })
        .collect();
    let outcomes = cluster
        .run_until_done(&drains, 50_000)
        .expect("final drain");

    let consistent =
        check_queue(cluster.history()).is_consistent() && outcomes.iter().all(|o| !o.is_empty());
    assert_eq!(
        cluster.unmatched_dht_replies(),
        0,
        "unmatched DHT replies at churn-scenario quiescence"
    );
    ChurnResult {
        initial_processes,
        joins,
        leaves: left.len(),
        join_rounds,
        leave_rounds,
        consistent,
        final_processes: cluster.active_processes(),
    }
}

/// Result of the fairness scenario (experiment E7, Corollary 19).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FairnessResult {
    /// Number of processes.
    pub processes: usize,
    /// Elements stored at the end of the run.
    pub elements: u64,
    /// Maximum node load divided by the mean load.
    pub max_over_mean: f64,
    /// Coefficient of variation of the per-node load.
    pub cv: f64,
}

/// Runs an enqueue-heavy workload and reports how evenly the stored elements
/// spread over the virtual nodes.
pub fn run_fairness_scenario(processes: usize, elements: u64, seed: u64) -> FairnessResult {
    let mut cluster = SkueueCluster::builder()
        .processes(processes)
        .seed(seed)
        .build()
        .expect("at least one process");
    for i in 0..elements {
        cluster
            .client(ProcessId(i % processes as u64))
            .enqueue(i)
            .expect("processes are active");
        if i % 50 == 0 {
            cluster.run_round();
        }
    }
    cluster
        .run_until_all_complete(100_000)
        .expect("enqueues drain");
    let stats = cluster.fairness().expect("at least one node");
    FairnessResult {
        processes,
        elements: stats.total,
        max_over_mean: stats.max_over_mean,
        cv: stats.cv,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_rate_queue_point_is_consistent_and_logarithmic_ish() {
        let params = ScenarioParams::fixed_rate(20, Mode::Queue, 0.5)
            .with_generation_rounds(30)
            .with_seed(1);
        let result = run_fixed_rate(params);
        assert_eq!(result.requests, 300);
        assert!(result.consistent);
        assert!(result.avg_rounds_per_request > 1.0);
        assert!(result.avg_rounds_per_request < 200.0);
    }

    #[test]
    fn fixed_rate_stack_point_is_consistent() {
        let params = ScenarioParams::fixed_rate(15, Mode::Stack, 0.5)
            .with_generation_rounds(20)
            .with_seed(2);
        let result = run_fixed_rate(params);
        assert_eq!(result.requests, 200);
        assert!(result.consistent);
    }

    #[test]
    fn enqueue_only_workload_never_returns_empty() {
        let params = ScenarioParams::fixed_rate(10, Mode::Queue, 1.0)
            .with_generation_rounds(20)
            .with_seed(3);
        let result = run_fixed_rate(params);
        assert_eq!(result.empty_removes, 0);
        assert!(result.consistent);
    }

    #[test]
    fn dequeue_only_workload_is_all_empty() {
        let params = ScenarioParams::fixed_rate(10, Mode::Queue, 0.0)
            .with_generation_rounds(20)
            .with_seed(4);
        let result = run_fixed_rate(params);
        assert_eq!(result.empty_removes, result.requests);
        assert!(result.consistent);
        // Dequeues on an empty queue finish without DHT operations, so they
        // should be faster than a mixed workload (the effect Fig. 2 shows for
        // small enqueue ratios).
        let mixed = run_fixed_rate(
            ScenarioParams::fixed_rate(10, Mode::Queue, 0.75)
                .with_generation_rounds(20)
                .with_seed(4),
        );
        assert!(result.avg_rounds_per_request <= mixed.avg_rounds_per_request + 1.0);
    }

    #[test]
    fn sharded_fig2_points_verify_for_all_sweep_sizes() {
        for shards in [1usize, 2, 4, 8] {
            let params = ScenarioParams::fixed_rate(32, Mode::Queue, 0.5)
                .with_generation_rounds(20)
                .with_seed(11)
                .with_shards(shards);
            let result = run_fixed_rate(params);
            assert_eq!(result.requests, 200, "S={shards}");
            assert!(result.consistent, "S={shards}");
            assert_eq!(result.shards, shards);
            assert_eq!(result.per_shard_waves.len(), shards);
            if shards > 1 {
                assert!(
                    result.per_shard_waves.iter().filter(|&&w| w > 0).count() >= 2,
                    "S={shards}: waves must spread over shards, got {:?}",
                    result.per_shard_waves
                );
            }
        }
    }

    #[test]
    fn parallel_backend_scenario_matches_single_threaded_metrics() {
        // `.with_threads(n)` is a wall-clock knob: every schedule-derived
        // metric of the scenario result must be identical across backends.
        let params = ScenarioParams::fixed_rate(32, Mode::Queue, 0.5)
            .with_generation_rounds(20)
            .with_seed(11)
            .with_shards(4);
        let single = run_fixed_rate(params);
        let parallel = run_fixed_rate(params.with_threads(4));
        assert_eq!(parallel.threads, 4);
        assert_eq!(single.threads, 1);
        assert_eq!(single.requests, parallel.requests);
        assert_eq!(
            single.avg_rounds_per_request,
            parallel.avg_rounds_per_request
        );
        assert_eq!(single.drain_rounds, parallel.drain_rounds);
        assert_eq!(single.per_shard_waves, parallel.per_shard_waves);
        assert_eq!(single.mean_dht_hops, parallel.mean_dht_hops);
        assert!(parallel.consistent);
        // The lane timing columns are populated, one entry per lane; only
        // the parallel run pays barrier waits.
        assert_eq!(single.lane_busy_ns.len(), 4);
        assert_eq!(parallel.lane_busy_ns.len(), 4);
        assert!(parallel.lane_busy_ns.iter().all(|&ns| ns > 0));
        assert!(single.lane_barrier_wait_ns.iter().all(|&ns| ns == 0));
        assert!(parallel.lane_barrier_wait_ns.iter().any(|&ns| ns > 0));
        assert_eq!(single.distinct_lane_threads, 1);
        assert!(parallel.distinct_lane_threads >= 2);
    }

    #[test]
    fn traced_scenario_matches_untraced_and_reports_stage_latencies() {
        // Tracing is observation-only: every schedule-derived metric must be
        // identical with tracing on, and the traced run additionally carries
        // the populated stage table.
        let params = ScenarioParams::fixed_rate(24, Mode::Queue, 0.5)
            .with_generation_rounds(20)
            .with_seed(11)
            .with_shards(2);
        let plain = run_fixed_rate(params);
        let traced = run_fixed_rate(params.with_trace(TraceLevel::Full));
        assert_eq!(plain.requests, traced.requests);
        assert_eq!(
            plain.avg_rounds_per_request, traced.avg_rounds_per_request,
            "tracing must not change the schedule"
        );
        assert_eq!(plain.drain_rounds, traced.drain_rounds);
        assert_eq!(
            (plain.p50_rounds, plain.p99_rounds, plain.p999_rounds),
            (traced.p50_rounds, traced.p99_rounds, traced.p999_rounds),
            "percentiles come from the history and must agree"
        );
        assert!(plain.p50_rounds > 0);
        assert!(plain.p99_rounds >= plain.p50_rounds);
        assert_eq!(plain.trace_events, 0);
        assert!(plain.stage_latencies.is_empty());
        assert!(traced.trace_events > 0);
        assert_eq!(traced.stage_latencies.len(), 6);
        // The trace's total-stage percentiles are the history's percentiles.
        let total = traced.stage_latencies.last().unwrap().1;
        assert_eq!(total.count, traced.requests);
        assert_eq!(total.p50, traced.p50_rounds);
        assert_eq!(total.p99, traced.p99_rounds);
    }

    #[test]
    fn middle_fingers_cut_hops_without_breaking_consistency() {
        // Satellite metric of BENCH_pr8.json: the nearest-middle finger must
        // lower (or at minimum not inflate) the mean DHT hop count while the
        // verifier still accepts the history.
        let params = ScenarioParams::fixed_rate(128, Mode::Queue, 0.5)
            .with_generation_rounds(20)
            .with_seed(11);
        let plain = run_fixed_rate(params);
        let fingered = run_fixed_rate(params.with_middle_fingers(true));
        assert!(plain.consistent);
        assert!(fingered.consistent);
        assert_eq!(plain.requests, fingered.requests);
        assert!(
            fingered.mean_dht_hops < plain.mean_dht_hops,
            "finger must cut the mean hop count: {} vs {}",
            fingered.mean_dht_hops,
            plain.mean_dht_hops
        );
    }

    #[test]
    fn sharded_fig2_s1_matches_the_unsharded_scenario() {
        let base = run_fixed_rate(
            ScenarioParams::fixed_rate(16, Mode::Queue, 0.5)
                .with_generation_rounds(15)
                .with_seed(21),
        );
        let sharded = run_sharded_fig2(16, 1, 21);
        // Same workload, same schedule: S = 1 must not change a thing
        // (run_sharded_fig2 uses the full 200 generation rounds, so compare
        // through explicitly matched parameters instead).
        let sharded_matched = run_fixed_rate(
            ScenarioParams::fixed_rate(16, Mode::Queue, 0.5)
                .with_generation_rounds(15)
                .with_seed(21)
                .with_shards(1),
        );
        assert_eq!(base.requests, sharded_matched.requests);
        assert_eq!(
            base.avg_rounds_per_request,
            sharded_matched.avg_rounds_per_request
        );
        assert_eq!(base.drain_rounds, sharded_matched.drain_rounds);
        assert!(sharded.consistent);
    }

    #[test]
    fn string_payload_fig2_is_consistent_and_round_trips() {
        // Sharded String-payload run: the cross-shard checker (including the
        // payload round-trip rule) must accept it, and the schedule metrics
        // must match the u64 run of the same parameters exactly — payload
        // genericity must not change the protocol's behaviour.
        let params = ScenarioParams::fixed_rate(24, Mode::Queue, 0.5)
            .with_generation_rounds(20)
            .with_seed(33)
            .with_shards(4);
        let strings = run_payload_fixed_rate(params, |c| format!("job-{c:08}"));
        assert_eq!(strings.requests, 200);
        assert!(strings.consistent);
        assert_eq!(strings.shards, 4);

        let ints = run_fixed_rate(params);
        assert_eq!(strings.requests, ints.requests);
        assert_eq!(
            strings.avg_rounds_per_request, ints.avg_rounds_per_request,
            "payload type must not change the schedule"
        );
        assert_eq!(strings.drain_rounds, ints.drain_rounds);
        assert_eq!(strings.per_shard_waves, ints.per_shard_waves);
    }

    #[test]
    fn payload_generic_u64_identity_matches_run_fixed_rate() {
        let params = ScenarioParams::fixed_rate(12, Mode::Queue, 0.5)
            .with_generation_rounds(15)
            .with_seed(9);
        let via_generic = run_payload_fixed_rate(params, |c| c);
        let direct = run_fixed_rate(params);
        assert_eq!(via_generic.requests, direct.requests);
        assert_eq!(
            via_generic.avg_rounds_per_request,
            direct.avg_rounds_per_request
        );
        assert_eq!(via_generic.drain_rounds, direct.drain_rounds);
    }

    #[test]
    fn string_payload_stack_round_trips() {
        let params = ScenarioParams::fixed_rate(8, Mode::Stack, 0.5)
            .with_generation_rounds(12)
            .with_seed(17);
        let result = run_payload_fixed_rate(params, |c| format!("undo-{c}"));
        assert_eq!(result.requests, 120);
        assert!(result.consistent);
    }

    #[test]
    fn per_node_rate_point_runs() {
        let params = ScenarioParams::per_node_rate(30, Mode::Queue, 0.2)
            .with_generation_rounds(25)
            .with_seed(5);
        let result = run_per_node_rate(params);
        assert!(result.requests > 0);
        assert!(result.consistent);
    }

    #[test]
    fn stack_local_combining_shows_up_at_high_rates() {
        let params = ScenarioParams::per_node_rate(20, Mode::Stack, 1.0)
            .with_generation_rounds(20)
            .with_seed(6);
        let result = run_per_node_rate(params);
        assert!(result.consistent);
        assert!(
            result.locally_combined > 0,
            "at one request per node per round some pairs must combine locally"
        );
    }

    #[test]
    fn churn_scenario_small() {
        let result = run_churn_scenario(6, 3, 2, 7);
        assert!(result.consistent);
        assert_eq!(result.final_processes, 6 + 3 - 2);
        assert!(result.join_rounds > 0);
        assert!(result.leave_rounds > 0);
    }

    #[test]
    fn fairness_scenario_small() {
        let result = run_fairness_scenario(10, 300, 8);
        assert_eq!(result.elements, 300);
        assert!(result.max_over_mean < 8.0);
    }
}
