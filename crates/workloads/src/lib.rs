//! # skueue-workloads — workload generators, paper scenarios and the baseline
//!
//! Section VII of the Skueue paper evaluates the protocol with two synthetic
//! workloads:
//!
//! 1. **Fixed-rate workload** (Figures 2 and 3): in every synchronous round,
//!    10 requests are generated and assigned to processes chosen uniformly at
//!    random; a request is an insert (`ENQUEUE()`/`PUSH()`) with probability
//!    `p` and a remove (`DEQUEUE()`/`POP()`) otherwise.  After 1000 rounds
//!    generation stops and the system drains.  The measurement is the average
//!    number of rounds per request.
//! 2. **Per-node-rate workload** (Figure 4): every process independently
//!    generates a request with probability `p` in every round (insert ratio
//!    0.5), for `n = 10 000`.
//!
//! This crate implements both generators ([`generator`]), ready-to-run
//! experiment scenarios that produce one data point per call ([`scenario`]),
//! churn and fairness scenarios for the analysis-section experiments, and an
//! unbatched central-server baseline ([`baseline`]) used by the E8 ablation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod generator;
pub mod scenario;

pub use baseline::{run_central_baseline, CentralBaselineResult};
pub use generator::{FixedRateGenerator, PerNodeRateGenerator};
pub use scenario::{
    run_churn_scenario, run_fairness_scenario, run_fixed_rate, run_fixed_rate_traced,
    run_payload_fixed_rate, run_per_node_rate, run_sharded_fig2, run_string_payload_fig2,
    ChurnResult, FairnessResult, ScenarioParams, ScenarioResult, TracedRunArtifacts,
};
