//! Request generators matching the paper's evaluation setup.
//!
//! Generators drive the cluster through per-process
//! [`ClientHandle`](skueue_core::ClientHandle)s — the same request path an
//! application would use — and discard the returned tickets (the scenario
//! layer reads results through the cluster's completion stream).

use skueue_core::{ClusterError, Payload, SkueueCluster};
use skueue_sim::ids::ProcessId;
use skueue_sim::SimRng;

/// Fixed-rate generator (Figures 2 and 3): `requests_per_round` requests per
/// round, assigned to uniformly random processes; each request is an insert
/// with probability `insert_ratio`.
#[derive(Debug, Clone)]
pub struct FixedRateGenerator {
    /// Requests generated per round.
    pub requests_per_round: u64,
    /// Probability that a generated request is an insert.
    pub insert_ratio: f64,
    /// Rounds during which requests are generated.
    pub generation_rounds: u64,
    rng: SimRng,
    value_counter: u64,
}

impl FixedRateGenerator {
    /// Creates a generator with the paper's default of 10 requests per round.
    pub fn new(insert_ratio: f64, generation_rounds: u64, seed: u64) -> Self {
        FixedRateGenerator {
            requests_per_round: 10,
            insert_ratio,
            generation_rounds,
            rng: SimRng::new(seed),
            value_counter: 0,
        }
    }

    /// Overrides the per-round request count.
    pub fn with_requests_per_round(mut self, requests: u64) -> Self {
        self.requests_per_round = requests;
        self
    }

    /// Generates this round's requests into the cluster (no-op once the
    /// generation window is over). Returns the number of requests issued.
    pub fn tick(&mut self, cluster: &mut SkueueCluster, round: u64) -> Result<u64, ClusterError> {
        self.tick_with(cluster, round, |c| c)
    }

    /// Payload-generic form of [`Self::tick`]: `mk` maps the generator's
    /// monotone value counter to the payload of each insert, so the same
    /// schedule (same RNG draws, same targets) drives a `Skueue<T>` for any
    /// payload type.
    pub fn tick_with<T: Payload>(
        &mut self,
        cluster: &mut SkueueCluster<T>,
        round: u64,
        mut mk: impl FnMut(u64) -> T,
    ) -> Result<u64, ClusterError> {
        if round >= self.generation_rounds {
            return Ok(0);
        }
        let targets = cluster.active_process_ids();
        if targets.is_empty() {
            return Ok(0);
        }
        let mut issued = 0;
        for _ in 0..self.requests_per_round {
            let target = targets[self.rng.choose_index(targets.len())];
            let is_insert = self.rng.gen_bool(self.insert_ratio);
            self.value_counter += 1;
            let value = if is_insert {
                mk(self.value_counter)
            } else {
                T::default()
            };
            cluster.client(target).issue(is_insert, value)?;
            issued += 1;
        }
        Ok(issued)
    }
}

/// Per-node-rate generator (Figure 4): every active process generates a
/// request with probability `request_probability` each round.
#[derive(Debug, Clone)]
pub struct PerNodeRateGenerator {
    /// Per-round request probability of each process.
    pub request_probability: f64,
    /// Probability that a generated request is an insert.
    pub insert_ratio: f64,
    /// Rounds during which requests are generated.
    pub generation_rounds: u64,
    rng: SimRng,
    value_counter: u64,
}

impl PerNodeRateGenerator {
    /// Creates a generator with the given per-node probability.
    pub fn new(
        request_probability: f64,
        insert_ratio: f64,
        generation_rounds: u64,
        seed: u64,
    ) -> Self {
        PerNodeRateGenerator {
            request_probability,
            insert_ratio,
            generation_rounds,
            rng: SimRng::new(seed),
            value_counter: 0,
        }
    }

    /// Generates this round's requests. Returns the number issued.
    pub fn tick(&mut self, cluster: &mut SkueueCluster, round: u64) -> Result<u64, ClusterError> {
        self.tick_with(cluster, round, |c| c)
    }

    /// Payload-generic form of [`Self::tick`] (see
    /// [`FixedRateGenerator::tick_with`]).
    pub fn tick_with<T: Payload>(
        &mut self,
        cluster: &mut SkueueCluster<T>,
        round: u64,
        mut mk: impl FnMut(u64) -> T,
    ) -> Result<u64, ClusterError> {
        if round >= self.generation_rounds {
            return Ok(0);
        }
        let targets = cluster.active_process_ids();
        let mut issued = 0;
        for target in targets {
            if self.rng.gen_bool(self.request_probability) {
                let is_insert = self.rng.gen_bool(self.insert_ratio);
                self.value_counter += 1;
                let value = if is_insert {
                    mk(self.value_counter)
                } else {
                    T::default()
                };
                cluster.client(target).issue(is_insert, value)?;
                issued += 1;
            }
        }
        Ok(issued)
    }

    /// Expected requests per round for a given number of processes.
    pub fn expected_per_round(&self, processes: usize) -> f64 {
        self.request_probability * processes as f64
    }
}

/// Picks a uniformly random active process (helper shared by scenarios).
pub fn random_active_process<T: Payload>(
    cluster: &SkueueCluster<T>,
    rng: &mut SimRng,
) -> Option<ProcessId> {
    let active = cluster.active_process_ids();
    if active.is_empty() {
        None
    } else {
        Some(active[rng.choose_index(active.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue_cluster(n: usize, seed: u64) -> SkueueCluster {
        SkueueCluster::builder()
            .processes(n)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn fixed_rate_issues_requested_count() {
        let mut cluster = queue_cluster(4, 1);
        let mut gen = FixedRateGenerator::new(0.5, 3, 7).with_requests_per_round(5);
        let mut total = 0;
        for round in 0..10 {
            total += gen.tick(&mut cluster, round).unwrap();
            cluster.run_round();
        }
        // Only the first 3 rounds generate.
        assert_eq!(total, 15);
        assert_eq!(cluster.requests_issued(), 15);
    }

    #[test]
    fn fixed_rate_insert_ratio_extremes() {
        let mut cluster = queue_cluster(2, 2);
        let mut gen = FixedRateGenerator::new(1.0, 5, 3).with_requests_per_round(4);
        for round in 0..5 {
            gen.tick(&mut cluster, round).unwrap();
        }
        cluster.run_until_all_complete(500).unwrap();
        // All inserts: no request may return ⊥ and all must be enqueues.
        assert_eq!(cluster.history().count_empty(), 0);
        assert_eq!(
            cluster.history().count_kind(skueue_verify::OpKind::Enqueue),
            20
        );
    }

    #[test]
    fn per_node_rate_scales_with_probability() {
        let mut cluster = queue_cluster(50, 3);
        let mut gen = PerNodeRateGenerator::new(0.5, 0.5, 20, 11);
        let mut total = 0;
        for round in 0..20 {
            total += gen.tick(&mut cluster, round).unwrap();
            cluster.run_round();
        }
        let expected = gen.expected_per_round(50) * 20.0;
        assert!(
            (total as f64) > expected * 0.7 && (total as f64) < expected * 1.3,
            "issued {total}, expected ≈ {expected}"
        );
    }

    #[test]
    fn per_node_rate_zero_probability_generates_nothing() {
        let mut cluster = queue_cluster(5, 4);
        let mut gen = PerNodeRateGenerator::new(0.0, 0.5, 10, 1);
        for round in 0..10 {
            assert_eq!(gen.tick(&mut cluster, round).unwrap(), 0);
        }
    }

    #[test]
    fn random_process_helper() {
        let cluster = queue_cluster(3, 5);
        let mut rng = SimRng::new(1);
        let p = random_active_process(&cluster, &mut rng).unwrap();
        assert!(p.raw() < 3);
    }
}
