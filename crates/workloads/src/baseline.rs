//! The unbatched central-server baseline (ablation E8).
//!
//! The paper motivates Skueue by observing that existing message-queue
//! systems funnel every request through one (or a few) powerful servers and
//! that the obvious fully-centralised design cannot absorb massive parallel
//! access.  This module implements that strawman on the same simulation
//! substrate: every client sends each request directly to a single server
//! node, which processes a bounded number of requests per round from its
//! backlog and answers each with one reply message.
//!
//! Comparing its average rounds-per-request against Skueue's under the
//! Figure 4 workload shows the effect of batch aggregation: the central
//! server's latency grows linearly with the offered load once the load
//! exceeds its per-round capacity, while Skueue stays at `O(log n)`.

use serde::{Deserialize, Serialize};
use skueue_sim::actor::{Actor, Context};
use skueue_sim::ids::NodeId;
use skueue_sim::{SimConfig, SimRng, Simulation};
use std::collections::VecDeque;

/// Messages of the baseline system.
#[derive(Debug, Clone, PartialEq, Eq)]
enum BaselineMsg {
    /// A client request (insert or remove) tagged with its issue round.
    Request {
        is_insert: bool,
        value: u64,
        issued_round: u64,
    },
    /// The server's answer, echoing the issue round.
    Reply { issued_round: u64 },
}

/// The central server: a sequential queue plus a backlog of unprocessed
/// requests; it serves at most `capacity_per_round` requests per round.
#[derive(Debug)]
struct CentralServer {
    queue: VecDeque<u64>,
    backlog: VecDeque<(NodeId, BaselineMsg)>,
    capacity_per_round: u64,
    served: u64,
}

/// A client node: records reply latencies.
#[derive(Debug, Default)]
struct Client {
    latencies: Vec<u64>,
}

/// Either the server (node 0) or a client.
#[derive(Debug)]
enum BaselineNode {
    Server(CentralServer),
    Client(Client),
}

impl Actor for BaselineNode {
    type Msg = BaselineMsg;

    fn on_message(&mut self, from: NodeId, msg: BaselineMsg, ctx: &mut Context<BaselineMsg>) {
        match self {
            BaselineNode::Server(server) => {
                if matches!(msg, BaselineMsg::Request { .. }) {
                    server.backlog.push_back((from, msg));
                }
            }
            BaselineNode::Client(client) => {
                if let BaselineMsg::Reply { issued_round } = msg {
                    client
                        .latencies
                        .push(ctx.round().saturating_sub(issued_round));
                }
            }
        }
    }

    fn on_timeout(&mut self, ctx: &mut Context<BaselineMsg>) {
        if let BaselineNode::Server(server) = self {
            for _ in 0..server.capacity_per_round {
                let Some((client, msg)) = server.backlog.pop_front() else {
                    break;
                };
                if let BaselineMsg::Request {
                    is_insert,
                    value,
                    issued_round,
                } = msg
                {
                    if is_insert {
                        server.queue.push_back(value);
                    } else {
                        let _ = server.queue.pop_front();
                    }
                    server.served += 1;
                    ctx.send(client, BaselineMsg::Reply { issued_round });
                }
            }
        }
    }
}

/// Result of one baseline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CentralBaselineResult {
    /// Number of client processes.
    pub processes: usize,
    /// Per-node per-round request probability.
    pub request_probability: f64,
    /// Requests per round the server can process.
    pub server_capacity_per_round: u64,
    /// Requests issued (and completed).
    pub requests: u64,
    /// Average rounds per request.
    pub avg_rounds_per_request: f64,
    /// Maximum rounds for a single request.
    pub max_rounds_per_request: u64,
}

/// Runs the central-server baseline under the Figure 4 workload shape: every
/// client issues a request with probability `request_probability` per round
/// for `generation_rounds` rounds.
pub fn run_central_baseline(
    processes: usize,
    request_probability: f64,
    insert_ratio: f64,
    generation_rounds: u64,
    server_capacity_per_round: u64,
    seed: u64,
) -> CentralBaselineResult {
    let mut sim: Simulation<BaselineNode> =
        Simulation::new(SimConfig::synchronous(seed)).expect("valid config");
    let server = sim.add_node(BaselineNode::Server(CentralServer {
        queue: VecDeque::new(),
        backlog: VecDeque::new(),
        capacity_per_round: server_capacity_per_round,
        served: 0,
    }));
    let clients: Vec<NodeId> = (0..processes)
        .map(|_| sim.add_node(BaselineNode::Client(Client::default())))
        .collect();

    let mut rng = SimRng::new(seed ^ 0xBA5E);
    let mut issued = 0u64;
    let mut value = 0u64;
    for round in 0..generation_rounds {
        for &client in &clients {
            if rng.gen_bool(request_probability) {
                value += 1;
                issued += 1;
                sim.inject(
                    client,
                    server,
                    BaselineMsg::Request {
                        is_insert: rng.gen_bool(insert_ratio),
                        value,
                        issued_round: round,
                    },
                )
                .expect("server exists");
            }
        }
        sim.run_round();
    }
    // Drain: run until every request has been answered.
    let mut guard = 0u64;
    loop {
        let answered: usize = sim
            .iter()
            .filter_map(|(_, n)| match n {
                BaselineNode::Client(c) => Some(c.latencies.len()),
                _ => None,
            })
            .sum();
        if answered as u64 >= issued {
            break;
        }
        sim.run_round();
        guard += 1;
        assert!(guard < 10_000_000, "baseline failed to drain");
    }

    let mut latencies = Vec::new();
    for (_, node) in sim.iter() {
        if let BaselineNode::Client(c) = node {
            latencies.extend_from_slice(&c.latencies);
        }
    }
    let avg = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
    };
    CentralBaselineResult {
        processes,
        request_probability,
        server_capacity_per_round,
        requests: issued,
        avg_rounds_per_request: avg,
        max_rounds_per_request: latencies.iter().copied().max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_answers_every_request() {
        let result = run_central_baseline(20, 0.5, 0.5, 30, 10, 1);
        assert!(result.requests > 0);
        assert!(
            result.avg_rounds_per_request >= 2.0,
            "round trip costs at least 2 rounds"
        );
    }

    #[test]
    fn overloaded_server_builds_queueing_delay() {
        // Offered load 50 * 1.0 = 50 req/round against a capacity of 10:
        // latency must blow up relative to an underloaded server.
        let overloaded = run_central_baseline(50, 1.0, 0.5, 30, 10, 2);
        let underloaded = run_central_baseline(50, 0.1, 0.5, 30, 10, 2);
        assert!(
            overloaded.avg_rounds_per_request > underloaded.avg_rounds_per_request * 3.0,
            "overloaded {} vs underloaded {}",
            overloaded.avg_rounds_per_request,
            underloaded.avg_rounds_per_request
        );
    }

    #[test]
    fn zero_probability_issues_nothing() {
        let result = run_central_baseline(10, 0.0, 0.5, 10, 5, 3);
        assert_eq!(result.requests, 0);
        assert_eq!(result.avg_rounds_per_request, 0.0);
    }
}
