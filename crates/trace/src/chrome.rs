//! Chrome trace-event JSON export.
//!
//! [`export_chrome_trace`] renders a merged [`TraceLog`] into the [Chrome
//! trace-event format] (the JSON-array-of-events dialect) that Perfetto and
//! `chrome://tracing` load directly.  The export is fully deterministic —
//! only round-stamped protocol events, one millisecond of trace time per
//! simulation round, spans sorted by op id — so the bytes are identical
//! across thread counts for the same seed.
//!
//! Layout: pid 1 is the protocol timeline with **one track (tid) per anchor
//! shard lane**; each completed op is a single complete (`"ph":"X"`) slice
//! with its stage breakdown in `args`, and churn/update-phase events are
//! instants on the shard track that recorded them.
//! [`export_chrome_trace_with_runtime`] appends pid 2 with **one track per
//! worker lane** showing the parallel backend's measured busy vs
//! barrier-wait time — wall-clock data, so it is opt-in and excluded from
//! byte-identity comparisons.
//!
//! The JSON is hand-rolled (the workspace's serde is an offline no-op stub);
//! [`validate_json`] is the minimal syntax checker the CI trace smoke runs
//! over the exported file.
//!
//! [Chrome trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::analysis::TraceAnalysis;
use crate::{TraceEvent, TraceLog};
use std::fmt::Write as _;

/// Microseconds of trace time per simulation round (1 round = 1 ms keeps
/// Perfetto's zoom levels comfortable for thousand-round runs).
const US_PER_ROUND: u64 = 1000;

fn push_meta(out: &mut String, pid: u32, tid: Option<u32>, name: &str, value: &str) {
    out.push_str("{\"ph\":\"M\",\"pid\":");
    let _ = write!(out, "{pid}");
    if let Some(tid) = tid {
        let _ = write!(out, ",\"tid\":{tid}");
    }
    let _ = write!(
        out,
        ",\"name\":\"{name}\",\"args\":{{\"name\":\"{value}\"}}}}"
    );
}

/// Renders the deterministic protocol timeline (see the module docs).
///
/// One `"cat":"op"` complete event is emitted per completed span, so
/// `count of "cat":"op"` == completed requests — the acceptance check the
/// trace smoke performs.
pub fn export_chrome_trace(log: &TraceLog) -> String {
    let analysis = TraceAnalysis::from_log(log);
    let mut events: Vec<String> = Vec::new();

    // Track naming: one protocol track per shard lane that recorded events.
    let mut out = String::new();
    push_meta(&mut out, 1, None, "process_name", "skueue protocol");
    events.push(std::mem::take(&mut out));
    for (shard, _) in log.shard_event_counts() {
        push_meta(
            &mut out,
            1,
            Some(shard),
            "thread_name",
            &format!("shard lane {shard}"),
        );
        events.push(std::mem::take(&mut out));
    }

    // One complete slice per completed op, stage breakdown in args.
    for s in analysis.spans() {
        let (issued, completed) = match (s.issued, s.completed) {
            (Some(i), Some(c)) => (i, c),
            _ => continue,
        };
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"cat\":\"op\",\"name\":\"{} {}\",\"ts\":{},\"dur\":{},\"args\":{{\"wave\":{},\"major\":{},\"hops\":{}",
            s.shard,
            s.op,
            if s.insert { "insert" } else { "remove" },
            issued * US_PER_ROUND,
            (completed - issued) * US_PER_ROUND,
            s.wave,
            s.major,
            s.hops.unwrap_or(0),
        );
        for (name, rounds) in [
            ("queue_wait", s.queue_wait()),
            ("aggregation", s.aggregation()),
            ("assignment", s.assignment()),
            ("dht_routing", s.dht_routing()),
            ("reply", s.reply()),
        ] {
            if let Some(r) = rounds {
                let _ = write!(out, ",\"{name}\":{r}");
            }
        }
        out.push_str("}}");
        events.push(std::mem::take(&mut out));
    }

    // Wave/phase/churn instants on the recording shard's track.
    for r in log.records() {
        let (name, detail): (&str, String) = match r.event {
            TraceEvent::WaveAssigned { wave, .. } => ("wave assigned", format!("{wave}")),
            TraceEvent::PhaseEnter { phase, .. } => ("update phase enter", format!("{phase}")),
            TraceEvent::PhaseOver { phase, .. } => ("update phase over", format!("{phase}")),
            TraceEvent::ProcessJoined { process, .. } => ("process joined", format!("p{process}")),
            TraceEvent::ProcessLeft { process, .. } => ("process left", format!("p{process}")),
            TraceEvent::Absorbed { process, .. } => ("absorbed", format!("p{process}")),
            _ => continue,
        };
        let _ = write!(
            out,
            "{{\"ph\":\"i\",\"pid\":1,\"tid\":{},\"cat\":\"lifecycle\",\"name\":\"{} {}\",\"ts\":{},\"s\":\"t\"}}",
            r.shard,
            name,
            detail,
            r.event.round() * US_PER_ROUND,
        );
        events.push(std::mem::take(&mut out));
    }

    render_document(&events)
}

/// Renders the protocol timeline plus one track per worker lane with the
/// parallel backend's measured busy vs barrier-wait durations.
///
/// The lane metrics are wall-clock nanoseconds (`lane_busy_ns`,
/// `lane_barrier_wait_ns`, `lane_thread_tokens` from the sim metrics) and
/// therefore differ run to run — use [`export_chrome_trace`] when byte
/// identity matters.
pub fn export_chrome_trace_with_runtime(
    log: &TraceLog,
    lane_busy_ns: &[u64],
    lane_barrier_wait_ns: &[u64],
    lane_thread_tokens: &[u64],
) -> String {
    let deterministic = export_chrome_trace(log);
    let mut events: Vec<String> = Vec::new();
    let mut out = String::new();
    push_meta(&mut out, 2, None, "process_name", "worker lanes");
    events.push(std::mem::take(&mut out));
    for (lane, &busy_ns) in lane_busy_ns.iter().enumerate() {
        let token = lane_thread_tokens.get(lane).copied().unwrap_or(0);
        push_meta(
            &mut out,
            2,
            Some(lane as u32),
            "thread_name",
            &format!("lane {lane} (thread {token:#x})"),
        );
        events.push(std::mem::take(&mut out));
        let busy_us = busy_ns / 1000;
        let wait_us = lane_barrier_wait_ns.get(lane).copied().unwrap_or(0) / 1000;
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"pid\":2,\"tid\":{lane},\"cat\":\"lane\",\"name\":\"busy\",\"ts\":0,\"dur\":{busy_us}}}",
        );
        events.push(std::mem::take(&mut out));
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"pid\":2,\"tid\":{lane},\"cat\":\"lane\",\"name\":\"barrier wait\",\"ts\":{busy_us},\"dur\":{wait_us}}}",
        );
        events.push(std::mem::take(&mut out));
    }
    // Splice the runtime events into the deterministic document's array.
    let insert_at = deterministic
        .rfind("]}")
        .expect("deterministic export always ends with ]}");
    let mut doc = String::with_capacity(deterministic.len() + events.len() * 96);
    doc.push_str(&deterministic[..insert_at]);
    for e in &events {
        doc.push_str(",\n");
        doc.push_str(e);
    }
    doc.push_str(&deterministic[insert_at..]);
    doc
}

fn render_document(events: &[String]) -> String {
    let mut doc = String::with_capacity(events.iter().map(|e| e.len() + 2).sum::<usize>() + 64);
    doc.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            doc.push_str(",\n");
        }
        doc.push_str(e);
    }
    doc.push_str("\n]}");
    doc
}

/// Minimal recursive-descent JSON syntax check (objects, arrays, strings,
/// numbers, `true`/`false`/`null`; no extension syntax).  The workspace has
/// no JSON parser dependency, and the CI trace smoke needs to assert the
/// exporter's output is loadable.
pub fn validate_json(input: &str) -> bool {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    if !parse_value(bytes, &mut pos) {
        return false;
    }
    skip_ws(bytes, &mut pos);
    pos == bytes.len()
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> bool {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => false,
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if b.len() - *pos >= lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> bool {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if *pos == int_start {
        return false;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == frac_start {
            return false;
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == exp_start {
            return false;
        }
    }
    *pos > start
}

fn parse_string(b: &[u8], pos: &mut usize) -> bool {
    debug_assert_eq!(b.get(*pos), Some(&b'"'));
    *pos += 1;
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return true;
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() - *pos < 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return false;
                        }
                        *pos += 5;
                    }
                    _ => return false,
                }
            }
            0x00..=0x1f => return false,
            _ => *pos += 1,
        }
    }
    false
}

fn parse_object(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return true;
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') || !parse_string(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return false;
        }
        *pos += 1;
        if !parse_value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return true;
    }
    loop {
        if !parse_value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceEvent, TraceId, TraceRecord};

    fn sample_log() -> TraceLog {
        let mut log = TraceLog::new();
        let op = TraceId::new(2, 5);
        let rec = |shard: u32, event: TraceEvent| TraceRecord {
            node: shard as u64,
            shard,
            event,
        };
        log.push(rec(
            0,
            TraceEvent::Issued {
                op,
                insert: true,
                round: 1,
            },
        ));
        log.push(rec(0, TraceEvent::WaveJoin { op, round: 2 }));
        log.push(rec(0, TraceEvent::WaveAssigned { wave: 1, round: 4 }));
        log.push(rec(
            0,
            TraceEvent::Assigned {
                op,
                wave: 1,
                major: 0,
                round: 6,
            },
        ));
        log.push(rec(
            1,
            TraceEvent::DhtApplied {
                op,
                hops: 3,
                round: 9,
            },
        ));
        log.push(rec(1, TraceEvent::Completed { op, round: 9 }));
        log.push(rec(
            0,
            TraceEvent::ProcessJoined {
                process: 7,
                round: 3,
            },
        ));
        log
    }

    #[test]
    fn export_is_valid_json_with_one_op_slice_per_completed_span() {
        let json = export_chrome_trace(&sample_log());
        assert!(validate_json(&json), "exporter must emit valid JSON");
        assert_eq!(json.matches("\"cat\":\"op\"").count(), 1);
        assert!(json.contains("\"name\":\"p2#5 insert\""));
        assert!(json.contains("shard lane 0"));
        assert!(json.contains("shard lane 1"));
        assert!(json.contains("process joined p7"));
        // 1 round = 1000 µs; issued in round 1, 8 rounds long.
        assert!(json.contains("\"ts\":1000,\"dur\":8000"));
    }

    #[test]
    fn export_is_deterministic() {
        let log = sample_log();
        assert_eq!(export_chrome_trace(&log), export_chrome_trace(&log));
    }

    #[test]
    fn runtime_export_appends_lane_tracks_and_stays_valid() {
        let json = export_chrome_trace_with_runtime(
            &sample_log(),
            &[5_000, 7_000],
            &[1_000, 500],
            &[0xaa, 0xbb],
        );
        assert!(validate_json(&json));
        assert!(json.contains("worker lanes"));
        assert!(json.contains("\"name\":\"busy\""));
        assert!(json.contains("\"name\":\"barrier wait\""));
        assert!(json.contains("lane 1 (thread 0xbb)"));
    }

    #[test]
    fn validator_accepts_and_rejects() {
        assert!(validate_json(
            "{\"a\": [1, 2.5, -3e2, \"x\\n\", true, null]}"
        ));
        assert!(validate_json("[]"));
        assert!(validate_json("  {\"u\": \"\\u00e9\"} "));
        assert!(!validate_json("{\"a\": }"));
        assert!(!validate_json("[1, 2"));
        assert!(!validate_json("{\"a\": 1} trailing"));
        assert!(!validate_json("{'a': 1}"));
        assert!(!validate_json("01x"));
        assert!(!validate_json(""));
    }
}
