//! # skueue-trace — per-op lifecycle tracing
//!
//! A structured event/span recorder for the Skueue protocol.  Every request
//! gets a [`TraceId`] minted when it is issued and carried through its whole
//! lifecycle; protocol stages emit round-stamped [`TraceEvent`]s into
//! **lane-local** [`TraceRecorder`]s (one per virtual node, preallocated, no
//! cross-thread contention), which the cluster driver drains into a single
//! [`TraceLog`] in the same deterministic node sweep that collects
//! completions.  Because the protocol itself is byte-identical across
//! execution backends, the merged log — and everything derived from it — is
//! byte-identical across thread counts too.
//!
//! The stage taxonomy decomposes a request's rounds-per-request latency
//! (the paper's headline metric, Theorems 18/20) into:
//!
//! | stage | from → to | what it measures |
//! |-------|-----------|------------------|
//! | `queue-wait` | `Issued` → `WaveJoin` | waiting for the node's next aggregation wave |
//! | `aggregation` | `WaveJoin` → `WaveAssigned` | batch travel up the tree + anchor processing |
//! | `assignment` | `WaveAssigned` → `Assigned` | assignment travel back down the tree |
//! | `dht-routing` | `Assigned` → `DhtApplied` | distance-halving hops to the responsible node |
//! | `reply` | `DhtApplied` → `Completed` | reply routing back to the requester |
//!
//! (each name is a [`TraceEvent`] variant, e.g. [`TraceEvent::Issued`].)
//! Locally combined stack pairs
//! and `⊥` dequeues legitimately skip later stages; see
//! [`analysis::OpSpan::well_formed`] for the exact shape rules.
//!
//! Sinks: [`analysis::TraceAnalysis`] (in-memory per-stage round-latency
//! percentiles) and [`chrome::export_chrome_trace`] (Chrome trace-event JSON
//! loadable in Perfetto / `chrome://tracing`).
//!
//! Recording is **off by default** and the off path is a branch on the
//! `Copy` enum [`TraceLevel`] — no buffer is allocated, no event is
//! constructed (see [`TraceRecorder::is_off`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod chrome;

pub use analysis::{OpSpan, StageStats, TraceAnalysis};
pub use chrome::{export_chrome_trace, export_chrome_trace_with_runtime, validate_json};

use serde::{Deserialize, Serialize};

/// How much the per-node recorders capture.
///
/// `Copy` on purpose: every emission site guards with a branch on this enum,
/// which is all the off path costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub enum TraceLevel {
    /// No recording at all: no ring buffer is allocated and every emission
    /// site reduces to one predictable branch (the default).
    #[default]
    Off,
    /// Record the per-op span events (issue, wave join, assignment, DHT
    /// apply, completion) plus churn/update-phase instants.
    Spans,
    /// Everything in [`Spans`](TraceLevel::Spans) plus one event per DHT
    /// routing hop — the level the hop-count invariants need.
    Full,
}

impl TraceLevel {
    /// True when nothing is recorded (the zero-cost path).
    #[inline]
    pub fn is_off(self) -> bool {
        matches!(self, TraceLevel::Off)
    }

    /// True when per-op span events are recorded.
    #[inline]
    pub fn spans(self) -> bool {
        !self.is_off()
    }

    /// True when per-hop DHT routing events are recorded.
    #[inline]
    pub fn hops(self) -> bool {
        matches!(self, TraceLevel::Full)
    }

    /// Stable lowercase name for reports and snapshot JSON.
    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Spans => "spans",
            TraceLevel::Full => "full",
        }
    }
}

/// Identity of one traced operation.
///
/// Minted when the operation is issued (it is the request's `OP_{v,i}`
/// identity: origin process and per-process sequence number), and carried
/// by every event of the op's span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId {
    /// Raw id of the issuing process.
    pub origin: u64,
    /// Per-origin sequence number.
    pub seq: u64,
}

impl TraceId {
    /// Creates the trace id of the `seq`-th request of process `origin`.
    pub fn new(origin: u64, seq: u64) -> Self {
        TraceId { origin, seq }
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}#{}", self.origin, self.seq)
    }
}

/// One round-stamped lifecycle event.
///
/// All variants carry the simulation round they happened in — traces are
/// round-stamped, never wall-clock-stamped, which is what keeps them
/// byte-identical across execution backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// The operation was issued at its origin process.
    Issued {
        /// The operation.
        op: TraceId,
        /// True for an enqueue/push, false for a dequeue/pop.
        insert: bool,
        /// Issue round.
        round: u64,
    },
    /// The op was committed into its node's next aggregation wave.
    WaveJoin {
        /// The operation.
        op: TraceId,
        /// Commit round (the round the wave opened).
        round: u64,
    },
    /// The anchor assigned a whole wave (one event per `(shard, wave)`,
    /// recorded at the anchor node — the boundary between the aggregation
    /// and assignment stages for every op of that wave).
    WaveAssigned {
        /// Wave epoch the anchor assigned.
        wave: u64,
        /// Assignment round at the anchor.
        round: u64,
    },
    /// The op's origin node resolved the anchor's run assignment to the
    /// op's position in the total order.
    Assigned {
        /// The operation.
        op: TraceId,
        /// Wave epoch the op was assigned in.
        wave: u64,
        /// Anchor-assigned `value(op)` (the order key's major).
        major: u64,
        /// Resolution round at the origin node.
        round: u64,
    },
    /// The op's DHT operation (put/get at its position key) was issued.
    DhtIssued {
        /// The operation.
        op: TraceId,
        /// Issue round.
        round: u64,
    },
    /// One distance-halving routing hop ([`TraceLevel::Full`] only).
    DhtHop {
        /// The operation.
        op: TraceId,
        /// Hop ordinal (1-based: the value of the routing progress counter
        /// *after* this hop).
        hop: u32,
        /// Round the hop was taken in.
        round: u64,
    },
    /// The DHT operation reached its responsible node and was applied.
    DhtApplied {
        /// The operation.
        op: TraceId,
        /// Total routing hops the operation traversed.
        hops: u32,
        /// Apply round.
        round: u64,
    },
    /// The operation completed (its history record was collected).
    Completed {
        /// The operation.
        op: TraceId,
        /// Completion round.
        round: u64,
    },
    /// A node entered an update phase (join/leave integration, Section IV).
    PhaseEnter {
        /// The phase number.
        phase: u64,
        /// Entry round.
        round: u64,
    },
    /// A node saw an update phase finish.
    PhaseOver {
        /// The phase number.
        phase: u64,
        /// Finish round.
        round: u64,
    },
    /// A joining process became an integrated member.
    ProcessJoined {
        /// Raw id of the process.
        process: u64,
        /// Integration round.
        round: u64,
    },
    /// A leaving process departed the system.
    ProcessLeft {
        /// Raw id of the process.
        process: u64,
        /// Departure round.
        round: u64,
    },
    /// A draining node handed its data over to its absorber.
    Absorbed {
        /// Raw id of the draining process.
        process: u64,
        /// Hand-over round.
        round: u64,
    },
}

impl TraceEvent {
    /// The round the event is stamped with.
    pub fn round(&self) -> u64 {
        match *self {
            TraceEvent::Issued { round, .. }
            | TraceEvent::WaveJoin { round, .. }
            | TraceEvent::WaveAssigned { round, .. }
            | TraceEvent::Assigned { round, .. }
            | TraceEvent::DhtIssued { round, .. }
            | TraceEvent::DhtHop { round, .. }
            | TraceEvent::DhtApplied { round, .. }
            | TraceEvent::Completed { round, .. }
            | TraceEvent::PhaseEnter { round, .. }
            | TraceEvent::PhaseOver { round, .. }
            | TraceEvent::ProcessJoined { round, .. }
            | TraceEvent::ProcessLeft { round, .. }
            | TraceEvent::Absorbed { round, .. } => round,
        }
    }

    /// The op the event belongs to (`None` for wave/phase/churn events).
    pub fn op(&self) -> Option<TraceId> {
        match *self {
            TraceEvent::Issued { op, .. }
            | TraceEvent::WaveJoin { op, .. }
            | TraceEvent::Assigned { op, .. }
            | TraceEvent::DhtIssued { op, .. }
            | TraceEvent::DhtHop { op, .. }
            | TraceEvent::DhtApplied { op, .. }
            | TraceEvent::Completed { op, .. } => Some(op),
            _ => None,
        }
    }

    /// Mixes the event into an FNV-1a accumulator (the log fingerprint).
    fn mix_into(&self, mix: &mut impl FnMut(u64)) {
        match *self {
            TraceEvent::Issued { op, insert, round } => {
                mix(1);
                mix(op.origin);
                mix(op.seq);
                mix(insert as u64);
                mix(round);
            }
            TraceEvent::WaveJoin { op, round } => {
                mix(2);
                mix(op.origin);
                mix(op.seq);
                mix(round);
            }
            TraceEvent::WaveAssigned { wave, round } => {
                mix(3);
                mix(wave);
                mix(round);
            }
            TraceEvent::Assigned {
                op,
                wave,
                major,
                round,
            } => {
                mix(4);
                mix(op.origin);
                mix(op.seq);
                mix(wave);
                mix(major);
                mix(round);
            }
            TraceEvent::DhtIssued { op, round } => {
                mix(5);
                mix(op.origin);
                mix(op.seq);
                mix(round);
            }
            TraceEvent::DhtHop { op, hop, round } => {
                mix(6);
                mix(op.origin);
                mix(op.seq);
                mix(hop as u64);
                mix(round);
            }
            TraceEvent::DhtApplied { op, hops, round } => {
                mix(7);
                mix(op.origin);
                mix(op.seq);
                mix(hops as u64);
                mix(round);
            }
            TraceEvent::Completed { op, round } => {
                mix(8);
                mix(op.origin);
                mix(op.seq);
                mix(round);
            }
            TraceEvent::PhaseEnter { phase, round } => {
                mix(9);
                mix(phase);
                mix(round);
            }
            TraceEvent::PhaseOver { phase, round } => {
                mix(10);
                mix(phase);
                mix(round);
            }
            TraceEvent::ProcessJoined { process, round } => {
                mix(11);
                mix(process);
                mix(round);
            }
            TraceEvent::ProcessLeft { process, round } => {
                mix(12);
                mix(process);
                mix(round);
            }
            TraceEvent::Absorbed { process, round } => {
                mix(13);
                mix(process);
                mix(round);
            }
        }
    }
}

/// One event together with the node (and its anchor shard) that recorded it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Dense index of the recording node.
    pub node: u64,
    /// Anchor shard of the recording node (the Chrome export's track).
    pub shard: u32,
    /// The event.
    pub event: TraceEvent,
}

/// Preallocated capacity of a node's lane-local event buffer.  The driver
/// drains every buffer once per round sweep, so steady state never grows it;
/// a single round would need to emit more than this many events at one node
/// to trigger a (amortised, still deterministic) regrowth.
pub const RECORDER_CAPACITY: usize = 1024;

/// The lane-local event recorder owned by one virtual node.
///
/// At [`TraceLevel::Off`] the buffer is a zero-capacity `Vec` (no
/// allocation) and the emission sites never construct an event — the whole
/// cost of the off path is the [`is_off`](Self::is_off) branch.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    level: TraceLevel,
    node: u64,
    shard: u32,
    buf: Vec<TraceRecord>,
}

impl TraceRecorder {
    /// Creates a recorder for node `node` in anchor shard `shard`.
    pub fn new(level: TraceLevel, node: u64, shard: u32) -> Self {
        TraceRecorder {
            level,
            node,
            shard,
            buf: if level.is_off() {
                Vec::new()
            } else {
                Vec::with_capacity(RECORDER_CAPACITY)
            },
        }
    }

    /// A disabled recorder (what nodes get before the cluster wires them).
    pub fn disabled() -> Self {
        TraceRecorder::new(TraceLevel::Off, 0, 0)
    }

    /// The recorder's level.
    #[inline]
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// True when recording is disabled — **the** guard every emission site
    /// branches on before constructing an event.
    #[inline]
    pub fn is_off(&self) -> bool {
        self.level.is_off()
    }

    /// True when per-hop DHT events are recorded.
    #[inline]
    pub fn hops(&self) -> bool {
        self.level.hops()
    }

    /// Re-tags the recorder with the node identity the cluster assigned
    /// (used when a node is constructed before its dense index is known).
    pub fn attach(&mut self, node: u64, shard: u32) {
        self.node = node;
        self.shard = shard;
    }

    /// Records one event.  Callers must guard with [`Self::is_off`].
    #[inline]
    pub fn emit(&mut self, event: TraceEvent) {
        debug_assert!(!self.is_off(), "emit() on a disabled recorder");
        self.buf.push(TraceRecord {
            node: self.node,
            shard: self.shard,
            event,
        });
    }

    /// Number of buffered (not yet drained) events.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Moves all buffered events into `log`, retaining the buffer's
    /// capacity (the once-per-sweep drain the cluster driver performs).
    pub fn drain_into(&mut self, log: &mut TraceLog) {
        log.records.append(&mut self.buf);
    }
}

/// The merged, deterministic event log of one execution.
///
/// Built by draining every node's [`TraceRecorder`] in the cluster's fixed
/// completion-sweep order; byte-identical across thread counts for the same
/// seed.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    records: Vec<TraceRecord>,
}

impl TraceLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Appends one record (driver-side events: completions, churn).
    pub fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// All records in merge order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Per-shard event counts, sorted by shard id (what the CI trace smoke
    /// asserts "≥ 1 event per populated shard lane" against).
    pub fn shard_event_counts(&self) -> Vec<(u32, u64)> {
        let mut counts: Vec<(u32, u64)> = Vec::new();
        for r in &self.records {
            match counts.binary_search_by_key(&r.shard, |&(s, _)| s) {
                Ok(i) => counts[i].1 += 1,
                Err(i) => counts.insert(i, (r.shard, 1)),
            }
        }
        counts
    }

    /// FNV-1a fingerprint over every field of every record in merge order —
    /// the cheap byte-identity check the determinism tests pin.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for r in &self.records {
            mix(r.node);
            mix(r.shard as u64);
            r.event.mix_into(&mut mix);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_defaults_off_and_gates() {
        assert_eq!(TraceLevel::default(), TraceLevel::Off);
        assert!(TraceLevel::Off.is_off());
        assert!(!TraceLevel::Off.spans());
        assert!(!TraceLevel::Off.hops());
        assert!(TraceLevel::Spans.spans());
        assert!(!TraceLevel::Spans.hops());
        assert!(TraceLevel::Full.spans());
        assert!(TraceLevel::Full.hops());
        assert!(TraceLevel::Off < TraceLevel::Spans && TraceLevel::Spans < TraceLevel::Full);
    }

    #[test]
    fn off_recorder_allocates_nothing() {
        let r = TraceRecorder::new(TraceLevel::Off, 3, 1);
        assert!(r.is_off());
        assert_eq!(r.buf.capacity(), 0, "off path must not allocate");
        let on = TraceRecorder::new(TraceLevel::Spans, 3, 1);
        assert!(on.buf.capacity() >= RECORDER_CAPACITY);
    }

    #[test]
    fn emit_drain_retains_capacity() {
        let mut r = TraceRecorder::new(TraceLevel::Full, 7, 2);
        r.emit(TraceEvent::Issued {
            op: TraceId::new(1, 0),
            insert: true,
            round: 5,
        });
        r.emit(TraceEvent::DhtHop {
            op: TraceId::new(1, 0),
            hop: 1,
            round: 6,
        });
        assert_eq!(r.pending(), 2);
        let cap = r.buf.capacity();
        let mut log = TraceLog::new();
        r.drain_into(&mut log);
        assert_eq!(r.pending(), 0);
        assert_eq!(r.buf.capacity(), cap, "drain must retain the buffer");
        assert_eq!(log.len(), 2);
        assert_eq!(log.records()[0].node, 7);
        assert_eq!(log.records()[0].shard, 2);
        assert_eq!(log.records()[0].event.op(), Some(TraceId::new(1, 0)));
        assert_eq!(log.records()[0].event.round(), 5);
    }

    #[test]
    fn fingerprint_is_order_and_content_sensitive() {
        let ev_a = TraceRecord {
            node: 0,
            shard: 0,
            event: TraceEvent::Issued {
                op: TraceId::new(0, 0),
                insert: true,
                round: 1,
            },
        };
        let ev_b = TraceRecord {
            node: 1,
            shard: 0,
            event: TraceEvent::Completed {
                op: TraceId::new(0, 0),
                round: 4,
            },
        };
        let mut ab = TraceLog::new();
        ab.push(ev_a);
        ab.push(ev_b);
        let mut ba = TraceLog::new();
        ba.push(ev_b);
        ba.push(ev_a);
        assert_ne!(ab.fingerprint(), ba.fingerprint());
        assert_ne!(ab.fingerprint(), TraceLog::new().fingerprint());
    }

    #[test]
    fn shard_event_counts_sorts_by_shard() {
        let mut log = TraceLog::new();
        for shard in [2u32, 0, 2, 1, 2] {
            log.push(TraceRecord {
                node: shard as u64,
                shard,
                event: TraceEvent::WaveAssigned { wave: 1, round: 1 },
            });
        }
        assert_eq!(log.shard_event_counts(), vec![(0, 1), (1, 1), (2, 3)]);
    }
}
