//! In-memory trace analysis: per-op span trees and per-stage round-latency
//! percentiles.
//!
//! [`TraceAnalysis::from_log`] folds a merged [`TraceLog`] into one
//! [`OpSpan`] per traced operation, checks span shapes, and computes the
//! p50/p99/p999 round-latency breakdown of the five protocol stages (see the
//! crate docs for the taxonomy).  Everything here is derived from
//! round-stamped events, so the analysis of a given seed is identical across
//! execution backends.

use crate::{TraceEvent, TraceId, TraceLog};

/// The reconstructed lifecycle of one traced operation.
///
/// Every boundary is a simulation round; `None` means the op never reached
/// that stage.  Three legitimate shapes exist:
///
/// * **full**: issued → wave-join → assigned → DHT issued → DHT applied →
///   completed (ordinary enqueues and matched dequeues),
/// * **anchor-settled**: issued → wave-join → assigned → completed with no
///   DHT boundaries (`⊥` dequeues answered straight from the assignment),
/// * **locally combined**: issued → completed only (the stack's combined
///   push/pop pairs, which never reach the anchor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpSpan {
    /// The operation.
    pub op: TraceId,
    /// True for an enqueue/push.
    pub insert: bool,
    /// Anchor shard of the op's origin node.
    pub shard: u32,
    /// Issue round.
    pub issued: Option<u64>,
    /// Round the op was committed into an aggregation wave.
    pub wave_join: Option<u64>,
    /// Round the op's wave was assigned at the anchor (looked up from the
    /// per-`(shard, wave)` [`TraceEvent::WaveAssigned`] instants).
    pub anchor_assigned: Option<u64>,
    /// Round the origin node resolved the op's position.
    pub assigned: Option<u64>,
    /// Wave epoch the op was assigned in.
    pub wave: u64,
    /// Anchor-assigned `value(op)`.
    pub major: u64,
    /// Round the op's DHT operation was issued.
    pub dht_issued: Option<u64>,
    /// Round the DHT operation was applied at the responsible node.
    pub dht_applied: Option<u64>,
    /// Total DHT routing hops (from [`TraceEvent::DhtApplied`]).
    pub hops: Option<u32>,
    /// Number of [`TraceEvent::DhtHop`] events observed
    /// ([`crate::TraceLevel::Full`] only; must equal `hops` there).
    pub hop_events: u32,
    /// Completion round.
    pub completed: Option<u64>,
}

impl OpSpan {
    fn new(op: TraceId) -> Self {
        OpSpan {
            op,
            insert: false,
            shard: 0,
            issued: None,
            wave_join: None,
            anchor_assigned: None,
            assigned: None,
            wave: 0,
            major: 0,
            dht_issued: None,
            dht_applied: None,
            hops: None,
            hop_events: 0,
            completed: None,
        }
    }

    /// True once the op has both ends of its span.
    pub fn is_complete(&self) -> bool {
        self.issued.is_some() && self.completed.is_some()
    }

    /// True for a span with an issue but no completion — an *orphan*.  At
    /// quiescence there must be none (the churn sweep's standing invariant).
    pub fn is_orphan(&self) -> bool {
        self.issued.is_some() && self.completed.is_none()
    }

    /// Checks the span tree's shape: stage boundaries must be present in
    /// one of the three legitimate shapes (full / anchor-settled / locally
    /// combined), rounds must be monotone along the chain, and at
    /// [`crate::TraceLevel::Full`] the hop-event count must match the
    /// recorded hop total.  Returns a human-readable violation, or `None`.
    pub fn shape_violation(&self, hop_events_recorded: bool) -> Option<String> {
        let issued = match self.issued {
            Some(r) => r,
            None => return Some(format!("{}: completed without an issue event", self.op)),
        };
        // Monotone boundaries along the chain of present stages.
        let chain = [
            ("issued", Some(issued)),
            ("wave-join", self.wave_join),
            ("anchor-assign", self.anchor_assigned),
            ("assigned", self.assigned),
            ("dht-issued", self.dht_issued),
            ("dht-applied", self.dht_applied),
            ("completed", self.completed),
        ];
        let mut last = ("issued", issued);
        for (name, round) in chain.into_iter().skip(1) {
            if let Some(r) = round {
                if r < last.1 {
                    return Some(format!(
                        "{}: {} (round {}) precedes {} (round {})",
                        self.op, name, r, last.0, last.1
                    ));
                }
                last = (name, r);
            }
        }
        // Later protocol stages require the earlier ones: a DHT boundary
        // without an assignment, or an assignment without a wave join, is a
        // leak in the recorder.
        if self.dht_applied.is_some() && self.dht_issued.is_none() {
            return Some(format!("{}: DHT applied but never issued", self.op));
        }
        if self.dht_issued.is_some() && self.assigned.is_none() {
            return Some(format!("{}: DHT issued without an assignment", self.op));
        }
        if self.assigned.is_some() && self.wave_join.is_none() {
            return Some(format!("{}: assigned without joining a wave", self.op));
        }
        if let (Some(hops), true) = (self.hops, hop_events_recorded) {
            if hops != self.hop_events {
                return Some(format!(
                    "{}: {} hop events but {} hops recorded at apply",
                    self.op, self.hop_events, hops
                ));
            }
        }
        None
    }

    /// True when the span tree is well-formed (see
    /// [`Self::shape_violation`]).
    pub fn well_formed(&self, hop_events_recorded: bool) -> bool {
        self.shape_violation(hop_events_recorded).is_none()
    }

    /// Rounds spent waiting for the node's next aggregation wave.
    /// (`None` also for malformed, backwards spans — those are reported by
    /// [`Self::shape_violation`], never unwrapped here.)
    pub fn queue_wait(&self) -> Option<u64> {
        self.wave_join?.checked_sub(self.issued?)
    }

    /// Rounds the op's batch spent travelling up the tree (to the anchor's
    /// assignment of its wave).
    pub fn aggregation(&self) -> Option<u64> {
        self.anchor_assigned?.checked_sub(self.wave_join?)
    }

    /// Rounds the assignment spent travelling back down the tree.
    pub fn assignment(&self) -> Option<u64> {
        self.assigned?.checked_sub(self.anchor_assigned?)
    }

    /// Rounds the op's DHT operation spent routing to its responsible node.
    pub fn dht_routing(&self) -> Option<u64> {
        self.dht_applied?.checked_sub(self.assigned?)
    }

    /// Rounds from the DHT apply to the op's completion.
    pub fn reply(&self) -> Option<u64> {
        self.completed?.checked_sub(self.dht_applied?)
    }

    /// Total rounds from issue to completion.
    pub fn total(&self) -> Option<u64> {
        self.completed?.checked_sub(self.issued?)
    }
}

/// Round-latency summary of one protocol stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageStats {
    /// Number of ops that went through the stage.
    pub count: u64,
    /// Median (nearest-rank).
    pub p50: u64,
    /// 99th percentile (nearest-rank).
    pub p99: u64,
    /// 99.9th percentile (nearest-rank).
    pub p999: u64,
    /// Maximum.
    pub max: u64,
}

impl StageStats {
    /// Summarises a sample set (destroys the input's order).
    pub fn from_samples(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return StageStats::default();
        }
        samples.sort_unstable();
        StageStats {
            count: samples.len() as u64,
            p50: percentile_sorted(samples, 0.50),
            p99: percentile_sorted(samples, 0.99),
            p999: percentile_sorted(samples, 0.999),
            max: *samples.last().unwrap(),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted, non-empty sample set.
pub fn percentile_sorted(sorted: &[u64], q: f64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The in-memory sink: per-op spans plus the per-stage latency breakdown.
#[derive(Debug, Clone, Default)]
pub struct TraceAnalysis {
    spans: Vec<OpSpan>,
    hop_events_recorded: bool,
    /// Issue → wave-join latency breakdown.
    pub queue_wait: StageStats,
    /// Wave-join → anchor-assignment latency breakdown.
    pub aggregation: StageStats,
    /// Anchor-assignment → resolved-position latency breakdown.
    pub assignment: StageStats,
    /// Assignment → DHT-apply latency breakdown.
    pub dht_routing: StageStats,
    /// DHT-apply → completion latency breakdown.
    pub reply: StageStats,
    /// Issue → completion latency breakdown.
    pub total: StageStats,
}

impl TraceAnalysis {
    /// Folds a merged log into per-op spans and stage percentiles.
    pub fn from_log(log: &TraceLog) -> Self {
        // (shard, wave) → anchor assignment round.
        let mut wave_rounds: Vec<((u32, u64), u64)> = Vec::new();
        for r in log.records() {
            if let TraceEvent::WaveAssigned { wave, round } = r.event {
                let key = (r.shard, wave);
                if let Err(i) = wave_rounds.binary_search_by_key(&key, |&(k, _)| k) {
                    wave_rounds.insert(i, (key, round));
                }
            }
        }
        let mut by_op: std::collections::BTreeMap<TraceId, OpSpan> =
            std::collections::BTreeMap::new();
        let mut hop_events_recorded = false;
        for r in log.records() {
            match r.event {
                TraceEvent::Issued { op, insert, round } => {
                    let s = by_op.entry(op).or_insert_with(|| OpSpan::new(op));
                    s.issued.get_or_insert(round);
                    s.insert = insert;
                    s.shard = r.shard;
                }
                TraceEvent::WaveJoin { op, round } => {
                    let s = by_op.entry(op).or_insert_with(|| OpSpan::new(op));
                    s.wave_join.get_or_insert(round);
                }
                TraceEvent::Assigned {
                    op,
                    wave,
                    major,
                    round,
                } => {
                    let s = by_op.entry(op).or_insert_with(|| OpSpan::new(op));
                    s.assigned.get_or_insert(round);
                    s.wave = wave;
                    s.major = major;
                    let key = (r.shard, wave);
                    if let Ok(j) = wave_rounds.binary_search_by_key(&key, |&(k, _)| k) {
                        s.anchor_assigned.get_or_insert(wave_rounds[j].1);
                    }
                }
                TraceEvent::DhtIssued { op, round } => {
                    let s = by_op.entry(op).or_insert_with(|| OpSpan::new(op));
                    s.dht_issued.get_or_insert(round);
                }
                TraceEvent::DhtHop { op, .. } => {
                    hop_events_recorded = true;
                    let s = by_op.entry(op).or_insert_with(|| OpSpan::new(op));
                    s.hop_events += 1;
                }
                TraceEvent::DhtApplied { op, hops, round } => {
                    let s = by_op.entry(op).or_insert_with(|| OpSpan::new(op));
                    s.dht_applied.get_or_insert(round);
                    s.hops.get_or_insert(hops);
                }
                TraceEvent::Completed { op, round } => {
                    let s = by_op.entry(op).or_insert_with(|| OpSpan::new(op));
                    s.completed.get_or_insert(round);
                }
                TraceEvent::WaveAssigned { .. }
                | TraceEvent::PhaseEnter { .. }
                | TraceEvent::PhaseOver { .. }
                | TraceEvent::ProcessJoined { .. }
                | TraceEvent::ProcessLeft { .. }
                | TraceEvent::Absorbed { .. } => {}
            }
        }
        let spans: Vec<OpSpan> = by_op.into_values().collect();
        let mut analysis = TraceAnalysis {
            spans,
            hop_events_recorded,
            ..TraceAnalysis::default()
        };
        let mut scratch: Vec<u64> = Vec::new();
        let mut summarise = |stage: fn(&OpSpan) -> Option<u64>, spans: &[OpSpan]| {
            scratch.clear();
            scratch.extend(spans.iter().filter_map(stage));
            StageStats::from_samples(&mut scratch)
        };
        analysis.queue_wait = summarise(OpSpan::queue_wait, &analysis.spans);
        analysis.aggregation = summarise(OpSpan::aggregation, &analysis.spans);
        analysis.assignment = summarise(OpSpan::assignment, &analysis.spans);
        analysis.dht_routing = summarise(OpSpan::dht_routing, &analysis.spans);
        analysis.reply = summarise(OpSpan::reply, &analysis.spans);
        analysis.total = summarise(OpSpan::total, &analysis.spans);
        analysis
    }

    /// All spans, sorted by op id.
    pub fn spans(&self) -> &[OpSpan] {
        &self.spans
    }

    /// Number of completed spans (must equal completed requests).
    pub fn completed_count(&self) -> usize {
        self.spans.iter().filter(|s| s.is_complete()).count()
    }

    /// Number of orphan spans (issued, never completed).  Zero at
    /// quiescence.
    pub fn orphan_count(&self) -> usize {
        self.spans.iter().filter(|s| s.is_orphan()).count()
    }

    /// True when per-hop events were present in the log.
    pub fn hop_events_recorded(&self) -> bool {
        self.hop_events_recorded
    }

    /// Sum of recorded routing hops over all spans (cross-checked against
    /// the nodes' `dht_hops` histogram by the invariant tests).
    pub fn total_hops(&self) -> u64 {
        self.spans
            .iter()
            .filter_map(|s| s.hops.map(u64::from))
            .sum()
    }

    /// First shape violation over all spans, or `None` when every span tree
    /// is well-formed.
    pub fn shape_violation(&self) -> Option<String> {
        self.spans
            .iter()
            .find_map(|s| s.shape_violation(self.hop_events_recorded))
    }

    /// The five protocol stages plus the issue→completion total, in
    /// taxonomy order, for table rendering.
    pub fn stage_table(&self) -> [(&'static str, StageStats); 6] {
        [
            ("queue-wait", self.queue_wait),
            ("aggregation", self.aggregation),
            ("assignment", self.assignment),
            ("dht-routing", self.dht_routing),
            ("reply", self.reply),
            ("total", self.total),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceRecord;

    fn rec(shard: u32, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            node: shard as u64,
            shard,
            event,
        }
    }

    fn full_span_log() -> TraceLog {
        let op = TraceId::new(3, 0);
        let mut log = TraceLog::new();
        log.push(rec(
            1,
            TraceEvent::Issued {
                op,
                insert: true,
                round: 2,
            },
        ));
        log.push(rec(1, TraceEvent::WaveJoin { op, round: 4 }));
        log.push(rec(1, TraceEvent::WaveAssigned { wave: 7, round: 9 }));
        log.push(rec(
            1,
            TraceEvent::Assigned {
                op,
                wave: 7,
                major: 12,
                round: 11,
            },
        ));
        log.push(rec(1, TraceEvent::DhtIssued { op, round: 11 }));
        log.push(rec(
            1,
            TraceEvent::DhtHop {
                op,
                hop: 1,
                round: 12,
            },
        ));
        log.push(rec(
            2,
            TraceEvent::DhtHop {
                op,
                hop: 2,
                round: 13,
            },
        ));
        log.push(rec(
            2,
            TraceEvent::DhtApplied {
                op,
                hops: 2,
                round: 14,
            },
        ));
        log.push(rec(2, TraceEvent::Completed { op, round: 14 }));
        log
    }

    #[test]
    fn folds_a_full_span() {
        let a = TraceAnalysis::from_log(&full_span_log());
        assert_eq!(a.spans().len(), 1);
        let s = a.spans()[0];
        assert!(s.is_complete() && !s.is_orphan());
        assert!(s.well_formed(true), "{:?}", s.shape_violation(true));
        assert_eq!(s.queue_wait(), Some(2));
        assert_eq!(s.aggregation(), Some(5));
        assert_eq!(s.assignment(), Some(2));
        assert_eq!(s.dht_routing(), Some(3));
        assert_eq!(s.reply(), Some(0));
        assert_eq!(s.total(), Some(12));
        assert_eq!(s.hops, Some(2));
        assert_eq!(s.hop_events, 2);
        assert_eq!(a.completed_count(), 1);
        assert_eq!(a.orphan_count(), 0);
        assert_eq!(a.total_hops(), 2);
        assert_eq!(a.total.p50, 12);
        assert_eq!(a.total.max, 12);
        assert!(a.shape_violation().is_none());
    }

    #[test]
    fn locally_combined_and_bottom_shapes_are_well_formed() {
        let mut log = TraceLog::new();
        let pair = TraceId::new(0, 0);
        log.push(rec(
            0,
            TraceEvent::Issued {
                op: pair,
                insert: true,
                round: 3,
            },
        ));
        log.push(rec(0, TraceEvent::Completed { op: pair, round: 3 }));
        let bottom = TraceId::new(0, 1);
        log.push(rec(
            0,
            TraceEvent::Issued {
                op: bottom,
                insert: false,
                round: 4,
            },
        ));
        log.push(rec(
            0,
            TraceEvent::WaveJoin {
                op: bottom,
                round: 4,
            },
        ));
        log.push(rec(
            0,
            TraceEvent::Assigned {
                op: bottom,
                wave: 1,
                major: 0,
                round: 8,
            },
        ));
        log.push(rec(
            0,
            TraceEvent::Completed {
                op: bottom,
                round: 8,
            },
        ));
        let a = TraceAnalysis::from_log(&log);
        assert_eq!(a.completed_count(), 2);
        assert!(a.shape_violation().is_none());
        // Neither shape contributes DHT-stage samples.
        assert_eq!(a.dht_routing.count, 0);
        assert_eq!(a.queue_wait.count, 1);
    }

    #[test]
    fn orphans_and_violations_are_detected() {
        let mut log = full_span_log();
        log.push(rec(
            0,
            TraceEvent::Issued {
                op: TraceId::new(9, 9),
                insert: false,
                round: 20,
            },
        ));
        let a = TraceAnalysis::from_log(&log);
        assert_eq!(a.orphan_count(), 1);

        // A completion that precedes its issue is a shape violation.
        let mut bad = TraceLog::new();
        let op = TraceId::new(1, 1);
        bad.push(rec(
            0,
            TraceEvent::Issued {
                op,
                insert: true,
                round: 10,
            },
        ));
        bad.push(rec(0, TraceEvent::Completed { op, round: 9 }));
        let a = TraceAnalysis::from_log(&bad);
        assert!(a.shape_violation().unwrap().contains("precedes"));

        // Hop-count mismatch at Full level.
        let mut mismatch = full_span_log();
        mismatch.push(rec(
            2,
            TraceEvent::DhtHop {
                op: TraceId::new(3, 0),
                hop: 3,
                round: 14,
            },
        ));
        let a = TraceAnalysis::from_log(&mismatch);
        assert!(a.shape_violation().unwrap().contains("hop events"));
    }

    #[test]
    fn percentiles_nearest_rank() {
        let sorted: Vec<u64> = (1..=1000).collect();
        assert_eq!(percentile_sorted(&sorted, 0.50), 500);
        assert_eq!(percentile_sorted(&sorted, 0.99), 990);
        assert_eq!(percentile_sorted(&sorted, 0.999), 999);
        assert_eq!(percentile_sorted(&[7], 0.999), 7);
        let mut samples = vec![4u64, 1, 9];
        let s = StageStats::from_samples(&mut samples);
        assert_eq!((s.count, s.p50, s.max), (3, 4, 9));
        assert_eq!(
            StageStats::from_samples(&mut Vec::new()),
            StageStats::default()
        );
    }
}
