//! # skueue-dht — the consistent-hashing storage layer
//!
//! Section II-B of the Skueue paper: queue elements are stored in a
//! distributed hash table.  Every element is assigned a unique *position*
//! `p ∈ ℕ₀` by the protocol; the position is hashed to a key
//! `k(p) ∈ [0, 1)`; the virtual node responsible for the key interval
//! `[v, succ(v))` stores the element.  Two operations are needed:
//!
//! * `PUT(e, k)` — inserts element `e` under key `k`,
//! * `GET(k, v)` — removes the element under key `k` and delivers it to the
//!   requester `v`.  Because the model is fully asynchronous, a `GET` may
//!   arrive **before** its matching `PUT`; in that case it *parks* at the
//!   responsible node until the `PUT` arrives (guaranteed — no message loss).
//!
//! The stack variant (Section VI) additionally tags entries with a monotone
//! *ticket* so that a position that is reused after pop/push cycles stays
//! unambiguous: a `POP` assigned `(p, t)` removes the entry at position `p`
//! with the largest ticket `≤ t`.
//!
//! This crate holds the *per-node storage state machine* ([`NodeStore`]) and
//! the load-fairness accounting used to reproduce Corollary 19; routing of
//! PUT/GET messages is done by `skueue-core` over `skueue-overlay`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod element;
pub mod fairness;
pub mod store;

pub use element::{Element, Payload, StoredEntry};
pub use fairness::{load_stats, LoadStats};
pub use store::{GetOutcome, NodeStore, PendingGet, SatisfiedGet};
