//! Per-node DHT storage state machine.
//!
//! [`NodeStore`] is the piece of state every virtual node keeps for the DHT:
//! the entries it is responsible for, and the `GET` requests that arrived
//! before their matching `PUT` and are parked until it shows up.  All methods
//! are pure local state transitions — message transport is the protocol's
//! job — which makes the storage behaviour easy to unit- and property-test
//! in isolation.

use crate::element::{Element, Payload, StoredEntry};
use serde::{Deserialize, Serialize};
use skueue_overlay::Label;
use skueue_sim::ids::{NodeId, RequestId};
use std::collections::BTreeMap;

/// A `GET` that is waiting at the responsible node for its `PUT` to arrive
/// ("each GET request waits at the node responsible for the position k until
/// the corresponding PUT request has arrived").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingGet {
    /// The dequeue/pop request this GET serves.
    pub request: RequestId,
    /// The node that issued the GET and expects the element back.
    pub requester: NodeId,
    /// Maximum admissible ticket (stack variant); `u64::MAX` for the queue.
    pub max_ticket: u64,
}

/// Result of applying a `GET` to the local store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GetOutcome<T = u64> {
    /// The element was present and has been removed; return it to the
    /// requester.
    Found(StoredEntry<T>),
    /// The matching `PUT` has not arrived yet; the GET is parked.
    Parked,
}

/// A satisfied pending GET: the parked request plus the entry that satisfied
/// it (produced when a later `PUT` arrives).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SatisfiedGet<T = u64> {
    /// The parked GET.
    pub get: PendingGet,
    /// The entry handed to it.
    pub entry: StoredEntry<T>,
}

/// DHT state of one virtual node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeStore<T = u64> {
    /// Stored entries, keyed by position.  The stack variant may park several
    /// tickets under the same position, hence a `Vec` (kept sorted by
    /// ticket, ascending).
    entries: BTreeMap<u64, Vec<StoredEntry<T>>>,
    /// Parked GETs keyed by position (FIFO per position).
    pending: BTreeMap<u64, Vec<PendingGet>>,
    /// Total PUTs applied (for statistics / fairness accounting).
    puts_applied: u64,
    /// Total GETs answered (immediately or after parking).
    gets_answered: u64,
}

impl<T> Default for NodeStore<T> {
    fn default() -> Self {
        NodeStore {
            entries: BTreeMap::new(),
            pending: BTreeMap::new(),
            puts_applied: 0,
            gets_answered: 0,
        }
    }
}

impl<T: Payload> NodeStore<T> {
    /// Creates an empty store.
    pub fn new() -> Self {
        NodeStore::default()
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of parked GETs.
    pub fn pending_gets(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }

    /// Total PUTs applied to this store.
    pub fn puts_applied(&self) -> u64 {
        self.puts_applied
    }

    /// Total GETs answered by this store.
    pub fn gets_answered(&self) -> u64 {
        self.gets_answered
    }

    /// Applies a `PUT` and returns any parked GETs it satisfies.
    ///
    /// For the queue each position holds at most one element and at most the
    /// parked GETs for exactly that position match.  For the stack the entry
    /// satisfies the *oldest* parked GET whose `max_ticket` admits it.
    pub fn put(&mut self, entry: StoredEntry<T>) -> Vec<SatisfiedGet<T>> {
        let mut satisfied = Vec::new();
        self.put_into(entry, &mut satisfied);
        satisfied
    }

    /// Allocation-free core of [`Self::put`]: satisfied GETs are appended to
    /// `satisfied` instead of returned in a fresh `Vec`.  This is the entry
    /// point the batched Stage-4 delivery path uses so that applying a whole
    /// `DhtBatch` costs one sink vector, not one allocation per satisfied op.
    pub fn put_into(&mut self, entry: StoredEntry<T>, satisfied: &mut Vec<SatisfiedGet<T>>) {
        self.puts_applied += 1;
        let position = entry.position;
        // Check parked GETs first: the new entry may be consumed immediately.
        if let Some(waiters) = self.pending.get_mut(&position) {
            if let Some(idx) = waiters.iter().position(|g| entry.ticket <= g.max_ticket) {
                let get = waiters.remove(idx);
                if waiters.is_empty() {
                    self.pending.remove(&position);
                }
                self.gets_answered += 1;
                satisfied.push(SatisfiedGet { get, entry });
                return;
            }
        }
        let slot = self.entries.entry(position).or_default();
        slot.push(entry);
        slot.sort_by_key(|e| e.ticket);
    }

    /// Bulk `PUT`: applies the entries in order (one pass) and returns every
    /// parked GET they satisfy, in application order.
    pub fn put_many(
        &mut self,
        entries: impl IntoIterator<Item = StoredEntry<T>>,
    ) -> Vec<SatisfiedGet<T>> {
        let mut satisfied = Vec::new();
        for entry in entries {
            self.put_into(entry, &mut satisfied);
        }
        satisfied
    }

    /// Bulk `GET`: applies `(position, get)` pairs in order (one pass).
    /// Found entries are appended to `satisfied` paired with their GET;
    /// everything else is parked, exactly like per-op [`Self::get`] calls.
    pub fn get_many(
        &mut self,
        gets: impl IntoIterator<Item = (u64, PendingGet)>,
        satisfied: &mut Vec<SatisfiedGet<T>>,
    ) {
        for (position, get) in gets {
            match self.get(position, get.max_ticket, get.request, get.requester) {
                GetOutcome::Found(entry) => satisfied.push(SatisfiedGet { get, entry }),
                GetOutcome::Parked => {}
            }
        }
    }

    /// Applies a `GET` for `position` with the given ticket bound.
    ///
    /// Removes and returns the stored entry with the largest ticket
    /// `≤ max_ticket` if one exists; otherwise parks the GET.
    pub fn get(
        &mut self,
        position: u64,
        max_ticket: u64,
        request: RequestId,
        requester: NodeId,
    ) -> GetOutcome<T> {
        if let Some(slot) = self.entries.get_mut(&position) {
            // Largest admissible ticket (entries are sorted ascending).
            if let Some(idx) = slot.iter().rposition(|e| e.ticket <= max_ticket) {
                let entry = slot.remove(idx);
                if slot.is_empty() {
                    self.entries.remove(&position);
                }
                self.gets_answered += 1;
                return GetOutcome::Found(entry);
            }
        }
        self.pending.entry(position).or_default().push(PendingGet {
            request,
            requester,
            max_ticket,
        });
        GetOutcome::Parked
    }

    /// Queue-flavoured `GET` (no ticket bound).
    pub fn get_queue(
        &mut self,
        position: u64,
        request: RequestId,
        requester: NodeId,
    ) -> GetOutcome<T> {
        self.get(position, u64::MAX, request, requester)
    }

    /// Returns (without removing) the entries stored for a position.
    pub fn peek(&self, position: u64) -> &[StoredEntry<T>] {
        self.entries
            .get(&position)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Extracts every stored entry **and** parked GET whose position-key
    /// (computed by `key_of`) lies in the ring interval `[lo, hi)` — used to
    /// hand data over to a joining node (or to a leaving node's replacement).
    pub fn extract_range_with_keys(
        &mut self,
        lo: Label,
        hi: Label,
        key_of: impl Fn(u64) -> Label,
    ) -> (Vec<StoredEntry<T>>, Vec<(u64, PendingGet)>) {
        let mut moved_entries = Vec::new();
        let mut keep_entries = BTreeMap::new();
        for (position, slot) in std::mem::take(&mut self.entries) {
            if key_of(position).in_interval(lo, hi) {
                moved_entries.extend(slot);
            } else {
                keep_entries.insert(position, slot);
            }
        }
        self.entries = keep_entries;

        let mut moved_pending = Vec::new();
        let mut keep_pending = BTreeMap::new();
        for (position, waiters) in std::mem::take(&mut self.pending) {
            if key_of(position).in_interval(lo, hi) {
                moved_pending.extend(waiters.into_iter().map(|g| (position, g)));
            } else {
                keep_pending.insert(position, waiters);
            }
        }
        self.pending = keep_pending;
        (moved_entries, moved_pending)
    }

    /// Absorbs entries and parked GETs (e.g. handed over by another node).
    /// Parked GETs that can be satisfied by absorbed (or already present)
    /// entries are answered and returned.
    pub fn absorb(
        &mut self,
        entries: Vec<StoredEntry<T>>,
        pending: Vec<(u64, PendingGet)>,
    ) -> Vec<SatisfiedGet<T>> {
        // `put_many` counts these as fresh PUTs; undo the double count for
        // handovers so fairness statistics track protocol-level PUTs.
        let absorbed = entries.len() as u64;
        let mut satisfied = self.put_many(entries);
        self.puts_applied -= absorbed;
        self.get_many(pending, &mut satisfied);
        satisfied
    }

    /// Iterates over all stored entries.
    pub fn iter_entries(&self) -> impl Iterator<Item = &StoredEntry<T>> {
        self.entries.values().flat_map(|v| v.iter())
    }

    /// Drains the whole store — every entry and every parked GET — in key
    /// order.  This is the leave hand-over entry point: the departing node's
    /// state *moves* to its absorber (no payload clones), leaving the store
    /// empty for the drain role.
    pub fn take_all(&mut self) -> (Vec<StoredEntry<T>>, Vec<(u64, PendingGet)>) {
        let entries = std::mem::take(&mut self.entries)
            .into_values()
            .flatten()
            .collect();
        let pending = std::mem::take(&mut self.pending)
            .into_iter()
            .flat_map(|(p, waiters)| waiters.into_iter().map(move |g| (p, g)))
            .collect();
        (entries, pending)
    }

    /// Iterates over all parked GETs with their positions.
    pub fn iter_pending(&self) -> impl Iterator<Item = (u64, &PendingGet)> {
        self.pending
            .iter()
            .flat_map(|(&p, v)| v.iter().map(move |g| (p, g)))
    }
}

/// Convenience constructor for queue elements used in tests and examples.
pub fn queue_entry<T: Payload>(
    position: u64,
    key: Label,
    id: RequestId,
    value: T,
) -> StoredEntry<T> {
    StoredEntry::queue(position, key, Element::new(id, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use skueue_sim::ids::ProcessId;

    fn rid(s: u64) -> RequestId {
        RequestId::new(ProcessId(1), s)
    }

    fn key(x: f64) -> Label {
        Label::from_f64(x)
    }

    #[test]
    fn put_then_get_returns_element() {
        let mut store = NodeStore::new();
        let entry = queue_entry(5, key(0.3), rid(0), 77u64);
        assert!(store.put(entry.clone()).is_empty());
        assert_eq!(store.len(), 1);
        match store.get_queue(5, rid(1), NodeId(9)) {
            GetOutcome::Found(found) => assert_eq!(found, entry),
            other @ GetOutcome::Parked => panic!("unexpected {other:?}"),
        }
        assert!(store.is_empty());
        assert_eq!(store.puts_applied(), 1);
        assert_eq!(store.gets_answered(), 1);
    }

    #[test]
    fn get_before_put_parks_and_is_satisfied_later() {
        let mut store = NodeStore::new();
        assert_eq!(store.get_queue(7, rid(4), NodeId(2)), GetOutcome::Parked);
        assert_eq!(store.pending_gets(), 1);
        let entry = queue_entry(7, key(0.1), rid(0), 13u64);
        let satisfied = store.put(entry.clone());
        assert_eq!(satisfied.len(), 1);
        assert_eq!(satisfied[0].get.request, rid(4));
        assert_eq!(satisfied[0].get.requester, NodeId(2));
        assert_eq!(satisfied[0].entry, entry);
        assert_eq!(store.pending_gets(), 0);
        assert!(store.is_empty(), "entry must not also be stored");
    }

    #[test]
    fn parked_gets_are_served_fifo_per_position() {
        let mut store = NodeStore::<u64>::new();
        store.get_queue(3, rid(10), NodeId(1));
        store.get_queue(3, rid(11), NodeId(2));
        let sat = store.put(queue_entry(3, key(0.2), rid(0), 1));
        assert_eq!(sat.len(), 1);
        assert_eq!(sat[0].get.request, rid(10));
        let sat = store.put(queue_entry(3, key(0.2), rid(1), 2));
        assert_eq!(sat[0].get.request, rid(11));
    }

    #[test]
    fn gets_for_missing_positions_do_not_cross_talk() {
        let mut store = NodeStore::new();
        store.put(queue_entry(1, key(0.5), rid(0), 10u64));
        assert_eq!(store.get_queue(2, rid(1), NodeId(0)), GetOutcome::Parked);
        // The entry for position 1 is untouched.
        assert_eq!(store.len(), 1);
        assert_eq!(store.peek(1).len(), 1);
        assert!(store.peek(2).is_empty());
    }

    #[test]
    fn stack_ticket_selects_largest_admissible() {
        let mut store = NodeStore::new();
        let e1 = StoredEntry::stack(4, key(0.6), 10, Element::new(rid(0), 100u64));
        let e2 = StoredEntry::stack(4, key(0.6), 20, Element::new(rid(1), 200));
        store.put(e1);
        store.put(e2);
        // max_ticket 15 only admits ticket 10.
        match store.get(4, 15, rid(2), NodeId(0)) {
            GetOutcome::Found(e) => assert_eq!(e.ticket, 10),
            other => panic!("unexpected {other:?}"),
        }
        // max_ticket 25 admits the remaining ticket 20.
        match store.get(4, 25, rid(3), NodeId(0)) {
            GetOutcome::Found(e) => assert_eq!(e.ticket, 20),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stack_get_with_too_small_ticket_parks() {
        let mut store = NodeStore::new();
        store.put(StoredEntry::stack(
            4,
            key(0.6),
            10,
            Element::new(rid(0), 1u64),
        ));
        assert_eq!(store.get(4, 5, rid(1), NodeId(0)), GetOutcome::Parked);
        // A later put with an admissible ticket satisfies it.
        let sat = store.put(StoredEntry::stack(4, key(0.6), 3, Element::new(rid(2), 2)));
        assert_eq!(sat.len(), 1);
        assert_eq!(sat[0].entry.ticket, 3);
        // The original ticket-10 entry is still there.
        assert_eq!(store.peek(4).len(), 1);
        assert_eq!(store.peek(4)[0].ticket, 10);
    }

    #[test]
    fn put_many_matches_sequential_puts() {
        let mut a = NodeStore::new();
        let mut b = NodeStore::new();
        // Two parked GETs, then a bulk PUT covering both plus a new position.
        for store in [&mut a, &mut b] {
            store.get_queue(1, rid(10), NodeId(1));
            store.get_queue(2, rid(11), NodeId(2));
        }
        let entries = vec![
            queue_entry(1, key(0.1), rid(0), 100u64),
            queue_entry(2, key(0.2), rid(1), 200),
            queue_entry(3, key(0.3), rid(2), 300),
        ];
        let bulk = a.put_many(entries.clone());
        let mut sequential = Vec::new();
        for e in entries {
            sequential.extend(b.put(e));
        }
        assert_eq!(bulk, sequential);
        assert_eq!(bulk.len(), 2);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.puts_applied(), 3);
        assert_eq!(a.gets_answered(), 2);
    }

    #[test]
    fn get_many_finds_and_parks_in_one_pass() {
        let mut store = NodeStore::new();
        store.put(queue_entry(5, key(0.5), rid(0), 50u64));
        let mut satisfied = Vec::new();
        store.get_many(
            vec![
                (
                    5,
                    PendingGet {
                        request: rid(1),
                        requester: NodeId(1),
                        max_ticket: u64::MAX,
                    },
                ),
                (
                    6,
                    PendingGet {
                        request: rid(2),
                        requester: NodeId(2),
                        max_ticket: u64::MAX,
                    },
                ),
            ],
            &mut satisfied,
        );
        assert_eq!(satisfied.len(), 1);
        assert_eq!(satisfied[0].get.request, rid(1));
        assert_eq!(satisfied[0].entry.element.value, 50);
        assert_eq!(store.pending_gets(), 1, "the miss must be parked");
    }

    #[test]
    fn extract_range_with_keys_moves_matching_entries_and_gets() {
        let mut store = NodeStore::new();
        // Keys: position p -> (p mod 10)/10 for this test.
        let key_of = |p: u64| Label::from_f64((p % 10) as f64 / 10.0);
        for p in 0..10u64 {
            store.put(StoredEntry::queue(p, key_of(p), Element::new(rid(p), p)));
        }
        // Parked GET at position 45 (key 0.5, inside the handed-over range).
        store.get_queue(45, rid(100), NodeId(7));
        let (entries, pending) =
            store.extract_range_with_keys(Label::from_f64(0.3), Label::from_f64(0.6), key_of);
        let moved: Vec<u64> = entries.iter().map(|e| e.position).collect();
        assert_eq!(moved, vec![3, 4, 5]);
        assert_eq!(store.len(), 7);
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].0, 45);
        assert_eq!(store.pending_gets(), 0);
    }

    #[test]
    fn absorb_hands_entries_to_parked_gets() {
        let mut a = NodeStore::new();
        let mut b = NodeStore::new();
        // b is the new responsible node and already has a parked GET.
        assert_eq!(b.get_queue(9, rid(5), NodeId(3)), GetOutcome::Parked);
        a.put(queue_entry(9, key(0.9), rid(0), 900u64));
        let (entries, pending) =
            a.extract_range_with_keys(Label::from_f64(0.8), Label::from_f64(0.99), |_| key(0.9));
        assert_eq!(entries.len(), 1);
        let satisfied = b.absorb(entries, pending);
        assert_eq!(satisfied.len(), 1);
        assert_eq!(satisfied[0].get.request, rid(5));
        assert!(b.is_empty());
    }

    #[test]
    fn absorb_does_not_inflate_put_statistics() {
        let mut store = NodeStore::new();
        store.absorb(vec![queue_entry(1, key(0.1), rid(0), 1u64)], vec![]);
        assert_eq!(store.puts_applied(), 0);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn iterators_cover_everything() {
        let mut store = NodeStore::new();
        store.put(queue_entry(1, key(0.1), rid(0), 1u64));
        store.put(queue_entry(2, key(0.2), rid(1), 2));
        store.get_queue(3, rid(2), NodeId(0));
        assert_eq!(store.iter_entries().count(), 2);
        assert_eq!(store.iter_pending().count(), 1);
        assert_eq!(store.iter_pending().next().unwrap().0, 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every PUT is eventually consumed by exactly one GET and vice versa,
        /// regardless of the interleaving order (the GET-before-PUT race).
        #[test]
        fn prop_put_get_matching_is_exact(order in proptest::collection::vec(any::<bool>(), 1..60)) {
            let mut store = NodeStore::new();
            let mut puts_issued = 0u64;
            let mut gets_issued = 0u64;
            let mut answered = 0u64;
            // Interleave puts and gets for sequential positions according to
            // the random `order` bitstring.
            for (i, &is_put) in order.iter().enumerate() {
                let pos = (i as u64) / 2; // positions repeat so puts and gets collide
                if is_put {
                    let sat = store.put(queue_entry(pos, key(0.5), rid(1000 + i as u64), i as u64));
                    answered += sat.len() as u64;
                    puts_issued += 1;
                } else {
                    match store.get_queue(pos, rid(i as u64), NodeId(0)) {
                        GetOutcome::Found(_) => answered += 1,
                        GetOutcome::Parked => {}
                    }
                    gets_issued += 1;
                }
            }
            // Conservation: answered GETs + parked GETs == issued GETs.
            prop_assert_eq!(answered + store.pending_gets() as u64, gets_issued);
            // Conservation: stored entries + answered == issued PUTs.
            prop_assert_eq!(store.len() as u64 + answered, puts_issued);
        }

        /// extract + absorb between two stores conserves entries and parked GETs.
        #[test]
        fn prop_handover_conserves_state(
            positions in proptest::collection::vec(0u64..50, 1..40),
            split in 0.0f64..1.0,
        ) {
            let key_of = |p: u64| Label::from_f64((p as f64 * 0.019_37) % 1.0);
            let mut a = NodeStore::new();
            for (i, &p) in positions.iter().enumerate() {
                a.put(StoredEntry::queue(p, key_of(p), Element::new(rid(i as u64), p)));
            }
            let before = a.len();
            let mut b = NodeStore::new();
            let (entries, pending) = a.extract_range_with_keys(
                Label::from_f64(0.0),
                Label::from_f64(split.min(0.999)),
                key_of,
            );
            let sat = b.absorb(entries, pending);
            prop_assert_eq!(a.len() + b.len() + sat.len(), before);
        }
    }
}
