//! Load-fairness accounting.
//!
//! Lemma 4 / Corollary 19 of the paper: consistent hashing is *fair* — every
//! node stores the same number of elements in expectation, so Skueue spreads
//! its data evenly.  Experiment E7 measures this by taking the per-node
//! element counts at the end of an enqueue-heavy run and summarising their
//! distribution with [`load_stats`].

use serde::{Deserialize, Serialize};

/// Summary of how evenly a load (e.g. stored elements) is spread over nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadStats {
    /// Number of nodes considered.
    pub nodes: usize,
    /// Total load.
    pub total: u64,
    /// Mean load per node.
    pub mean: f64,
    /// Minimum load of any node.
    pub min: u64,
    /// Maximum load of any node.
    pub max: u64,
    /// Population standard deviation of the per-node load.
    pub stddev: f64,
    /// `max / mean` — the headline imbalance factor (1.0 is perfect).
    pub max_over_mean: f64,
    /// Coefficient of variation (`stddev / mean`).
    pub cv: f64,
}

/// Computes load statistics from per-node counts.
///
/// Returns `None` for an empty slice.
pub fn load_stats(counts: &[u64]) -> Option<LoadStats> {
    if counts.is_empty() {
        return None;
    }
    let nodes = counts.len();
    let total: u64 = counts.iter().sum();
    let mean = total as f64 / nodes as f64;
    let min = *counts.iter().min().expect("non-empty");
    let max = *counts.iter().max().expect("non-empty");
    let variance = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / nodes as f64;
    let stddev = variance.sqrt();
    let max_over_mean = if mean > 0.0 { max as f64 / mean } else { 0.0 };
    let cv = if mean > 0.0 { stddev / mean } else { 0.0 };
    Some(LoadStats {
        nodes,
        total,
        mean,
        min,
        max,
        stddev,
        max_over_mean,
        cv,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_input_gives_none() {
        assert!(load_stats(&[]).is_none());
    }

    #[test]
    fn uniform_load_is_perfectly_fair() {
        let stats = load_stats(&[5, 5, 5, 5]).unwrap();
        assert_eq!(stats.total, 20);
        assert_eq!(stats.mean, 5.0);
        assert_eq!(stats.min, 5);
        assert_eq!(stats.max, 5);
        assert_eq!(stats.stddev, 0.0);
        assert_eq!(stats.max_over_mean, 1.0);
        assert_eq!(stats.cv, 0.0);
    }

    #[test]
    fn skewed_load_is_detected() {
        let stats = load_stats(&[0, 0, 0, 100]).unwrap();
        assert_eq!(stats.mean, 25.0);
        assert_eq!(stats.max_over_mean, 4.0);
        assert!(stats.cv > 1.0);
    }

    #[test]
    fn all_zero_load() {
        let stats = load_stats(&[0, 0, 0]).unwrap();
        assert_eq!(stats.total, 0);
        assert_eq!(stats.max_over_mean, 0.0);
        assert_eq!(stats.cv, 0.0);
    }

    #[test]
    fn consistent_hashing_balances_random_keys() {
        // Simulate hashing 50k keys onto 100 nodes via a multiplicative hash;
        // the imbalance factor should stay modest (this is the behaviour
        // Lemma 4 formalises).
        let nodes = 100usize;
        let mut counts = vec![0u64; nodes];
        let mut x = 0x12345678u64;
        for _ in 0..50_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            counts[(x >> 32) as usize % nodes] += 1;
        }
        let stats = load_stats(&counts).unwrap();
        assert!(
            stats.max_over_mean < 1.5,
            "imbalance {:.2}",
            stats.max_over_mean
        );
        assert!(stats.cv < 0.2, "cv {:.3}", stats.cv);
    }

    proptest! {
        #[test]
        fn prop_bounds_are_consistent(counts in proptest::collection::vec(0u64..10_000, 1..200)) {
            let stats = load_stats(&counts).unwrap();
            prop_assert!(stats.min <= stats.max);
            prop_assert!(stats.mean >= stats.min as f64 - 1e-9);
            prop_assert!(stats.mean <= stats.max as f64 + 1e-9);
            prop_assert_eq!(stats.total, counts.iter().sum::<u64>());
            prop_assert!(stats.stddev >= 0.0);
            if stats.mean > 0.0 {
                prop_assert!(stats.max_over_mean >= 1.0 - 1e-9);
            }
        }
    }
}
