//! Elements stored in the DHT, and the [`Payload`] trait their application
//! values implement.

use serde::{Deserialize, Serialize};
use skueue_overlay::Label;
use skueue_sim::ids::RequestId;
use std::fmt;

/// Application payload carried by a queue/stack element.
///
/// The protocol is payload-agnostic — it only routes, aggregates and orders
/// elements — so anything a deployment wants to move through the queue
/// qualifies as long as it can be
///
/// * `Clone`d (completion records and ticket outcomes carry the payload out
///   of the structure; the *protocol path* itself moves payloads and never
///   clones),
/// * compared and hashed (`Ord + Hash` — the verifier's matching and the
///   checkers' payload round-trip checks),
/// * printed for diagnostics (`Debug`),
/// * defaulted (`Default` — the payload slot of a `⊥` dequeue record; for
///   `u64` this is `0`, which keeps pre-generic histories bit-identical).
///
/// The trait is blanket-implemented: any `Clone + Ord + Hash + Debug +
/// Default + Send + 'static` type is a payload — `u64`, `String`, `Vec<u8>`,
/// or an application job struct.  (`Send` because the simulation's parallel
/// backend ships each anchor shard's nodes — and therefore the payloads they
/// hold — to worker threads.)
pub trait Payload:
    Clone + Ord + Eq + std::hash::Hash + fmt::Debug + Default + Send + 'static
{
}

impl<T> Payload for T where
    T: Clone + Ord + Eq + std::hash::Hash + fmt::Debug + Default + Send + 'static
{
}

/// An element of the universe `E` that can be put into the distributed
/// queue or stack.
///
/// The paper assumes w.l.o.g. that every element is enqueued at most once —
/// "an easy way to achieve this is to make the calling process and the
/// current count of requests performed a part of e".  [`Element`] does
/// exactly that: it carries the [`RequestId`] of the `ENQUEUE()`/`PUSH()`
/// that created it plus an application payload of type `T`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Element<T = u64> {
    /// The request that enqueued/pushed this element.
    pub id: RequestId,
    /// Application payload.
    pub value: T,
}

impl<T: Payload> Element<T> {
    /// Creates an element.
    pub fn new(id: RequestId, value: T) -> Self {
        Element { id, value }
    }
}

impl<T: Payload> fmt::Display for Element<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e[{}={:?}]", self.id, self.value)
    }
}

/// An element as stored at its responsible node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredEntry<T = u64> {
    /// Queue/stack position the element was assigned by the anchor.
    pub position: u64,
    /// DHT key `k(position)` (kept so data handover on `JOIN()`/`LEAVE()`
    /// does not need to re-hash).
    pub key: Label,
    /// Ticket of the stack variant; `0` for queue elements.
    pub ticket: u64,
    /// The element itself.
    pub element: Element<T>,
}

impl<T: Payload> StoredEntry<T> {
    /// Creates a queue entry (ticket 0).
    pub fn queue(position: u64, key: Label, element: Element<T>) -> Self {
        StoredEntry {
            position,
            key,
            ticket: 0,
            element,
        }
    }

    /// Creates a stack entry with a ticket.
    pub fn stack(position: u64, key: Label, ticket: u64, element: Element<T>) -> Self {
        StoredEntry {
            position,
            key,
            ticket,
            element,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skueue_sim::ids::ProcessId;

    fn rid(p: u64, s: u64) -> RequestId {
        RequestId::new(ProcessId(p), s)
    }

    #[test]
    fn element_display() {
        let e = Element::new(rid(1, 2), 99u64);
        assert_eq!(e.to_string(), "e[p1#2=99]");
    }

    #[test]
    fn string_element_display_quotes_the_payload() {
        let e = Element::new(rid(1, 2), String::from("job"));
        assert_eq!(e.to_string(), "e[p1#2=\"job\"]");
    }

    #[test]
    fn elements_with_distinct_requests_differ() {
        let a = Element::new(rid(1, 2), 5u64);
        let b = Element::new(rid(1, 3), 5u64);
        assert_ne!(a, b);
        assert_eq!(a, Element::new(rid(1, 2), 5));
    }

    #[test]
    fn stored_entry_constructors() {
        let e = Element::new(rid(0, 0), 7u64);
        let key = Label::from_f64(0.25);
        let q = StoredEntry::queue(11, key, e.clone());
        assert_eq!(q.ticket, 0);
        assert_eq!(q.position, 11);
        let s = StoredEntry::stack(11, key, 42, e.clone());
        assert_eq!(s.ticket, 42);
        assert_eq!(s.key, key);
        assert_eq!(s.element, e);
    }

    #[test]
    fn non_copy_payloads_round_trip() {
        let e = Element::new(rid(3, 1), vec![1u8, 2, 3]);
        let entry = StoredEntry::queue(4, Label::from_f64(0.5), e);
        assert_eq!(entry.element.value, vec![1, 2, 3]);
    }
}
