//! Elements stored in the DHT.

use serde::{Deserialize, Serialize};
use skueue_overlay::Label;
use skueue_sim::ids::RequestId;
use std::fmt;

/// An element of the universe `E` that can be put into the distributed
/// queue or stack.
///
/// The paper assumes w.l.o.g. that every element is enqueued at most once —
/// "an easy way to achieve this is to make the calling process and the
/// current count of requests performed a part of e".  [`Element`] does
/// exactly that: it carries the [`RequestId`] of the `ENQUEUE()`/`PUSH()`
/// that created it plus an application payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Element {
    /// The request that enqueued/pushed this element.
    pub id: RequestId,
    /// Application payload.
    pub value: u64,
}

impl Element {
    /// Creates an element.
    pub fn new(id: RequestId, value: u64) -> Self {
        Element { id, value }
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e[{}={}]", self.id, self.value)
    }
}

/// An element as stored at its responsible node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredEntry {
    /// Queue/stack position the element was assigned by the anchor.
    pub position: u64,
    /// DHT key `k(position)` (kept so data handover on `JOIN()`/`LEAVE()`
    /// does not need to re-hash).
    pub key: Label,
    /// Ticket of the stack variant; `0` for queue elements.
    pub ticket: u64,
    /// The element itself.
    pub element: Element,
}

impl StoredEntry {
    /// Creates a queue entry (ticket 0).
    pub fn queue(position: u64, key: Label, element: Element) -> Self {
        StoredEntry {
            position,
            key,
            ticket: 0,
            element,
        }
    }

    /// Creates a stack entry with a ticket.
    pub fn stack(position: u64, key: Label, ticket: u64, element: Element) -> Self {
        StoredEntry {
            position,
            key,
            ticket,
            element,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skueue_sim::ids::ProcessId;

    fn rid(p: u64, s: u64) -> RequestId {
        RequestId::new(ProcessId(p), s)
    }

    #[test]
    fn element_display() {
        let e = Element::new(rid(1, 2), 99);
        assert_eq!(e.to_string(), "e[p1#2=99]");
    }

    #[test]
    fn elements_with_distinct_requests_differ() {
        let a = Element::new(rid(1, 2), 5);
        let b = Element::new(rid(1, 3), 5);
        assert_ne!(a, b);
        assert_eq!(a, Element::new(rid(1, 2), 5));
    }

    #[test]
    fn stored_entry_constructors() {
        let e = Element::new(rid(0, 0), 7);
        let key = Label::from_f64(0.25);
        let q = StoredEntry::queue(11, key, e);
        assert_eq!(q.ticket, 0);
        assert_eq!(q.position, 11);
        let s = StoredEntry::stack(11, key, 42, e);
        assert_eq!(s.ticket, 42);
        assert_eq!(s.key, key);
        assert_eq!(s.element, e);
    }
}
