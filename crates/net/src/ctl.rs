//! Control-plane client: drives joins, leaves, status polls and shutdown
//! against a running daemon set.  This is the body of the `skueue-ctl`
//! binary and the churn driver used by the conformance tests.

use std::io::{self, BufReader};
use std::marker::PhantomData;
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use skueue_core::Payload;
use skueue_sim::ids::ProcessId;

use crate::codec::Wire;
use crate::frame::{read_frame, write_frame, NetFrame};
use crate::spec::ClusterSpec;

/// A synchronous control connection to one daemon: write a frame, read the
/// reply.  Control traffic follows a strict request/reply discipline per
/// connection (completions stream only on *subscribed* connections, which
/// the ingress keeps separate), so blocking reads are safe here.
#[derive(Debug)]
pub struct Control<T> {
    pub(crate) stream: TcpStream,
    pub(crate) reader: BufReader<TcpStream>,
    _payload: PhantomData<T>,
}

impl<T: Payload + Wire> Control<T> {
    /// Connects to `addr`, retrying for a few seconds while the daemon
    /// starts up.
    pub fn connect(addr: &str) -> io::Result<Self> {
        let mut last_err = io::Error::other("no attempt made");
        for _ in 0..250 {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    let read_half = stream.try_clone()?;
                    return Ok(Control {
                        stream,
                        reader: BufReader::new(read_half),
                        _payload: PhantomData,
                    });
                }
                Err(e) => last_err = e,
            }
            thread::sleep(Duration::from_millis(20));
        }
        Err(last_err)
    }

    /// Sends a frame without expecting a reply (`Inject` is fire-and-forget).
    pub fn send(&mut self, frame: &NetFrame<T>) -> io::Result<()> {
        write_frame(&mut self.stream, frame)
    }

    /// Sends a frame and blocks for the single reply frame.
    pub fn request(&mut self, frame: &NetFrame<T>) -> io::Result<NetFrame<T>> {
        write_frame(&mut self.stream, frame)?;
        read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the connection")
        })
    }

    /// Expects an `Ok` reply to `frame`; surfaces `Err` replies as errors.
    pub fn expect_ok(&mut self, frame: &NetFrame<T>) -> io::Result<()> {
        match self.request(frame)? {
            NetFrame::Ok => Ok(()),
            NetFrame::Err(reason) => Err(io::Error::other(reason)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected reply {other:?}"),
            )),
        }
    }
}

/// The status of one hosted process as reported by its daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessStatus {
    /// The process id.
    pub pid: ProcessId,
    /// True once the process's middle node is an integrated member.
    pub integrated: bool,
    /// True once the process has fully left the overlay.
    pub left: bool,
}

/// A control-plane client holding one connection per daemon.
#[derive(Debug)]
pub struct CtlClient<T> {
    spec: ClusterSpec,
    conns: Vec<Control<T>>,
}

impl<T: Payload + Wire> CtlClient<T> {
    /// Connects to every daemon in the spec.
    pub fn connect(spec: &ClusterSpec) -> io::Result<Self> {
        let conns = spec
            .daemons
            .iter()
            .map(|addr| Control::connect(addr))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(CtlClient {
            spec: spec.clone(),
            conns,
        })
    }

    /// The spec this client was built from.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Polls every daemon and merges the per-process statuses, sorted by
    /// process id.
    pub fn status(&mut self) -> io::Result<Vec<ProcessStatus>> {
        let mut all = Vec::new();
        for conn in &mut self.conns {
            match conn.request(&NetFrame::Status)? {
                NetFrame::StatusReply { processes, .. } => {
                    all.extend(processes.into_iter().map(|(pid, integrated, left)| {
                        ProcessStatus {
                            pid: ProcessId(pid),
                            integrated,
                            left,
                        }
                    }));
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected status reply {other:?}"),
                    ))
                }
            }
        }
        all.sort_by_key(|s| s.pid.0);
        Ok(all)
    }

    /// Starts `count` joining processes with consecutive fresh process ids
    /// (after the highest currently hosted id) and returns the new ids.
    /// Each join is sent to the daemon that statically owns the new process.
    pub fn join_wave(&mut self, count: u64) -> io::Result<Vec<ProcessId>> {
        let next = self
            .status()?
            .iter()
            .map(|s| s.pid.0 + 1)
            .max()
            .unwrap_or(self.spec.initial);
        let mut joined = Vec::with_capacity(count as usize);
        for pid in (next..next + count).map(ProcessId) {
            let bootstrap = self.spec.bootstrap_for(pid).ok_or_else(|| {
                io::Error::other("shard has no initial member")
            })?;
            let daemon = self.spec.daemon_of(pid);
            self.conns[daemon].expect_ok(&NetFrame::Join { pid, bootstrap })?;
            joined.push(pid);
        }
        Ok(joined)
    }

    /// Asks one process to leave.  The caller must not pick a process whose
    /// node is a shard anchor (the daemon's host processes for anchors are
    /// among the initial ones; processes created by [`Self::join_wave`] are
    /// always safe to leave).
    pub fn leave(&mut self, pid: ProcessId) -> io::Result<()> {
        let daemon = self.spec.daemon_of(pid);
        self.conns[daemon].expect_ok(&NetFrame::Leave { pid })
    }

    /// Polls until `predicate` holds over the merged status, or the timeout
    /// elapses.  Returns whether the predicate was reached.
    pub fn wait_until(
        &mut self,
        timeout: Duration,
        mut predicate: impl FnMut(&[ProcessStatus]) -> bool,
    ) -> io::Result<bool> {
        let deadline = Instant::now() + timeout;
        loop {
            let statuses = self.status()?;
            if predicate(&statuses) {
                return Ok(true);
            }
            if Instant::now() >= deadline {
                return Ok(false);
            }
            thread::sleep(Duration::from_millis(25));
        }
    }

    /// Waits until every listed process reports as integrated.
    pub fn wait_integrated(&mut self, pids: &[ProcessId], timeout: Duration) -> io::Result<bool> {
        self.wait_until(timeout, |statuses| {
            pids.iter().all(|pid| {
                statuses
                    .iter()
                    .any(|s| s.pid == *pid && s.integrated && !s.left)
            })
        })
    }

    /// Waits until every listed process reports as having left.
    pub fn wait_left(&mut self, pids: &[ProcessId], timeout: Duration) -> io::Result<bool> {
        self.wait_until(timeout, |statuses| {
            pids.iter()
                .all(|pid| statuses.iter().any(|s| s.pid == *pid && s.left))
        })
    }

    /// Shuts every daemon down (each replies `Ok` before exiting).
    pub fn shutdown(&mut self) -> io::Result<()> {
        for conn in &mut self.conns {
            conn.expect_ok(&NetFrame::Shutdown)?;
        }
        Ok(())
    }
}
