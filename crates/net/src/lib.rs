//! # skueue-net — real-clock TCP transport and service topology
//!
//! Everything else in this workspace runs the Skueue protocol inside the
//! deterministic simulation (`skueue-sim`).  This crate is the other side of
//! the [`skueue_sim::Transport`] seam: the same `SkueueNode` state machines,
//! executing on real threads against real sockets and real time.
//!
//! The paper's correctness argument holds under full asynchrony — arbitrary
//! finite message delays, no FIFO assumption — so nothing about the protocol
//! changes here.  What changes is the *evidence*: a simulated run is verified
//! by byte-identical replay, a networked run is verified a posteriori by
//! collecting its completion history and passing it through the same
//! [`skueue_verify::check_queue_sharded`] checker.
//!
//! ## Pieces
//!
//! | module | role |
//! |---|---|
//! | [`codec`] | hand-rolled binary encoding of every protocol type (the workspace's `serde` is a no-op stub) |
//! | [`frame`] | `u32`-length-prefixed framing and the [`frame::NetFrame`] daemon protocol |
//! | [`spec`] | the [`spec::ClusterSpec`] every binary agrees on, plus static placement rules |
//! | [`transport`] | [`transport::TcpTransport`], the real-clock [`skueue_sim::Transport`] implementation |
//! | [`daemon`] | the `skueue-node` daemon: listener, switch, per-node tick threads |
//! | [`ctl`] | the control-plane client (join/leave waves, status, shutdown) |
//! | [`ingress`] | the client-operation ingress: issues ops, collects and verifies the history |
//! | [`load`] | open-loop Poisson load generation with latency percentiles |
//!
//! ## Service topology
//!
//! A deployment is `d` × `skueue-node` daemons (each hosting the processes
//! `pid ≡ index (mod d)`), one `skueue-ctl` driving churn, and one
//! `skueue-ingress`/`skueue-load` issuing operations.  All placement is
//! statically derivable from the [`spec::ClusterSpec`], so no coordination
//! service is needed: a joiner's node ids (`3·pid + kind`) and host daemon
//! follow from its process id alone.  See `DEPLOY.md` at the workspace root
//! for a copy-pasteable localhost walkthrough.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod ctl;
pub mod daemon;
pub mod frame;
pub mod ingress;
pub mod load;
pub mod spec;
pub mod transport;

pub use codec::{DecodeError, Wire};
pub use ctl::{Control, CtlClient, ProcessStatus};
pub use daemon::DaemonHandle;
pub use frame::NetFrame;
pub use ingress::IngressClient;
pub use load::{run_load, LoadParams, LoadReport};
pub use spec::{node_of, ClusterSpec};
pub use transport::TcpTransport;
