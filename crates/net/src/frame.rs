//! Length-prefixed framing and the daemon wire protocol.
//!
//! Every connection in the service topology — daemon ↔ daemon, ctl ↔ daemon,
//! ingress ↔ daemon — speaks the same trivially simple framing: a `u32`
//! little-endian byte length followed by exactly that many bytes, which decode
//! (via [`crate::codec::Wire`]) to one [`NetFrame`].  TCP gives per-connection
//! FIFO, which is strictly stronger than the protocol needs (Skueue is correct
//! under arbitrary finite delays and reordering), so no sequence numbers or
//! acks are layered on top.

use std::io::{self, Read, Write};

use skueue_core::SkueueMsg;
use skueue_sim::ids::{NodeId, ProcessId, RequestId};
use skueue_verify::OpRecord;

use crate::codec::{from_bytes, to_bytes, DecodeError, Reader, Wire};

/// Upper bound on a single frame's payload, in bytes.  Handover payloads can
/// carry a shard's worth of DHT entries, but anything beyond this indicates a
/// corrupt or hostile length prefix.
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

/// Writes one value as a length-prefixed frame.
pub fn write_frame<T: Wire, W: Write>(w: &mut W, value: &T) -> io::Result<()> {
    let body = to_bytes(value);
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame too large",
        ));
    }
    // One buffer, one write: avoids interleaving when callers share a stream
    // behind a mutex and halves the syscall count for small frames.
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&body);
    w.write_all(&out)
}

/// Reads one length-prefixed frame.  Returns `Ok(None)` on clean EOF at a
/// frame boundary (the peer closed the connection), an error otherwise.
pub fn read_frame<T: Wire, R: Read>(r: &mut R) -> io::Result<Option<T>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds limit"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    from_bytes(&body).map(Some).map_err(|e: DecodeError| {
        io::Error::new(io::ErrorKind::InvalidData, format!("bad frame: {e}"))
    })
}

/// One frame of the daemon protocol.
///
/// Protocol traffic ([`NetFrame::Proto`]) and the control plane share the
/// framing; control frames follow a request/reply discipline on their
/// originating connection, protocol frames are fire-and-forget.
#[derive(Debug, Clone, PartialEq)]
pub enum NetFrame<T> {
    /// Connection preamble: identifies the dialing daemon so the accepting
    /// side can bind the connection into its peer table.  Ingress and ctl
    /// connections skip the preamble and speak control frames directly.
    Hello {
        /// Index of the dialing daemon in the cluster spec.
        from: u32,
    },
    /// A protocol message in flight between two virtual nodes.
    Proto {
        /// Sending virtual node.
        from: NodeId,
        /// Destination virtual node.
        to: NodeId,
        /// The Skueue protocol message.
        msg: SkueueMsg<T>,
    },
    /// Ingress → daemon: issue one client operation on a hosted process.
    Inject {
        /// Request id chosen by the ingress (`origin` selects the process).
        id: RequestId,
        /// `true` for enqueue, `false` for dequeue.
        insert: bool,
        /// Payload value (meaningful for enqueues only).
        value: T,
    },
    /// Daemon → ingress: a client operation completed.
    Completion {
        /// The finished operation, as the verifier consumes it.
        record: OpRecord<T>,
    },
    /// Ctl → daemon: spin up a joining process on this daemon.
    Join {
        /// Process id of the joiner (globally unique, assigned by ctl).
        pid: ProcessId,
        /// Middle node of the same-shard bootstrap process.
        bootstrap: NodeId,
    },
    /// Ctl → daemon: ask a hosted process to leave the overlay.
    Leave {
        /// Process id of the leaver.
        pid: ProcessId,
    },
    /// Ctl/ingress → daemon: report hosted-process states.
    Status,
    /// Daemon → ctl/ingress: reply to [`NetFrame::Status`].
    StatusReply {
        /// Index of the replying daemon.
        daemon: u32,
        /// `(pid, integrated, left)` for every hosted process.
        processes: Vec<(u64, bool, bool)>,
    },
    /// Ingress → daemon: register this connection as a completion sink.
    /// Every [`NetFrame::Completion`] the daemon's nodes produce afterwards
    /// is streamed to all subscribed connections.
    Subscribe,
    /// Ctl → daemon: stop all node threads and exit.
    Shutdown,
    /// Generic success reply to a control frame.
    Ok,
    /// Generic failure reply to a control frame.
    Err(
        /// Human-readable reason.
        String,
    ),
}

impl<T: Wire> Wire for NetFrame<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            NetFrame::Hello { from } => {
                buf.push(0);
                from.encode(buf);
            }
            NetFrame::Proto { from, to, msg } => {
                buf.push(1);
                from.encode(buf);
                to.encode(buf);
                msg.encode(buf);
            }
            NetFrame::Inject { id, insert, value } => {
                buf.push(2);
                id.encode(buf);
                insert.encode(buf);
                value.encode(buf);
            }
            NetFrame::Completion { record } => {
                buf.push(3);
                record.encode(buf);
            }
            NetFrame::Join { pid, bootstrap } => {
                buf.push(4);
                pid.encode(buf);
                bootstrap.encode(buf);
            }
            NetFrame::Leave { pid } => {
                buf.push(5);
                pid.encode(buf);
            }
            NetFrame::Status => buf.push(6),
            NetFrame::StatusReply { daemon, processes } => {
                buf.push(7);
                daemon.encode(buf);
                processes.encode(buf);
            }
            NetFrame::Subscribe => buf.push(8),
            NetFrame::Shutdown => buf.push(9),
            NetFrame::Ok => buf.push(10),
            NetFrame::Err(reason) => {
                buf.push(11);
                reason.encode(buf);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let tag = u8::decode(r)?;
        Ok(match tag {
            0 => NetFrame::Hello {
                from: u32::decode(r)?,
            },
            1 => NetFrame::Proto {
                from: NodeId::decode(r)?,
                to: NodeId::decode(r)?,
                msg: SkueueMsg::decode(r)?,
            },
            2 => NetFrame::Inject {
                id: RequestId::decode(r)?,
                insert: bool::decode(r)?,
                value: T::decode(r)?,
            },
            3 => NetFrame::Completion {
                record: OpRecord::decode(r)?,
            },
            4 => NetFrame::Join {
                pid: ProcessId::decode(r)?,
                bootstrap: NodeId::decode(r)?,
            },
            5 => NetFrame::Leave {
                pid: ProcessId::decode(r)?,
            },
            6 => NetFrame::Status,
            7 => NetFrame::StatusReply {
                daemon: u32::decode(r)?,
                processes: Vec::decode(r)?,
            },
            8 => NetFrame::Subscribe,
            9 => NetFrame::Shutdown,
            10 => NetFrame::Ok,
            11 => NetFrame::Err(String::decode(r)?),
            value => {
                return Err(DecodeError::BadDiscriminant {
                    ty: "NetFrame",
                    value,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skueue_verify::{OpKind, OpResult, OrderKey};

    fn roundtrip(frame: NetFrame<u64>) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).expect("write");
        let mut cursor = io::Cursor::new(buf);
        let back: NetFrame<u64> = read_frame(&mut cursor).expect("read").expect("some");
        assert_eq!(back, frame);
        // Clean EOF after the single frame.
        assert!(read_frame::<NetFrame<u64>, _>(&mut cursor)
            .expect("eof read")
            .is_none());
    }

    #[test]
    fn control_frames_roundtrip() {
        roundtrip(NetFrame::Hello { from: 2 });
        roundtrip(NetFrame::Inject {
            id: RequestId::new(ProcessId(3), 9),
            insert: true,
            value: 77,
        });
        roundtrip(NetFrame::Join {
            pid: ProcessId(5),
            bootstrap: NodeId(4),
        });
        roundtrip(NetFrame::Leave { pid: ProcessId(2) });
        roundtrip(NetFrame::Status);
        roundtrip(NetFrame::Subscribe);
        roundtrip(NetFrame::StatusReply {
            daemon: 1,
            processes: vec![(0, true, false), (3, false, false)],
        });
        roundtrip(NetFrame::Shutdown);
        roundtrip(NetFrame::Ok);
        roundtrip(NetFrame::Err(String::from("no such pid")));
    }

    #[test]
    fn proto_and_completion_frames_roundtrip() {
        roundtrip(NetFrame::Proto {
            from: NodeId(1),
            to: NodeId(5),
            msg: SkueueMsg::UpdateFlag { phase: 3 },
        });
        roundtrip(NetFrame::Completion {
            record: OpRecord {
                id: RequestId::new(ProcessId(0), 0),
                kind: OpKind::Enqueue,
                value: 11,
                result: OpResult::Enqueued,
                order: OrderKey {
                    wave: 1,
                    shard: 0,
                    major: 2,
                    origin: 0,
                    minor: 0,
                },
                issued_round: 1,
                completed_round: 4,
            },
        });
    }

    #[test]
    fn oversized_frame_is_rejected_on_read() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame::<NetFrame<u64>, _>(&mut cursor).is_err());
    }

    #[test]
    fn torn_frame_is_an_error_not_eof() {
        let frame: NetFrame<u64> = NetFrame::Status;
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).unwrap();
        buf.extend_from_slice(&8u32.to_le_bytes()); // header for 8 bytes...
        buf.extend_from_slice(&[1, 2, 3]); // ...but only 3 arrive.
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame::<NetFrame<u64>, _>(&mut cursor)
            .unwrap()
            .is_some());
        assert!(read_frame::<NetFrame<u64>, _>(&mut cursor).is_err());
    }
}
