//! The `skueue-node` daemon: hosts a slice of the cluster's processes as
//! real threads and speaks the frame protocol with its peers.
//!
//! # Thread anatomy
//!
//! ```text
//!            TCP accept                 frames                 events
//!  listener ───────────► reader (1/conn) ────► switch (1) ◄──────── node threads (3/process)
//!                                                 │  ▲
//!                        peer daemons ◄───────────┘  └── completions → subscribed ingress conns
//! ```
//!
//! * One **listener** thread accepts connections; each connection gets a
//!   **reader** thread that decodes frames and forwards them as events.
//! * One **switch** thread owns all routing state: the inbox of every hosted
//!   virtual node, one outgoing TCP connection per peer daemon (dialled on
//!   demand, carrying a [`NetFrame::Hello`] preamble), the hosted-process
//!   table, and the set of completion-subscribed connections.
//! * Each hosted virtual node runs on its own **node thread**: a tick loop
//!   that plays the role of the simulator's round — deliver pending
//!   messages, then fire the `TIMEOUT` action.  Outgoing messages go through
//!   a [`TcpTransport`], the real-clock implementation of the
//!   [`skueue_sim::Transport`] seam.
//!
//! Placement is static (process `p` lives on daemon `p mod d`, see
//! [`crate::spec`]), so a `JOIN` creates the three node threads locally and
//! the join protocol does the rest over the wire.

use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use skueue_core::{BatchOp, Payload, SkueueMsg, SkueueNode};
use skueue_overlay::VirtualId;
use skueue_sim::actor::{Actor, Context};
use skueue_sim::ids::NodeId;
use skueue_sim::{SimRng, Transport};
use skueue_verify::OpRecord;

use crate::codec::Wire;
use crate::frame::{read_frame, write_frame, NetFrame};
use crate::spec::{node_of, ClusterSpec};
use crate::transport::TcpTransport;

/// An event on the switch thread's queue.
#[derive(Debug)]
pub(crate) enum SwitchEvent<T> {
    /// A protocol message to route (from a local node or a peer daemon).
    Route {
        /// Sending virtual node.
        from: NodeId,
        /// Destination virtual node.
        to: NodeId,
        /// The message.
        msg: SkueueMsg<T>,
    },
    /// A completed client operation to stream to subscribers.
    Completion(OpRecord<T>),
    /// A control frame from a ctl or ingress connection.
    Control {
        frame: NetFrame<T>,
        writer: ConnWriter,
    },
}

/// The write half of an accepted connection, shareable across threads.
/// `write_frame` issues a single `write_all` per frame, so the mutex is the
/// only interleaving guard needed.
#[derive(Debug, Clone)]
pub(crate) struct ConnWriter {
    id: u64,
    stream: Arc<Mutex<TcpStream>>,
}

impl ConnWriter {
    fn write<T: Wire>(&self, frame: &NetFrame<T>) -> io::Result<()> {
        let mut guard = self.stream.lock().expect("writer mutex poisoned");
        write_frame(&mut *guard, frame)
    }
}

/// Events a node thread consumes.
#[derive(Debug)]
enum NodeEvent<T> {
    /// A protocol message addressed to this node.
    Deliver { from: NodeId, msg: SkueueMsg<T> },
    /// A client operation to issue (middle nodes only).
    Inject {
        id: skueue_sim::ids::RequestId,
        insert: bool,
        value: T,
    },
    /// Ask the node to leave the overlay.
    Leave,
    /// Terminate the thread.
    Stop,
}

/// Shared lifecycle cell, updated by a process's middle-node thread and read
/// by the switch when answering [`NetFrame::Status`].
#[derive(Debug)]
struct ProcStatus {
    integrated: AtomicBool,
    left: AtomicBool,
}

/// A running daemon spawned in-process (used by tests and the load
/// generator's self-contained mode).
#[derive(Debug)]
pub struct DaemonHandle {
    thread: JoinHandle<io::Result<()>>,
}

impl DaemonHandle {
    /// Waits for the daemon to exit (after a [`NetFrame::Shutdown`]).
    pub fn join(self) -> io::Result<()> {
        self.thread.join().expect("daemon thread panicked")
    }
}

/// Binds the daemon's listen address and runs until shutdown.  This is the
/// body of the `skueue-node` binary.
pub fn run<T: Payload + Wire>(spec: &ClusterSpec, index: usize) -> io::Result<()> {
    let listener = TcpListener::bind(&spec.daemons[index])?;
    run_with_listener::<T>(spec, index, listener)
}

/// Spawns a daemon on its own thread with a pre-bound listener (lets tests
/// bind ephemeral ports before constructing the spec).
pub fn spawn<T: Payload + Wire>(
    spec: ClusterSpec,
    index: usize,
    listener: TcpListener,
) -> DaemonHandle {
    let thread = thread::spawn(move || run_with_listener::<T>(&spec, index, listener));
    DaemonHandle { thread }
}

/// Runs the daemon's switch loop on the calling thread until a
/// [`NetFrame::Shutdown`] arrives, then tears every helper thread down.
pub fn run_with_listener<T: Payload + Wire>(
    spec: &ClusterSpec,
    index: usize,
    listener: TcpListener,
) -> io::Result<()> {
    let local_addr = listener.local_addr()?;
    let (tx, rx) = channel::<SwitchEvent<T>>();
    let in_flight = Arc::new(AtomicUsize::new(0));
    let shutting_down = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
    let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let listener_thread = {
        let tx = tx.clone();
        let in_flight = Arc::clone(&in_flight);
        let shutting_down = Arc::clone(&shutting_down);
        let conns = Arc::clone(&conns);
        let readers = Arc::clone(&readers);
        thread::spawn(move || {
            let mut next_conn_id = 0u64;
            loop {
                let stream = match listener.accept() {
                    Ok((s, _)) => s,
                    Err(_) => break,
                };
                if shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(write_half) = stream.try_clone() else {
                    continue;
                };
                if let Ok(raw) = stream.try_clone() {
                    conns.lock().expect("conns mutex").push(raw);
                }
                let writer = ConnWriter {
                    id: next_conn_id,
                    stream: Arc::new(Mutex::new(write_half)),
                };
                next_conn_id += 1;
                let tx = tx.clone();
                let in_flight = Arc::clone(&in_flight);
                let handle = thread::spawn(move || reader_loop(stream, writer, tx, in_flight));
                readers.lock().expect("readers mutex").push(handle);
            }
        })
    };

    // Construct this daemon's slice of the initial membership.
    let cfg = spec.protocol_config();
    let (initial, budgets) = spec.initial_membership();
    let tick = Duration::from_millis(spec.tick_ms);
    let transport = TcpTransport::new(tx.clone(), Arc::clone(&in_flight));
    let mut inboxes: HashMap<u64, Sender<NodeEvent<T>>> = HashMap::new();
    let mut node_threads: Vec<JoinHandle<()>> = Vec::new();
    let mut procs: Vec<(u64, [NodeId; 3], Arc<ProcStatus>)> = Vec::new();
    for proc_spec in initial
        .into_iter()
        .filter(|p| spec.daemon_of(p.pid) == index)
    {
        let status = Arc::new(ProcStatus {
            integrated: AtomicBool::new(true),
            left: AtomicBool::new(false),
        });
        let mut ids = [NodeId(0); 3];
        for (vid, view, is_anchor) in proc_spec.views {
            let mut node_cfg = cfg;
            node_cfg.bit_budget = budgets[proc_spec.shard as usize];
            let mut node = SkueueNode::<T>::new(node_cfg, proc_spec.shard, view, is_anchor);
            let id = node_of(vid);
            node.trace_recorder_mut().attach(id.0, proc_spec.shard);
            ids[vid.kind.index()] = id;
            let status_cell =
                (vid.kind == skueue_overlay::VKind::Middle).then(|| Arc::clone(&status));
            let (inbox, handle) = spawn_node(
                node,
                id,
                transport.clone(),
                tick,
                status_cell,
                spec.hash_seed,
            );
            inboxes.insert(id.0, inbox);
            node_threads.push(handle);
        }
        procs.push((proc_spec.pid.0, ids, status));
    }

    // The switch loop.
    let mut peers: Vec<Option<TcpStream>> = (0..spec.num_daemons()).map(|_| None).collect();
    let mut sinks: HashMap<u64, ConnWriter> = HashMap::new();
    while let Ok(event) = rx.recv() {
        match event {
            SwitchEvent::Route { from, to, msg } => {
                route(spec, index, &inboxes, &mut peers, &in_flight, from, to, msg);
            }
            SwitchEvent::Completion(record) => {
                sinks.retain(|_, sink| {
                    sink.write(&NetFrame::Completion {
                        record: record.clone(),
                    })
                    .is_ok()
                });
            }
            SwitchEvent::Control { frame, writer } => match frame {
                NetFrame::Inject { id, insert, value } => {
                    // Fire-and-forget: the completion stream is the reply.
                    let target = node_of(VirtualId::middle(id.origin));
                    if let Some(inbox) = inboxes.get(&target.0) {
                        let _ = inbox.send(NodeEvent::Inject { id, insert, value });
                    } else {
                        eprintln!(
                            "skueue-node[{index}]: inject for unhosted process {}",
                            id.origin.0
                        );
                    }
                }
                NetFrame::Subscribe => {
                    sinks.insert(writer.id, writer.clone());
                    let _ = writer.write(&NetFrame::<T>::Ok);
                }
                NetFrame::Join { pid, bootstrap } => {
                    let reply = if spec.daemon_of(pid) != index {
                        NetFrame::<T>::Err(format!("process {} is not placed here", pid.0))
                    } else if procs.iter().any(|(p, _, _)| *p == pid.0) {
                        NetFrame::<T>::Err(format!("process {} already hosted", pid.0))
                    } else {
                        let shard = spec.shard_of(pid);
                        let status = Arc::new(ProcStatus {
                            integrated: AtomicBool::new(false),
                            left: AtomicBool::new(false),
                        });
                        let mut ids = [NodeId(0); 3];
                        for (vid, view) in spec.joining_views(pid) {
                            let mut node_cfg = cfg;
                            node_cfg.bit_budget = budgets[shard as usize];
                            let mut node = SkueueNode::<T>::new_joining(node_cfg, shard, view);
                            node.set_bootstrap(bootstrap);
                            let id = node_of(vid);
                            node.trace_recorder_mut().attach(id.0, shard);
                            ids[vid.kind.index()] = id;
                            let status_cell = (vid.kind == skueue_overlay::VKind::Middle)
                                .then(|| Arc::clone(&status));
                            let (inbox, handle) = spawn_node(
                                node,
                                id,
                                transport.clone(),
                                tick,
                                status_cell,
                                spec.hash_seed,
                            );
                            inboxes.insert(id.0, inbox);
                            node_threads.push(handle);
                        }
                        procs.push((pid.0, ids, status));
                        NetFrame::<T>::Ok
                    };
                    let _ = writer.write(&reply);
                }
                NetFrame::Leave { pid } => {
                    let reply = match procs.iter().find(|(p, _, _)| *p == pid.0) {
                        Some((_, ids, _)) => {
                            for id in ids {
                                if let Some(inbox) = inboxes.get(&id.0) {
                                    let _ = inbox.send(NodeEvent::Leave);
                                }
                            }
                            NetFrame::<T>::Ok
                        }
                        None => NetFrame::<T>::Err(format!("process {} not hosted here", pid.0)),
                    };
                    let _ = writer.write(&reply);
                }
                NetFrame::Status => {
                    let processes = procs
                        .iter()
                        .map(|(pid, _, status)| {
                            (
                                *pid,
                                status.integrated.load(Ordering::Relaxed),
                                status.left.load(Ordering::Relaxed),
                            )
                        })
                        .collect();
                    let _ = writer.write(&NetFrame::<T>::StatusReply {
                        daemon: index as u32,
                        processes,
                    });
                }
                NetFrame::Shutdown => {
                    for inbox in inboxes.values() {
                        let _ = inbox.send(NodeEvent::Stop);
                    }
                    for handle in node_threads.drain(..) {
                        let _ = handle.join();
                    }
                    let _ = writer.write(&NetFrame::<T>::Ok);
                    break;
                }
                other => {
                    let _ = writer.write(&NetFrame::<T>::Err(format!(
                        "unexpected control frame {other:?}"
                    )));
                }
            },
        }
    }

    // Teardown: unblock the listener, close every connection so reader
    // threads see EOF, and join them all — no leaked threads or sockets.
    shutting_down.store(true, Ordering::SeqCst);
    drop(tx);
    let _ = TcpStream::connect(local_addr); // unblocks `accept`
    let _ = listener_thread.join();
    for conn in conns.lock().expect("conns mutex").drain(..) {
        let _ = conn.shutdown(std::net::Shutdown::Both);
    }
    for peer in peers.iter().flatten() {
        let _ = peer.shutdown(std::net::Shutdown::Both);
    }
    let handles: Vec<_> = readers.lock().expect("readers mutex").drain(..).collect();
    for handle in handles {
        let _ = handle.join();
    }
    Ok(())
}

/// Routes one protocol message: local destination → inbox, remote → peer
/// frame.  The in-flight counter tracks daemon-local queues only, so a
/// message leaving for a peer is decremented here and a message entering a
/// local inbox is decremented by the node thread after delivery.
#[allow(clippy::too_many_arguments)]
fn route<T: Payload + Wire>(
    spec: &ClusterSpec,
    index: usize,
    inboxes: &HashMap<u64, Sender<NodeEvent<T>>>,
    peers: &mut [Option<TcpStream>],
    in_flight: &AtomicUsize,
    from: NodeId,
    to: NodeId,
    msg: SkueueMsg<T>,
) {
    let daemon = spec.daemon_of_node(to);
    if daemon == index {
        match inboxes.get(&to.0) {
            Some(inbox) => {
                if inbox.send(NodeEvent::Deliver { from, msg }).is_err() {
                    in_flight.fetch_sub(1, Ordering::Relaxed);
                }
            }
            None => {
                in_flight.fetch_sub(1, Ordering::Relaxed);
                eprintln!("skueue-node[{index}]: dropping message for unknown local node {to:?}");
            }
        }
        return;
    }
    in_flight.fetch_sub(1, Ordering::Relaxed);
    let frame = NetFrame::Proto { from, to, msg };
    // One dial attempt cycle, then one redial after a stale-connection write
    // failure (the peer may have restarted between frames).
    for _ in 0..2 {
        if peers[daemon].is_none() {
            peers[daemon] = dial_peer(spec, index, daemon);
        }
        match peers[daemon].as_mut() {
            Some(stream) => {
                if write_frame(stream, &frame).is_ok() {
                    return;
                }
                peers[daemon] = None;
            }
            None => break,
        }
    }
    eprintln!("skueue-node[{index}]: dropping frame for unreachable daemon {daemon}");
}

/// Dials a peer daemon, retrying for a few seconds (daemons of one cluster
/// start concurrently), and sends the identifying preamble.
fn dial_peer(spec: &ClusterSpec, index: usize, daemon: usize) -> Option<TcpStream> {
    for _ in 0..250 {
        if let Ok(mut stream) = TcpStream::connect(&spec.daemons[daemon]) {
            let _ = stream.set_nodelay(true);
            // `Hello` carries no payload-typed field, so any `T` encodes it
            // identically; `u64` keeps this helper non-generic.
            let hello = NetFrame::<u64>::Hello { from: index as u32 };
            if write_frame(&mut stream, &hello).is_ok() {
                return Some(stream);
            }
        }
        thread::sleep(Duration::from_millis(20));
    }
    None
}

/// One connection's reader: decodes frames and forwards them as events.
/// Exits on EOF, on a decode error, or when the switch has gone away.
fn reader_loop<T: Payload + Wire>(
    stream: TcpStream,
    writer: ConnWriter,
    tx: Sender<SwitchEvent<T>>,
    in_flight: Arc<AtomicUsize>,
) {
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream);
    loop {
        match read_frame::<NetFrame<T>, _>(&mut reader) {
            Ok(Some(NetFrame::Hello { .. })) => {
                // Peer preamble; proto frames carry full addressing, so the
                // daemon index is informational only.
            }
            Ok(Some(NetFrame::Proto { from, to, msg })) => {
                in_flight.fetch_add(1, Ordering::Relaxed);
                if tx.send(SwitchEvent::Route { from, to, msg }).is_err() {
                    break;
                }
            }
            Ok(Some(frame)) => {
                let event = SwitchEvent::Control {
                    frame,
                    writer: writer.clone(),
                };
                if tx.send(event).is_err() {
                    break;
                }
            }
            Ok(None) | Err(_) => break,
        }
    }
}

/// Spawns one virtual node on its own tick-loop thread.
///
/// Each loop iteration plays one synchronous round: deliver every pending
/// message, then fire the `TIMEOUT` action if the node is active — the same
/// visit discipline as the simulator's scheduler.  The thread sleeps in
/// `recv_timeout` while the node wants timeouts and blocks indefinitely when
/// the node's timeout is provably a no-op (quiescence costs nothing).
fn spawn_node<T: Payload>(
    mut node: SkueueNode<T>,
    id: NodeId,
    mut transport: TcpTransport<T>,
    tick: Duration,
    status: Option<Arc<ProcStatus>>,
    seed: u64,
) -> (Sender<NodeEvent<T>>, JoinHandle<()>) {
    let (inbox_tx, inbox_rx) = channel::<NodeEvent<T>>();
    let handle = thread::spawn(move || {
        let counter = transport.counter();
        let mut rng =
            SimRng::new(seed ^ (id.0.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut outbox: Vec<(NodeId, SkueueMsg<T>)> = Vec::new();
        let mut completions: Vec<OpRecord<T>> = Vec::new();
        let mut tick_no: u64 = 0;
        'ticks: loop {
            let wants_timeout = node.is_active() && node.wants_timeout();
            let first = if wants_timeout {
                match inbox_rx.recv_timeout(tick) {
                    Ok(event) => Some(event),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            } else {
                match inbox_rx.recv() {
                    Ok(event) => Some(event),
                    Err(_) => break,
                }
            };
            tick_no += 1;
            // A tick expiry is itself a visit; otherwise the first event is.
            let mut visited = first.is_none();
            let mut next = first;
            while let Some(event) = next {
                visited = true;
                match event {
                    NodeEvent::Deliver { from, msg } => {
                        let mut ctx = Context::with_outbox(
                            id,
                            tick_no,
                            rng.next_u64(),
                            std::mem::take(&mut outbox),
                        );
                        node.on_message(from, msg, &mut ctx);
                        outbox = ctx.into_outbox();
                        for (to, m) in outbox.drain(..) {
                            transport.send(id, to, m);
                        }
                        counter.fetch_sub(1, Ordering::Relaxed);
                    }
                    NodeEvent::Inject {
                        id: req,
                        insert,
                        value,
                    } => {
                        if node.is_integrated() {
                            let kind = if insert {
                                BatchOp::Enqueue
                            } else {
                                BatchOp::Dequeue
                            };
                            node.generate_op(req, kind, value, tick_no);
                        } else {
                            eprintln!(
                                "skueue-node: dropping inject for non-integrated node {id:?}"
                            );
                        }
                    }
                    NodeEvent::Leave => node.request_leave(),
                    NodeEvent::Stop => break 'ticks,
                }
                next = inbox_rx.try_recv().ok();
            }
            if visited && node.is_active() {
                let mut ctx =
                    Context::with_outbox(id, tick_no, rng.next_u64(), std::mem::take(&mut outbox));
                node.on_timeout(&mut ctx);
                outbox = ctx.into_outbox();
                for (to, m) in outbox.drain(..) {
                    transport.send(id, to, m);
                }
            }
            if node.has_completed() {
                node.drain_completed_into(&mut completions);
                for record in completions.drain(..) {
                    transport.send_completion(record);
                }
            }
            if let Some(cell) = &status {
                cell.integrated
                    .store(node.is_integrated(), Ordering::Relaxed);
                cell.left.store(node.has_left(), Ordering::Relaxed);
            }
        }
    });
    (inbox_tx, handle)
}
