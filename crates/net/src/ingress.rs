//! The ingress client: issues client operations into a running cluster and
//! collects the completion stream into a verifiable history.
//!
//! The ingress owns the `RequestId` space (per-process monotone sequence
//! numbers, exactly as the simulation cluster's driver does), timestamps
//! every operation at issue and at completion for wall-clock latency
//! percentiles, and rebuilds a [`History`] from the streamed
//! [`NetFrame::Completion`] records — which then goes through the same
//! [`check_queue_sharded`] verifier as a simulated run.  This is where the
//! "correct under full asynchrony, checked a posteriori" contract of the
//! real transport is enforced.

use std::collections::HashMap;
use std::io;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use skueue_core::Payload;
use skueue_shard::ShardMap;
use skueue_sim::ids::{ProcessId, RequestId};
use skueue_verify::{check_queue_sharded, ConsistencyReport, History, OpRecord};

use crate::codec::Wire;
use crate::ctl::Control;
use crate::frame::{read_frame, NetFrame};
use crate::spec::ClusterSpec;

/// A connected ingress: one subscribed connection per daemon, with reader
/// threads streaming completions into a single channel.
#[derive(Debug)]
pub struct IngressClient<T: Payload> {
    spec: ClusterSpec,
    /// Write halves, per daemon (injects are fire-and-forget).
    conns: Vec<Control<T>>,
    /// Merged completion stream from all daemons.
    completions: Receiver<OpRecord<T>>,
    readers: Vec<JoinHandle<()>>,
    /// Base for this client's sequence numbers: wall-clock microseconds at
    /// connect time.  Distinct ingress invocations against the same cluster
    /// must not reuse `RequestId`s, and they share no state — the clock is
    /// the coordination-free source of disjoint id ranges (two invocations
    /// would need to issue within the same microsecond to collide).
    seq_base: u64,
    /// Per-process next sequence offset (the ingress owns the id space).
    next_seq: HashMap<u64, u64>,
    /// Issue timestamps of operations still awaiting completion.
    pending: HashMap<RequestId, Instant>,
    /// Completed records, in arrival order.
    records: Vec<OpRecord<T>>,
    /// Wall-clock issue→completion latencies, in microseconds.
    latencies_us: Vec<u64>,
    issued: u64,
}

impl<T: Payload + Wire> IngressClient<T> {
    /// Connects to every daemon, subscribes to its completion stream, and
    /// spawns one reader thread per connection.
    pub fn connect(spec: &ClusterSpec) -> io::Result<Self> {
        let (tx, completions) = channel();
        let mut conns = Vec::with_capacity(spec.num_daemons());
        let mut readers = Vec::with_capacity(spec.num_daemons());
        for addr in &spec.daemons {
            let mut conn = Control::<T>::connect(addr)?;
            conn.expect_ok(&NetFrame::Subscribe)?;
            // Hand the buffered read half to a completion pump; keep the
            // write half for injects.
            let mut reader = std::mem::replace(
                &mut conn.reader,
                std::io::BufReader::new(conn.stream.try_clone()?),
            );
            let tx = tx.clone();
            readers.push(std::thread::spawn(move || loop {
                match read_frame::<NetFrame<T>, _>(&mut reader) {
                    Ok(Some(NetFrame::Completion { record })) => {
                        if tx.send(record).is_err() {
                            break;
                        }
                    }
                    Ok(Some(_)) => {} // stray replies are ignored
                    Ok(None) | Err(_) => break,
                }
            }));
            conns.push(conn);
        }
        let seq_base = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        Ok(IngressClient {
            spec: spec.clone(),
            conns,
            completions,
            readers,
            seq_base,
            next_seq: HashMap::new(),
            pending: HashMap::new(),
            records: Vec::new(),
            latencies_us: Vec::new(),
            issued: 0,
        })
    }

    /// The spec this client was built from.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Issues an enqueue of `value` through process `pid`.
    pub fn enqueue(&mut self, pid: ProcessId, value: T) -> io::Result<RequestId> {
        self.inject(pid, true, value)
    }

    /// Issues a dequeue through process `pid`.
    pub fn dequeue(&mut self, pid: ProcessId) -> io::Result<RequestId> {
        self.inject(pid, false, T::default())
    }

    fn inject(&mut self, pid: ProcessId, insert: bool, value: T) -> io::Result<RequestId> {
        let seq = self.next_seq.entry(pid.0).or_insert(0);
        let id = RequestId::new(pid, self.seq_base + *seq);
        *seq += 1;
        let daemon = self.spec.daemon_of(pid);
        self.pending.insert(id, Instant::now());
        self.issued += 1;
        self.conns[daemon].send(&NetFrame::Inject { id, insert, value })?;
        self.pump();
        Ok(id)
    }

    /// Number of operations issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Number of completions received so far.
    pub fn completed(&self) -> u64 {
        self.records.len() as u64
    }

    /// Drains every completion that has already arrived, without blocking.
    pub fn pump(&mut self) {
        while let Ok(record) = self.completions.try_recv() {
            self.absorb(record);
        }
    }

    fn absorb(&mut self, record: OpRecord<T>) {
        if let Some(issued_at) = self.pending.remove(&record.id) {
            self.latencies_us
                .push(issued_at.elapsed().as_micros().min(u64::MAX as u128) as u64);
        }
        self.records.push(record);
    }

    /// Blocks until every issued operation has completed or `timeout`
    /// elapses.  Returns whether the cluster fully drained.
    pub fn await_quiescence(&mut self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        self.pump();
        while !self.pending.is_empty() {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            match self.completions.recv_timeout(deadline - now) {
                Ok(record) => self.absorb(record),
                Err(RecvTimeoutError::Timeout) => return self.pending.is_empty(),
                Err(RecvTimeoutError::Disconnected) => return self.pending.is_empty(),
            }
        }
        true
    }

    /// The completion records received so far, in arrival order.
    pub fn records(&self) -> &[OpRecord<T>] {
        &self.records
    }

    /// Wall-clock issue→completion latencies observed so far, microseconds.
    pub fn latencies_us(&self) -> &[u64] {
        &self.latencies_us
    }

    /// `(p50, p99, p999)` of the wall-clock latencies, in microseconds.
    pub fn latency_percentiles_us(&self) -> (u64, u64, u64) {
        percentiles_us(self.latencies_us.clone())
    }

    /// Runs the sharded sequential-consistency checker over the collected
    /// history.  Arrival order does not matter: the checker sorts by the
    /// records' total-order keys.
    ///
    /// Verification is only meaningful when this client observed *all*
    /// traffic since the cluster booted: a client that connects mid-stream
    /// can legitimately dequeue elements whose enqueues it never saw, which
    /// the checker reports as phantom elements.
    pub fn verify(&self) -> ConsistencyReport {
        let history = History::from_records(self.records.clone());
        let shards = self.spec.protocol_config().effective_shards();
        let map = ShardMap::new(shards as u32, self.spec.hash_seed);
        check_queue_sharded(&history, &map)
    }

    /// Closes the inject connections and joins the completion pumps.  Call
    /// after the daemons have shut down (their side closes the stream).
    pub fn close(self) {
        drop(self.conns);
        drop(self.completions);
        for reader in self.readers {
            let _ = reader.join();
        }
    }
}

/// `(p50, p99, p999)` of a latency sample, by nearest-rank on the sorted
/// values.  Returns zeros for an empty sample.
pub fn percentiles_us(mut sample: Vec<u64>) -> (u64, u64, u64) {
    if sample.is_empty() {
        return (0, 0, 0);
    }
    sample.sort_unstable();
    let pick = |p: f64| -> u64 {
        let rank = ((sample.len() as f64) * p).ceil().max(1.0) as usize;
        sample[rank.min(sample.len()) - 1]
    };
    (pick(0.50), pick(0.99), pick(0.999))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_nearest_rank() {
        let sample: Vec<u64> = (1..=1000).collect();
        assert_eq!(percentiles_us(sample), (500, 990, 999));
        assert_eq!(percentiles_us(vec![]), (0, 0, 0));
        assert_eq!(percentiles_us(vec![7]), (7, 7, 7));
    }
}
