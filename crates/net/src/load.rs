//! Open-loop Poisson load generation against a running cluster.
//!
//! An *open-loop* generator issues operations on a fixed stochastic schedule
//! regardless of how fast the system completes them (a closed loop would
//! hide queueing delay by self-throttling — the coordinated-omission trap).
//! Inter-arrival gaps are exponential with the configured rate, drawn from a
//! seeded [`SimRng`] so a load run is reproducible in *schedule* (completion
//! timing of course is not).

use std::io;
use std::time::{Duration, Instant};

use skueue_sim::ids::ProcessId;
use skueue_sim::SimRng;

use crate::codec::Wire;
use crate::ingress::IngressClient;
use skueue_core::Payload;

/// Parameters of one load run.
#[derive(Debug, Clone)]
pub struct LoadParams {
    /// Mean operation rate, in operations per second.
    pub rate_hz: f64,
    /// Total number of operations to issue.
    pub ops: u64,
    /// Probability that an operation is an enqueue (the remainder are
    /// dequeues); `0.6` matches the figure-2 workloads.
    pub enqueue_prob: f64,
    /// Seed of the schedule RNG (gap lengths, op mix, process choice).
    pub seed: u64,
    /// Processes to spread the operations over (round-robin would skew the
    /// aggregation tree; a uniform random choice matches the paper's setup).
    pub pids: Vec<ProcessId>,
    /// How long to wait for stragglers after the last inject.
    pub drain_timeout: Duration,
}

impl LoadParams {
    /// A small default workload: `ops` operations at `rate_hz` over the
    /// initial processes `0..n`.
    pub fn new(rate_hz: f64, ops: u64, n_processes: u64, seed: u64) -> Self {
        LoadParams {
            rate_hz,
            ops,
            enqueue_prob: 0.6,
            seed,
            pids: (0..n_processes).map(ProcessId).collect(),
            drain_timeout: Duration::from_secs(30),
        }
    }
}

/// The outcome of one load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Operations issued.
    pub issued: u64,
    /// Completions received (equals `issued` when the run drained).
    pub completed: u64,
    /// Whether every issued operation completed within the drain timeout.
    pub drained: bool,
    /// Whether the collected history passed the sharded consistency check.
    pub consistent: bool,
    /// Wall-clock duration from first inject to last completion, in
    /// milliseconds.
    pub duration_ms: u64,
    /// Completions per second over the measured duration.
    pub throughput_ops_s: f64,
    /// Median operation latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile operation latency, microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile operation latency, microseconds.
    pub p999_us: u64,
}

impl LoadReport {
    /// Renders the report as a JSON object (hand-rolled: the workspace's
    /// `serde` is a no-op compatibility stub).  Matches the schema of the
    /// benchmark snapshots (`BENCH_*.json`) so the same tooling can read it.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"transport\": \"tcp\",\n",
                "  \"issued\": {},\n",
                "  \"completed\": {},\n",
                "  \"drained\": {},\n",
                "  \"consistent\": {},\n",
                "  \"duration_ms\": {},\n",
                "  \"throughput_ops_s\": {:.2},\n",
                "  \"p50_us\": {},\n",
                "  \"p99_us\": {},\n",
                "  \"p999_us\": {}\n",
                "}}"
            ),
            self.issued,
            self.completed,
            self.drained,
            self.consistent,
            self.duration_ms,
            self.throughput_ops_s,
            self.p50_us,
            self.p99_us,
            self.p999_us,
        )
    }
}

/// Draws a uniform float in `[0, 1)` from the top 53 bits of the stream.
fn next_f64(rng: &mut SimRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Runs one open-loop load against a connected ingress: issue `params.ops`
/// operations on the Poisson schedule, wait for the cluster to drain, verify
/// the history, and report latency percentiles.
pub fn run_load<T: Payload + Wire + From<u64>>(
    ingress: &mut IngressClient<T>,
    params: &LoadParams,
) -> io::Result<LoadReport> {
    assert!(!params.pids.is_empty(), "load needs at least one process");
    assert!(params.rate_hz > 0.0, "rate must be positive");
    let mut rng = SimRng::new(params.seed ^ 0x10AD);
    let start = Instant::now();
    let mut next_at = start;
    let mut value: u64 = 0;
    for _ in 0..params.ops {
        let now = Instant::now();
        if next_at > now {
            std::thread::sleep(next_at - now);
        }
        let pid = params.pids[(rng.next_u64() % params.pids.len() as u64) as usize];
        if next_f64(&mut rng) < params.enqueue_prob {
            value += 1;
            ingress.enqueue(pid, T::from(value))?;
        } else {
            ingress.dequeue(pid)?;
        }
        // Exponential inter-arrival gap (inverse-CDF sampling).
        let gap_s = -(1.0 - next_f64(&mut rng)).ln() / params.rate_hz;
        next_at += Duration::from_secs_f64(gap_s.min(10.0));
    }
    let drained = ingress.await_quiescence(params.drain_timeout);
    let duration = start.elapsed();
    let (p50_us, p99_us, p999_us) = ingress.latency_percentiles_us();
    let completed = ingress.completed();
    let report = ingress.verify();
    Ok(LoadReport {
        issued: ingress.issued(),
        completed,
        drained,
        consistent: report.is_consistent(),
        duration_ms: duration.as_millis() as u64,
        throughput_ops_s: completed as f64 / duration.as_secs_f64().max(1e-9),
        p50_us,
        p99_us,
        p999_us,
    })
}
