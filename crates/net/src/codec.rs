//! Hand-rolled binary wire codec for the protocol types.
//!
//! The repository is built offline against no-op `serde` compat shims (see
//! `crates/compat/README.md`), so real serialization cannot be derived — it
//! is written out by hand here instead.  The format is deliberately boring:
//!
//! * fixed-width little-endian integers (`u8`/`u32`/`u64`),
//! * `bool` as one byte (`0`/`1`),
//! * length-prefixed (`u32`) byte strings and sequences,
//! * enums as a one-byte discriminant followed by the variant's fields in
//!   declaration order.
//!
//! Every type that can appear inside a [`skueue_core::SkueueMsg`] — plus the
//! [`skueue_verify::OpRecord`]s the completion stream carries — implements
//! [`Wire`].  Encoding is infallible (appends to a `Vec<u8>`); decoding
//! returns a [`DecodeError`] on truncated input or an unknown discriminant
//! and is exercised by round-trip property tests.

use skueue_core::{AnchorState, Batch, BatchOp, FirstRun, RunAssignment};
use skueue_core::{DhtOp, SkueueMsg};
use skueue_dht::{Element, PendingGet, StoredEntry};
use skueue_overlay::{Label, NeighborInfo, RouteProgress, VKind, VirtualId};
use skueue_sim::ids::{NodeId, ProcessId, RequestId};
use skueue_verify::{OpKind, OpRecord, OpResult, OrderKey};

/// Error returned when a byte sequence does not decode to the expected type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value was complete.
    Truncated,
    /// An enum discriminant byte had no corresponding variant.
    BadDiscriminant {
        /// Name of the type being decoded.
        ty: &'static str,
        /// The offending byte.
        value: u8,
    },
    /// A length prefix exceeded the sanity limit (corrupt or hostile frame).
    LengthOverflow {
        /// The claimed length.
        len: u64,
    },
    /// A `String` field held invalid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "input truncated"),
            DecodeError::BadDiscriminant { ty, value } => {
                write!(f, "unknown discriminant {value} for {ty}")
            }
            DecodeError::LengthOverflow { len } => write!(f, "length prefix {len} too large"),
            DecodeError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Sanity bound on decoded sequence lengths (elements, not bytes).  Protocol
/// batches are orders of magnitude smaller; the cap stops a corrupt length
/// prefix from provoking a huge allocation.
const MAX_SEQ_LEN: u64 = 1 << 24;

/// A cursor over the bytes of one frame.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` bytes.
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

/// A value with a self-describing binary encoding.
pub trait Wire: Sized {
    /// Appends this value's encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decodes one value from the reader, advancing it.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

/// Encodes a value into a fresh byte vector.
pub fn to_bytes<T: Wire>(value: &T) -> Vec<u8> {
    let mut buf = Vec::new();
    value.encode(&mut buf);
    buf
}

/// Decodes a value from a byte slice, requiring the slice to be fully
/// consumed (frames carry exactly one value).
pub fn from_bytes<T: Wire>(bytes: &[u8]) -> Result<T, DecodeError> {
    let mut r = Reader::new(bytes);
    let v = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(DecodeError::Truncated);
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Primitives.
// ---------------------------------------------------------------------------

impl Wire for u8 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(r.take(1)?[0])
    }
}

impl Wire for u32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(u32::from_le_bytes(r.take(4)?.try_into().expect("4 bytes")))
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(u64::from_le_bytes(r.take(8)?.try_into().expect("8 bytes")))
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            value => Err(DecodeError::BadDiscriminant { ty: "bool", value }),
        }
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = u64::decode(r)?;
        if len > MAX_SEQ_LEN {
            return Err(DecodeError::LengthOverflow { len });
        }
        let bytes = r.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = u64::decode(r)?;
        if len > MAX_SEQ_LEN {
            return Err(DecodeError::LengthOverflow { len });
        }
        let mut v = Vec::with_capacity((len as usize).min(1024));
        for _ in 0..len {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            value => Err(DecodeError::BadDiscriminant {
                ty: "Option",
                value,
            }),
        }
    }
}

impl<T: Wire> Wire for Box<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (**self).encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Box::new(T::decode(r)?))
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

// ---------------------------------------------------------------------------
// Identifiers and overlay types.
// ---------------------------------------------------------------------------

impl Wire for NodeId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(NodeId(u64::decode(r)?))
    }
}

impl Wire for ProcessId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ProcessId(u64::decode(r)?))
    }
}

impl Wire for RequestId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.origin.encode(buf);
        self.seq.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(RequestId {
            origin: ProcessId::decode(r)?,
            seq: u64::decode(r)?,
        })
    }
}

impl Wire for Label {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Label(u64::decode(r)?))
    }
}

impl Wire for VKind {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(self.index() as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take(1)?[0] {
            i @ 0..=2 => Ok(VKind::from_index(i as usize)),
            value => Err(DecodeError::BadDiscriminant { ty: "VKind", value }),
        }
    }
}

impl Wire for VirtualId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.process.encode(buf);
        self.kind.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(VirtualId {
            process: ProcessId::decode(r)?,
            kind: VKind::decode(r)?,
        })
    }
}

impl Wire for NeighborInfo {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.node.encode(buf);
        self.vid.encode(buf);
        self.label.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(NeighborInfo {
            node: NodeId::decode(r)?,
            vid: VirtualId::decode(r)?,
            label: Label::decode(r)?,
        })
    }
}

impl Wire for RouteProgress {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.target.encode(buf);
        self.bits.encode(buf);
        self.hops.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(RouteProgress {
            target: Label::decode(r)?,
            bits: Vec::<bool>::decode(r)?,
            hops: u32::decode(r)?,
        })
    }
}

// ---------------------------------------------------------------------------
// DHT types.
// ---------------------------------------------------------------------------

impl<T: Wire> Wire for Element<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.encode(buf);
        self.value.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Element {
            id: RequestId::decode(r)?,
            value: T::decode(r)?,
        })
    }
}

impl<T: Wire> Wire for StoredEntry<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.position.encode(buf);
        self.key.encode(buf);
        self.ticket.encode(buf);
        self.element.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(StoredEntry {
            position: u64::decode(r)?,
            key: Label::decode(r)?,
            ticket: u64::decode(r)?,
            element: Element::decode(r)?,
        })
    }
}

impl Wire for PendingGet {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.request.encode(buf);
        self.requester.encode(buf);
        self.max_ticket.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(PendingGet {
            request: RequestId::decode(r)?,
            requester: NodeId::decode(r)?,
            max_ticket: u64::decode(r)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Batches and anchor state.
// ---------------------------------------------------------------------------

impl Wire for BatchOp {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(match self {
            BatchOp::Enqueue => 0,
            BatchOp::Dequeue => 1,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take(1)?[0] {
            0 => Ok(BatchOp::Enqueue),
            1 => Ok(BatchOp::Dequeue),
            value => Err(DecodeError::BadDiscriminant {
                ty: "BatchOp",
                value,
            }),
        }
    }
}

impl Wire for FirstRun {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(match self {
            FirstRun::Enqueues => 0,
            FirstRun::Dequeues => 1,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take(1)?[0] {
            0 => Ok(FirstRun::Enqueues),
            1 => Ok(FirstRun::Dequeues),
            value => Err(DecodeError::BadDiscriminant {
                ty: "FirstRun",
                value,
            }),
        }
    }
}

impl Wire for Batch {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.first_run().encode(buf);
        (self.runs().len() as u64).encode(buf);
        for &run in self.runs() {
            run.encode(buf);
        }
        self.joins.encode(buf);
        self.leaves.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let first = FirstRun::decode(r)?;
        let runs = Vec::<u64>::decode(r)?;
        let joins = u64::decode(r)?;
        let leaves = u64::decode(r)?;
        Ok(Batch::from_parts(first, runs, joins, leaves))
    }
}

impl Wire for RunAssignment {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.wave.encode(buf);
        self.kind.encode(buf);
        self.count.encode(buf);
        self.pos_lo.encode(buf);
        self.pos_hi.encode(buf);
        self.value_base.encode(buf);
        self.ticket_base.encode(buf);
        self.descending.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(RunAssignment {
            wave: u64::decode(r)?,
            kind: BatchOp::decode(r)?,
            count: u64::decode(r)?,
            pos_lo: u64::decode(r)?,
            pos_hi: u64::decode(r)?,
            value_base: u64::decode(r)?,
            ticket_base: u64::decode(r)?,
            descending: bool::decode(r)?,
        })
    }
}

impl Wire for AnchorState {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.first.encode(buf);
        self.last.encode(buf);
        self.counter.encode(buf);
        self.ticket.encode(buf);
        self.epoch.encode(buf);
        self.phases_started.encode(buf);
        self.pending_churn.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(AnchorState {
            first: u64::decode(r)?,
            last: u64::decode(r)?,
            counter: u64::decode(r)?,
            ticket: u64::decode(r)?,
            epoch: u64::decode(r)?,
            phases_started: u64::decode(r)?,
            pending_churn: u64::decode(r)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Protocol messages.
// ---------------------------------------------------------------------------

impl Wire for skueue_core::messages::PutMeta {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.issued_round.encode(buf);
        self.order.encode(buf);
        self.wave.encode(buf);
        self.needs_ack.encode(buf);
        self.issuer.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(skueue_core::messages::PutMeta {
            issued_round: u64::decode(r)?,
            order: u64::decode(r)?,
            wave: u64::decode(r)?,
            needs_ack: bool::decode(r)?,
            issuer: NodeId::decode(r)?,
        })
    }
}

impl<T: Wire> Wire for DhtOp<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            DhtOp::Put { entry, meta } => {
                buf.push(0);
                entry.encode(buf);
                meta.encode(buf);
            }
            DhtOp::Get {
                position,
                max_ticket,
                request,
                requester,
            } => {
                buf.push(1);
                position.encode(buf);
                max_ticket.encode(buf);
                request.encode(buf);
                requester.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take(1)?[0] {
            0 => Ok(DhtOp::Put {
                entry: StoredEntry::decode(r)?,
                meta: skueue_core::messages::PutMeta::decode(r)?,
            }),
            1 => Ok(DhtOp::Get {
                position: u64::decode(r)?,
                max_ticket: u64::decode(r)?,
                request: RequestId::decode(r)?,
                requester: NodeId::decode(r)?,
            }),
            value => Err(DecodeError::BadDiscriminant { ty: "DhtOp", value }),
        }
    }
}

impl<T: Wire> Wire for skueue_core::messages::RoutedDhtOp<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.op.encode(buf);
        self.progress.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(skueue_core::messages::RoutedDhtOp {
            op: Box::<DhtOp<T>>::decode(r)?,
            progress: RouteProgress::decode(r)?,
        })
    }
}

impl<T: Wire> Wire for skueue_core::messages::DhtReplyItem<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.request.encode(buf);
        self.entry.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(skueue_core::messages::DhtReplyItem {
            request: RequestId::decode(r)?,
            entry: StoredEntry::decode(r)?,
        })
    }
}

impl<T: Wire> Wire for skueue_core::messages::JoinHandover<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.pred.encode(buf);
        self.succ.encode(buf);
        self.entries.encode(buf);
        self.pending.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(skueue_core::messages::JoinHandover {
            pred: NeighborInfo::decode(r)?,
            succ: NeighborInfo::decode(r)?,
            entries: Vec::<StoredEntry<T>>::decode(r)?,
            pending: Vec::<(u64, PendingGet)>::decode(r)?,
        })
    }
}

impl<T: Wire> Wire for skueue_core::messages::AbsorbPayload<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.pred.encode(buf);
        self.succ.encode(buf);
        self.entries.encode(buf);
        self.pending.encode(buf);
        self.child_batches.encode(buf);
        self.joiners.encode(buf);
        self.anchor.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(skueue_core::messages::AbsorbPayload {
            pred: NeighborInfo::decode(r)?,
            succ: NeighborInfo::decode(r)?,
            entries: Vec::<StoredEntry<T>>::decode(r)?,
            pending: Vec::<(u64, PendingGet)>::decode(r)?,
            child_batches: Vec::<(NodeId, u64, Batch)>::decode(r)?,
            joiners: Vec::<NeighborInfo>::decode(r)?,
            anchor: Option::<AnchorState>::decode(r)?,
        })
    }
}

impl<T: Wire> Wire for SkueueMsg<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            SkueueMsg::Aggregate {
                child,
                epoch,
                batch,
            } => {
                buf.push(0);
                child.encode(buf);
                epoch.encode(buf);
                batch.encode(buf);
            }
            SkueueMsg::AggregateAck => buf.push(1),
            SkueueMsg::Serve { epoch, runs } => {
                buf.push(2);
                epoch.encode(buf);
                runs.encode(buf);
            }
            SkueueMsg::DhtBatch { ops } => {
                buf.push(3);
                ops.encode(buf);
            }
            SkueueMsg::DhtReplyBatch { replies } => {
                buf.push(4);
                replies.encode(buf);
            }
            SkueueMsg::PutAck { request } => {
                buf.push(5);
                request.encode(buf);
            }
            SkueueMsg::JoinRequest { joiner, progress } => {
                buf.push(6);
                joiner.encode(buf);
                progress.encode(buf);
            }
            SkueueMsg::Integrate { handover } => {
                buf.push(7);
                handover.encode(buf);
            }
            SkueueMsg::IntegrateAck => buf.push(8),
            SkueueMsg::LeaveRequest { leaver } => {
                buf.push(9);
                leaver.encode(buf);
            }
            SkueueMsg::LeaveGranted => buf.push(10),
            SkueueMsg::LeaveDeferred => buf.push(11),
            SkueueMsg::AbsorbRequest => buf.push(12),
            SkueueMsg::AbsorbData(payload) => {
                buf.push(13);
                payload.encode(buf);
            }
            SkueueMsg::SiblingStatus { kind, active } => {
                buf.push(14);
                kind.encode(buf);
                active.encode(buf);
            }
            SkueueMsg::SetPred { new_pred } => {
                buf.push(15);
                new_pred.encode(buf);
            }
            SkueueMsg::SetSucc { new_succ } => {
                buf.push(16);
                new_succ.encode(buf);
            }
            SkueueMsg::UpdateFlag { phase } => {
                buf.push(17);
                phase.encode(buf);
            }
            SkueueMsg::UpdateAck { phase } => {
                buf.push(18);
                phase.encode(buf);
            }
            SkueueMsg::UpdateOver { phase } => {
                buf.push(19);
                phase.encode(buf);
            }
            SkueueMsg::AnchorTransfer { state } => {
                buf.push(20);
                state.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.take(1)?[0] {
            0 => SkueueMsg::Aggregate {
                child: NodeId::decode(r)?,
                epoch: u64::decode(r)?,
                batch: Batch::decode(r)?,
            },
            1 => SkueueMsg::AggregateAck,
            2 => SkueueMsg::Serve {
                epoch: u64::decode(r)?,
                runs: Vec::<RunAssignment>::decode(r)?,
            },
            3 => SkueueMsg::DhtBatch {
                ops: Vec::decode(r)?,
            },
            4 => SkueueMsg::DhtReplyBatch {
                replies: Vec::decode(r)?,
            },
            5 => SkueueMsg::PutAck {
                request: RequestId::decode(r)?,
            },
            6 => SkueueMsg::JoinRequest {
                joiner: NeighborInfo::decode(r)?,
                progress: RouteProgress::decode(r)?,
            },
            7 => SkueueMsg::Integrate {
                handover: Box::decode(r)?,
            },
            8 => SkueueMsg::IntegrateAck,
            9 => SkueueMsg::LeaveRequest {
                leaver: NeighborInfo::decode(r)?,
            },
            10 => SkueueMsg::LeaveGranted,
            11 => SkueueMsg::LeaveDeferred,
            12 => SkueueMsg::AbsorbRequest,
            13 => SkueueMsg::AbsorbData(Box::decode(r)?),
            14 => SkueueMsg::SiblingStatus {
                kind: VKind::decode(r)?,
                active: bool::decode(r)?,
            },
            15 => SkueueMsg::SetPred {
                new_pred: NeighborInfo::decode(r)?,
            },
            16 => SkueueMsg::SetSucc {
                new_succ: NeighborInfo::decode(r)?,
            },
            17 => SkueueMsg::UpdateFlag {
                phase: u64::decode(r)?,
            },
            18 => SkueueMsg::UpdateAck {
                phase: u64::decode(r)?,
            },
            19 => SkueueMsg::UpdateOver {
                phase: u64::decode(r)?,
            },
            20 => SkueueMsg::AnchorTransfer {
                state: AnchorState::decode(r)?,
            },
            value => {
                return Err(DecodeError::BadDiscriminant {
                    ty: "SkueueMsg",
                    value,
                })
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Completion records (the ingress's history stream).
// ---------------------------------------------------------------------------

impl Wire for OpKind {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(match self {
            OpKind::Enqueue => 0,
            OpKind::Dequeue => 1,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take(1)?[0] {
            0 => Ok(OpKind::Enqueue),
            1 => Ok(OpKind::Dequeue),
            value => Err(DecodeError::BadDiscriminant {
                ty: "OpKind",
                value,
            }),
        }
    }
}

impl Wire for OpResult {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            OpResult::Enqueued => buf.push(0),
            OpResult::Returned(src) => {
                buf.push(1);
                src.encode(buf);
            }
            OpResult::Empty => buf.push(2),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take(1)?[0] {
            0 => Ok(OpResult::Enqueued),
            1 => Ok(OpResult::Returned(RequestId::decode(r)?)),
            2 => Ok(OpResult::Empty),
            value => Err(DecodeError::BadDiscriminant {
                ty: "OpResult",
                value,
            }),
        }
    }
}

impl Wire for OrderKey {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.wave.encode(buf);
        self.shard.encode(buf);
        self.major.encode(buf);
        self.origin.encode(buf);
        self.minor.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(OrderKey {
            wave: u64::decode(r)?,
            shard: u64::decode(r)?,
            major: u64::decode(r)?,
            origin: u64::decode(r)?,
            minor: u64::decode(r)?,
        })
    }
}

impl<T: Wire> Wire for OpRecord<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.encode(buf);
        self.kind.encode(buf);
        self.value.encode(buf);
        self.result.encode(buf);
        self.order.encode(buf);
        self.issued_round.encode(buf);
        self.completed_round.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(OpRecord {
            id: RequestId::decode(r)?,
            kind: OpKind::decode(r)?,
            value: T::decode(r)?,
            result: OpResult::decode(r)?,
            order: OrderKey::decode(r)?,
            issued_round: u64::decode(r)?,
            completed_round: u64::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = to_bytes(&value);
        let back: T = from_bytes(&bytes).expect("decode");
        assert_eq!(back, value);
    }

    fn entry(pos: u64, origin: u64, seq: u64, value: u64) -> StoredEntry<u64> {
        StoredEntry {
            position: pos,
            key: Label(pos.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ticket: seq,
            element: Element {
                id: RequestId::new(ProcessId(origin), seq),
                value,
            },
        }
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(true);
        roundtrip(String::from("héllo"));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Option::<u64>::None);
        roundtrip(Some(7u64));
        roundtrip((NodeId(1), ProcessId(2)));
    }

    #[test]
    fn truncated_input_is_an_error() {
        let bytes = to_bytes(&u64::MAX);
        assert_eq!(
            from_bytes::<u64>(&bytes[..7]),
            Err(DecodeError::Truncated),
            "short read"
        );
        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(
            from_bytes::<u64>(&extended),
            Err(DecodeError::Truncated),
            "trailing bytes"
        );
    }

    #[test]
    fn bad_discriminants_are_errors() {
        assert!(matches!(
            from_bytes::<SkueueMsg<u64>>(&[99]),
            Err(DecodeError::BadDiscriminant { .. })
        ));
        assert!(matches!(
            from_bytes::<bool>(&[7]),
            Err(DecodeError::BadDiscriminant { .. })
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        (u64::MAX).encode(&mut buf);
        assert!(matches!(
            from_bytes::<Vec<u64>>(&buf),
            Err(DecodeError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn every_message_variant_roundtrips() {
        let neighbor = NeighborInfo::new(
            NodeId(4),
            VirtualId::new(ProcessId(1), VKind::Middle),
            Label(1 << 62),
        );
        let mut batch = Batch::empty();
        batch.push_op(BatchOp::Dequeue);
        batch.push_op(BatchOp::Enqueue);
        batch.joins = 1;
        let handover = skueue_core::messages::JoinHandover {
            pred: neighbor,
            succ: neighbor,
            entries: vec![entry(3, 1, 0, 42)],
            pending: vec![(
                9,
                PendingGet {
                    request: RequestId::new(ProcessId(2), 5),
                    requester: NodeId(8),
                    max_ticket: u64::MAX,
                },
            )],
        };
        let absorb = skueue_core::messages::AbsorbPayload {
            pred: neighbor,
            succ: neighbor,
            entries: vec![entry(1, 2, 3, 4)],
            pending: vec![],
            child_batches: vec![(NodeId(2), 7, batch.clone())],
            joiners: vec![neighbor],
            anchor: Some(AnchorState {
                first: 1,
                last: 2,
                counter: 3,
                ticket: 4,
                epoch: 5,
                phases_started: 6,
                pending_churn: 7,
            }),
        };
        let msgs: Vec<SkueueMsg<u64>> = vec![
            SkueueMsg::Aggregate {
                child: NodeId(1),
                epoch: 2,
                batch: batch.clone(),
            },
            SkueueMsg::AggregateAck,
            SkueueMsg::Serve {
                epoch: 3,
                runs: vec![RunAssignment {
                    wave: 1,
                    kind: BatchOp::Enqueue,
                    count: 2,
                    pos_lo: 3,
                    pos_hi: 4,
                    value_base: 5,
                    ticket_base: 6,
                    descending: true,
                }],
            },
            SkueueMsg::DhtBatch {
                ops: vec![
                    skueue_core::messages::RoutedDhtOp {
                        op: Box::new(DhtOp::Put {
                            entry: entry(7, 1, 2, 3),
                            meta: skueue_core::messages::PutMeta {
                                issued_round: 1,
                                order: 2,
                                wave: 3,
                                needs_ack: false,
                                issuer: NodeId(4),
                            },
                        }),
                        progress: RouteProgress::new(Label(77), 5),
                    },
                    skueue_core::messages::RoutedDhtOp {
                        op: Box::new(DhtOp::Get {
                            position: 1,
                            max_ticket: u64::MAX,
                            request: RequestId::new(ProcessId(0), 1),
                            requester: NodeId(2),
                        }),
                        progress: RouteProgress::linear_only(Label(3)),
                    },
                ],
            },
            SkueueMsg::DhtReplyBatch {
                replies: vec![skueue_core::messages::DhtReplyItem {
                    request: RequestId::new(ProcessId(1), 2),
                    entry: entry(3, 4, 5, 6),
                }],
            },
            SkueueMsg::PutAck {
                request: RequestId::new(ProcessId(9), 9),
            },
            SkueueMsg::JoinRequest {
                joiner: neighbor,
                progress: RouteProgress::new(Label(123), 8),
            },
            SkueueMsg::Integrate {
                handover: Box::new(handover),
            },
            SkueueMsg::IntegrateAck,
            SkueueMsg::LeaveRequest { leaver: neighbor },
            SkueueMsg::LeaveGranted,
            SkueueMsg::LeaveDeferred,
            SkueueMsg::AbsorbRequest,
            SkueueMsg::AbsorbData(Box::new(absorb)),
            SkueueMsg::SiblingStatus {
                kind: VKind::Right,
                active: true,
            },
            SkueueMsg::SetPred { new_pred: neighbor },
            SkueueMsg::SetSucc { new_succ: neighbor },
            SkueueMsg::UpdateFlag { phase: 1 },
            SkueueMsg::UpdateAck { phase: 2 },
            SkueueMsg::UpdateOver { phase: 3 },
            SkueueMsg::AnchorTransfer {
                state: AnchorState::default(),
            },
        ];
        for msg in msgs {
            roundtrip(msg);
        }
    }

    #[test]
    fn op_records_roundtrip_for_string_payloads() {
        let record = OpRecord {
            id: RequestId::new(ProcessId(3), 14),
            kind: OpKind::Dequeue,
            value: String::from("job #7"),
            result: OpResult::Returned(RequestId::new(ProcessId(1), 2)),
            order: OrderKey {
                wave: 1,
                shard: 2,
                major: 3,
                origin: 4,
                minor: 5,
            },
            issued_round: 10,
            completed_round: 20,
        };
        roundtrip(record);
    }

    proptest! {
        /// Batches of arbitrary shape survive the wire.
        #[test]
        fn prop_batch_roundtrips(
            runs in proptest::collection::vec(0u64..1000, 0..8),
            joins in 0u64..10,
            leaves in 0u64..10,
            stack in any::<bool>(),
        ) {
            let first = if stack { FirstRun::Dequeues } else { FirstRun::Enqueues };
            let batch = Batch::from_parts(first, runs, joins, leaves);
            let bytes = to_bytes(&batch);
            let back: Batch = from_bytes(&bytes).unwrap();
            prop_assert_eq!(back, batch);
        }

        /// Route progress (the only wire type with a bit vector) roundtrips.
        #[test]
        fn prop_route_progress_roundtrips(
            target in any::<u64>(),
            bits in proptest::collection::vec(any::<bool>(), 0..64),
            hops in any::<u32>(),
        ) {
            let p = RouteProgress { target: Label(target), bits, hops };
            let bytes = to_bytes(&p);
            let back: RouteProgress = from_bytes(&bytes).unwrap();
            prop_assert_eq!(back, p);
        }
    }
}
