//! Cluster specification shared by every service binary.
//!
//! A deployment is described by a handful of values — the daemon addresses,
//! the initial process count, the shard count and the hash seed — that every
//! binary (`skueue-node`, `skueue-ctl`, `skueue-ingress`, `skueue-load`) must
//! agree on.  [`ClusterSpec`] centralises them together with the placement
//! rules that make the topology computable without coordination:
//!
//! * process `p` emulates virtual nodes `3p`, `3p + 1`, `3p + 2` (Left,
//!   Middle, Right) — the same dense id scheme the simulation uses, so node
//!   ids are globally derivable from process ids,
//! * process `p` is hosted by daemon `p mod d` for `d` daemons, so *daemon*
//!   placement is globally derivable too — a `JOIN` needs no id negotiation.

use std::collections::BTreeMap;

use skueue_core::ProtocolConfig;
use skueue_overlay::{Label, LocalView, NeighborInfo, Topology, VKind, VirtualId};
use skueue_shard::{ShardId, ShardMap, ShardRouter};
use skueue_sim::ids::{NodeId, ProcessId};

/// Default per-tick timeout of a node thread, in milliseconds.
pub const DEFAULT_TICK_MS: u64 = 2;

/// Everything the service binaries must agree on to form one cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Listen addresses of the node daemons, in daemon-index order.
    pub daemons: Vec<String>,
    /// Number of initial (pre-joined) processes.
    pub initial: u64,
    /// Number of anchor shards.
    pub shards: usize,
    /// Seed of the publicly known label hash function.
    pub hash_seed: u64,
    /// Tick interval of the node threads, in milliseconds.  One tick plays
    /// the role of one synchronous round: pending messages are delivered,
    /// then the `TIMEOUT` action fires.
    pub tick_ms: u64,
}

impl ClusterSpec {
    /// A localhost spec: `n` daemons on consecutive ports starting at
    /// `base_port`, hosting `initial` processes across `shards` shards.
    pub fn localhost(n: usize, base_port: u16, initial: u64, shards: usize) -> Self {
        ClusterSpec {
            daemons: (0..n)
                .map(|i| format!("127.0.0.1:{}", base_port + i as u16))
                .collect(),
            initial,
            shards,
            hash_seed: ProtocolConfig::queue().hash_seed,
            tick_ms: DEFAULT_TICK_MS,
        }
    }

    /// Number of daemons in the cluster.
    pub fn num_daemons(&self) -> usize {
        self.daemons.len()
    }

    /// The daemon hosting process `pid` (static modular placement).
    pub fn daemon_of(&self, pid: ProcessId) -> usize {
        (pid.0 % self.daemons.len() as u64) as usize
    }

    /// The daemon hosting virtual node `id` (nodes live with their process).
    pub fn daemon_of_node(&self, id: NodeId) -> usize {
        self.daemon_of(ProcessId(id.0 / 3))
    }

    /// The protocol configuration every hosted node runs with.
    ///
    /// TCP preserves per-connection order and both local delivery paths are
    /// queues, so every (sender, receiver) channel is FIFO — the aggregate
    /// credit can stay relaxed exactly as in the synchronous simulation.
    pub fn protocol_config(&self) -> ProtocolConfig {
        ProtocolConfig::queue()
            .with_shards(self.shards)
            .with_hash_seed(self.hash_seed)
    }

    /// The shard router for this spec (deterministic process → shard map).
    pub fn router(&self) -> ShardRouter {
        ShardRouter::new(self.shard_map())
    }

    /// The shard map the verifier consumes.
    pub fn shard_map(&self) -> ShardMap {
        let effective = self.protocol_config().effective_shards();
        ShardMap::new(effective as u32, self.hash_seed)
    }

    /// Builds the initial membership: for every initial process, its shard,
    /// its three local views and whether it hosts the shard anchor — the same
    /// construction the simulation cluster performs, so a real deployment
    /// and a simulated one agree on the starting topology.
    ///
    /// Returns one [`InitialProcess`] per process, in process-id order, plus
    /// the per-shard distance-halving bit budgets.
    pub fn initial_membership(&self) -> (Vec<InitialProcess>, Vec<u32>) {
        let cfg = self.protocol_config();
        let hasher = cfg.hasher();
        let router = self.router();
        let shards = cfg.effective_shards();
        let mut groups: Vec<Vec<ProcessId>> = vec![Vec::new(); shards];
        for pid in (0..self.initial).map(ProcessId) {
            groups[router.route(pid) as usize].push(pid);
        }
        let topologies: Vec<Option<Topology>> = groups
            .iter()
            .map(|group| {
                (!group.is_empty())
                    .then(|| Topology::build(group, hasher).expect("dense non-empty process set"))
            })
            .collect();
        let budgets: Vec<u32> = groups
            .iter()
            .map(|group| {
                if cfg.bit_budget != 0 {
                    cfg.bit_budget
                } else {
                    skueue_overlay::recommended_bit_budget(group.len().max(1))
                }
            })
            .collect();

        let mut out = Vec::with_capacity(self.initial as usize);
        for pid in (0..self.initial).map(ProcessId) {
            let shard = router.route(pid);
            let topology = topologies[shard as usize]
                .as_ref()
                .expect("pid was grouped into this shard");
            let anchor_vid = topology.anchor();
            let mut views = Vec::with_capacity(3);
            for kind in VKind::ALL {
                let vid = VirtualId::new(pid, kind);
                let view = topology
                    .local_view(vid, &node_of)
                    .expect("vid from own topology");
                views.push((vid, view, vid == anchor_vid));
            }
            out.push(InitialProcess {
                pid,
                shard,
                views: views.try_into().expect("exactly three kinds"),
            });
        }
        (out, budgets)
    }

    /// The overlay view a *joining* process starts from: every pointer aimed
    /// at itself (the join protocol fills them in), ids derived from the
    /// dense scheme.  Mirrors the simulation cluster's join path.
    pub fn joining_views(&self, pid: ProcessId) -> [(VirtualId, LocalView); 3] {
        let hasher = self.protocol_config().hasher();
        let middle_label = self.hasher_label(&hasher, pid);
        let siblings: [NeighborInfo; 3] = [
            NeighborInfo::new(
                node_of(VirtualId::left(pid)),
                VirtualId::left(pid),
                VKind::Left.label_from_middle(middle_label),
            ),
            NeighborInfo::new(
                node_of(VirtualId::middle(pid)),
                VirtualId::middle(pid),
                middle_label,
            ),
            NeighborInfo::new(
                node_of(VirtualId::right(pid)),
                VirtualId::right(pid),
                VKind::Right.label_from_middle(middle_label),
            ),
        ];
        VKind::ALL.map(|kind| {
            let me = siblings[kind.index()];
            (
                VirtualId::new(pid, kind),
                LocalView {
                    me,
                    pred: me,
                    succ: me,
                    siblings,
                    middle_finger: None,
                },
            )
        })
    }

    /// The middle-node label of a process under this spec's hash seed.
    fn hasher_label(&self, hasher: &skueue_overlay::LabelHasher, pid: ProcessId) -> Label {
        hasher.process_label(pid)
    }

    /// The bootstrap node a joiner with id `pid` should contact: the middle
    /// node of the lowest-numbered *initial* process in the same shard.
    /// Initial processes never leave in the supported workloads, so this is
    /// always a valid integrated contact.
    pub fn bootstrap_for(&self, pid: ProcessId) -> Option<NodeId> {
        let router = self.router();
        let shard = router.route(pid);
        (0..self.initial)
            .map(ProcessId)
            .find(|&p| router.route(p) == shard)
            .map(|p| node_of(VirtualId::middle(p)))
    }

    /// The shard of process `pid`.
    pub fn shard_of(&self, pid: ProcessId) -> ShardId {
        self.router().route(pid)
    }
}

/// One initial process's construction recipe (see
/// [`ClusterSpec::initial_membership`]).
#[derive(Debug, Clone)]
pub struct InitialProcess {
    /// The process id.
    pub pid: ProcessId,
    /// Its anchor shard.
    pub shard: ShardId,
    /// `(vid, view, is_anchor)` for the three virtual nodes in
    /// Left/Middle/Right order.
    pub views: [(VirtualId, LocalView, bool); 3],
}

/// Dense virtual-node id assignment: process `p`'s nodes are `3p + kind`.
/// Identical to the simulation cluster's scheme, so histories and traces are
/// comparable across the two transports.
pub fn node_of(vid: VirtualId) -> NodeId {
    NodeId(vid.process.raw() * 3 + vid.kind.index() as u64)
}

/// Parses `--key value` style command-line arguments into a map, leaving
/// positional arguments (none of the binaries take any) as an error.
///
/// Shared by the four service binaries so their flag syntax stays uniform.
pub fn parse_flags(args: &[String]) -> Result<BTreeMap<String, String>, String> {
    let mut map = BTreeMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let key = arg
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected positional argument `{arg}`"))?;
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{key} is missing its value"))?;
        map.insert(key.to_string(), value.clone());
    }
    Ok(map)
}

/// Builds a [`ClusterSpec`] from parsed flags.  Recognised keys:
/// `--daemons a,b,c` (required), `--initial N` (default 3), `--shards S`
/// (default 1), `--hash-seed H` (default: the library default), and
/// `--tick-ms T` (default [`DEFAULT_TICK_MS`]).
pub fn spec_from_flags(flags: &BTreeMap<String, String>) -> Result<ClusterSpec, String> {
    let daemons: Vec<String> = flags
        .get("daemons")
        .ok_or("missing required flag --daemons a,b,c")?
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if daemons.is_empty() {
        return Err("--daemons must list at least one address".into());
    }
    let parse_u64 = |key: &str, default: u64| -> Result<u64, String> {
        match flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} expects a number")),
        }
    };
    let initial = parse_u64("initial", 3)?;
    if initial == 0 {
        return Err("--initial must be at least 1".into());
    }
    let shards = parse_u64("shards", 1)? as usize;
    let hash_seed = parse_u64("hash-seed", ProtocolConfig::queue().hash_seed)?;
    let tick_ms = parse_u64("tick-ms", DEFAULT_TICK_MS)?.max(1);
    Ok(ClusterSpec {
        daemons,
        initial,
        shards,
        hash_seed,
        tick_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_modular_and_dense() {
        let spec = ClusterSpec::localhost(3, 7100, 5, 2);
        assert_eq!(spec.daemon_of(ProcessId(0)), 0);
        assert_eq!(spec.daemon_of(ProcessId(4)), 1);
        assert_eq!(
            spec.daemon_of_node(NodeId(14)),
            spec.daemon_of(ProcessId(4))
        );
        assert_eq!(
            node_of(VirtualId::new(ProcessId(4), VKind::Right)),
            NodeId(14)
        );
    }

    #[test]
    fn initial_membership_matches_simulation_shape() {
        let spec = ClusterSpec::localhost(2, 7100, 5, 2);
        let (procs, budgets) = spec.initial_membership();
        assert_eq!(procs.len(), 5);
        assert_eq!(budgets.len(), 2);
        // Exactly one anchor per populated shard.
        let anchors: Vec<_> = procs
            .iter()
            .flat_map(|p| p.views.iter())
            .filter(|(_, _, a)| *a)
            .collect();
        assert_eq!(anchors.len(), 2);
        // Every view's `me` id follows the dense scheme.
        for p in &procs {
            for (vid, view, _) in &p.views {
                assert_eq!(view.me.node, node_of(*vid));
                assert_eq!(view.me.vid, *vid);
            }
        }
    }

    #[test]
    fn joiner_views_are_self_pointing() {
        let spec = ClusterSpec::localhost(2, 7100, 3, 1);
        let views = spec.joining_views(ProcessId(7));
        for (vid, view) in &views {
            assert_eq!(view.me.node, node_of(*vid));
            assert_eq!(view.pred, view.me);
            assert_eq!(view.succ, view.me);
            assert!(view.middle_finger.is_none());
        }
        assert!(spec.bootstrap_for(ProcessId(7)).is_some());
    }

    #[test]
    fn flags_parse_round_trips() {
        let args: Vec<String> = [
            "--daemons",
            "127.0.0.1:7100,127.0.0.1:7101",
            "--initial",
            "4",
            "--shards",
            "2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let flags = parse_flags(&args).unwrap();
        let spec = spec_from_flags(&flags).unwrap();
        assert_eq!(spec.num_daemons(), 2);
        assert_eq!(spec.initial, 4);
        assert_eq!(spec.shards, 2);
        assert!(parse_flags(&["oops".to_string()]).is_err());
        assert!(spec_from_flags(&BTreeMap::new()).is_err());
    }
}
