//! The real-clock transport: [`TcpTransport`] implements
//! [`skueue_sim::Transport`] over the daemon's message switch.
//!
//! Where [`skueue_sim::SimTransport`] owns a seeded delay model and a
//! round-bucketed delivery wheel (virtual time), `TcpTransport` is a thin
//! handle onto the daemon's switch thread: `send` enqueues the message onto
//! the switch, which either places it in a local node's inbox or writes it as
//! a length-prefixed frame onto the TCP connection towards the daemon hosting
//! the destination node (real time).  Delivery latency is whatever the
//! operating system provides — which is exactly the asynchronous model the
//! protocol's correctness argument assumes.  Determinism ends here: two runs
//! over this transport interleave differently, and correctness is checked
//! a posteriori by the history verifier instead of by byte-identity.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;

use skueue_core::SkueueMsg;
use skueue_sim::ids::NodeId;
use skueue_sim::Transport;

use crate::daemon::SwitchEvent;

/// A cloneable sender half of the daemon's switch, implementing the
/// simulation's [`Transport`] seam over real sockets.
///
/// Every node thread owns one clone; the shared counter tracks messages that
/// are inside this daemon's queues (switch queue or a local inbox).  Messages
/// handed to the kernel for a remote daemon leave the count — a real network
/// transport can only report its local queues (see [`Transport::in_flight`]).
#[derive(Debug)]
pub struct TcpTransport<T> {
    tx: Sender<SwitchEvent<T>>,
    in_flight: Arc<AtomicUsize>,
}

impl<T> Clone for TcpTransport<T> {
    fn clone(&self) -> Self {
        TcpTransport {
            tx: self.tx.clone(),
            in_flight: Arc::clone(&self.in_flight),
        }
    }
}

impl<T> TcpTransport<T> {
    /// Wraps the switch's sender half.  Called by the daemon when it spawns
    /// node threads.
    pub(crate) fn new(tx: Sender<SwitchEvent<T>>, in_flight: Arc<AtomicUsize>) -> Self {
        TcpTransport { tx, in_flight }
    }

    /// The shared local-queue depth counter (decremented by receivers).
    pub(crate) fn counter(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.in_flight)
    }

    /// Forwards a completed client operation to the switch, which streams it
    /// to every subscribed ingress connection.  Completions are driver-side
    /// results, not protocol messages, so they bypass the in-flight count.
    pub(crate) fn send_completion(&self, record: skueue_verify::OpRecord<T>) {
        let _ = self.tx.send(SwitchEvent::Completion(record));
    }
}

impl<T: Clone + std::fmt::Debug> Transport<SkueueMsg<T>> for TcpTransport<T> {
    fn send(&mut self, from: NodeId, to: NodeId, msg: SkueueMsg<T>) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        // A send error means the switch already shut down; the message is
        // dropped, matching a crashed link.  Nodes tolerate this during
        // shutdown only (the protocol itself assumes reliable channels).
        if self.tx.send(SwitchEvent::Route { from, to, msg }).is_err() {
            self.in_flight.fetch_sub(1, Ordering::Relaxed);
        }
    }

    fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    fn name(&self) -> &'static str {
        "tcp"
    }
}
