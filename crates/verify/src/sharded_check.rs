//! Cross-shard sequential-consistency checking (Definition 1 per anchor
//! shard, merged by the fixed interleaving rule).
//!
//! A sharded Skueue deployment partitions the queue into `S` independent
//! anchor shards; every process — and therefore every operation — belongs to
//! exactly one shard, deterministically (`skueue_shard::ShardMap`).  The
//! semantic object is the *sharded queue*: `S` FIFO lanes with deterministic
//! lane selection by origin process.  The protocol witnesses one global total
//! order `≺` — the lexicographic merge `(wave_epoch, shard_id, local_order)`
//! of the per-shard anchor orders — and this checker verifies that `≺` is a
//! sequentially consistent execution of that object:
//!
//! 1. **Shard discipline** — every record's order key names exactly the
//!    shard the map assigns to its origin process (so elements can never
//!    cross lanes silently).
//! 2. **Definition 1 per shard** — each shard's sub-history, under the
//!    global order restricted to it, passes the full unsharded queue check
//!    (all four Definition 1 properties *and* the stronger sequential
//!    replay).  The restriction of the merge to one shard is exactly the
//!    shard's own anchor order, so this checks each lane as a real FIFO
//!    queue.
//! 3. **Program order on the merged order** — every process's requests
//!    appear in `≺` in issue order (property 4 globally, not just per
//!    shard).
//!
//! With `S = 1` the checker delegates to [`check_queue`] unchanged, so
//! unsharded histories are accepted or rejected exactly as before.

use crate::history::{History, OpRecord};
use crate::queue_check::{check_process_order, check_queue};
use crate::report::{ConsistencyReport, Violation};
use skueue_dht::Payload;
use skueue_shard::ShardMap;

/// Checks a sharded-queue history against the shard layout it was produced
/// under.  See the [module docs](self) for the exact guarantee.
pub fn check_queue_sharded<T: Payload>(history: &History<T>, map: &ShardMap) -> ConsistencyReport {
    if map.is_single() {
        return check_queue(history);
    }

    let mut report = ConsistencyReport {
        records_checked: history.len(),
        ..Default::default()
    };

    // 1. Shard discipline + partition of the records by shard.
    let shards = map.shard_count() as usize;
    let mut per_shard: Vec<Vec<OpRecord<T>>> = vec![Vec::new(); shards];
    for r in history.records() {
        let expected = map.shard_of_process(r.id.origin) as u64;
        if r.order.shard != expected {
            report.violations.push(Violation::ShardMismatch {
                request: r.id,
                expected_shard: expected,
                witnessed_shard: r.order.shard,
            });
        }
        // Group by the *map's* assignment: a mis-tagged record is already
        // reported above, and grouping by origin keeps each process's
        // operations together so the per-shard checks stay meaningful.
        // (The clone — one per record, payload included — only happens at
        // verification time, never on the protocol path, and is dwarfed by
        // the checkers' own sorting/matching allocations.)
        per_shard[(expected as usize).min(shards - 1)].push(r.clone());
    }

    // 2. Definition 1 + sequential replay per shard, on the global order
    //    restricted to the shard.  Process-order violations are dropped
    //    from the sub-reports: every process lives in exactly one shard, so
    //    the global pass below would report the identical violation a
    //    second time.
    for records in per_shard {
        if records.is_empty() {
            continue;
        }
        let sub = History::from_records(records);
        let sub_report = check_queue(&sub);
        report.matched_pairs += sub_report.matched_pairs;
        report.empty_dequeues += sub_report.empty_dequeues;
        report.violations.extend(
            sub_report
                .violations
                .into_iter()
                .filter(|v| !matches!(v, Violation::ProcessOrderViolation { .. })),
        );
    }

    // 3. Program order on the merged order (each process lives in one shard,
    //    so this is implied by step 2 for well-tagged histories — checked
    //    globally anyway so a cross-shard ordering bug cannot hide behind a
    //    tagging bug).
    check_process_order(history, &mut report);

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{OpKind, OpResult, OrderKey};
    use skueue_sim::ids::{ProcessId, RequestId};

    /// A 2-shard map together with one process id per shard (found by
    /// probing the deterministic assignment).
    fn two_shard_fixture() -> (ShardMap, ProcessId, ProcessId) {
        let map = ShardMap::new(2, 0x5EED);
        let p0 = (0..64u64)
            .map(ProcessId)
            .find(|&p| map.shard_of_process(p) == 0)
            .expect("some process maps to shard 0");
        let p1 = (0..64u64)
            .map(ProcessId)
            .find(|&p| map.shard_of_process(p) == 1)
            .expect("some process maps to shard 1");
        (map, p0, p1)
    }

    fn rec(
        p: ProcessId,
        seq: u64,
        kind: OpKind,
        result: OpResult,
        order: OrderKey,
    ) -> OpRecord<u64> {
        OpRecord {
            id: RequestId::new(p, seq),
            kind,
            value: 0,
            result,
            order,
            issued_round: 0,
            completed_round: 1,
        }
    }

    #[test]
    fn single_shard_delegates_to_check_queue() {
        let map = ShardMap::new(1, 0);
        let p = ProcessId(0);
        let h = History::from_records(vec![
            rec(
                p,
                0,
                OpKind::Enqueue,
                OpResult::Enqueued,
                OrderKey::anchor(1, p),
            ),
            rec(
                p,
                1,
                OpKind::Dequeue,
                OpResult::Returned(RequestId::new(p, 0)),
                OrderKey::anchor(2, p),
            ),
        ]);
        check_queue_sharded(&h, &map).assert_consistent();
        // And an inconsistent history is still rejected.
        let bad = History::from_records(vec![
            rec(
                p,
                0,
                OpKind::Enqueue,
                OpResult::Enqueued,
                OrderKey::anchor(5, p),
            ),
            rec(
                p,
                1,
                OpKind::Dequeue,
                OpResult::Returned(RequestId::new(p, 0)),
                OrderKey::anchor(2, p),
            ),
        ]);
        assert!(!check_queue_sharded(&bad, &map).is_consistent());
    }

    #[test]
    fn independent_lanes_are_consistent() {
        let (map, p0, p1) = two_shard_fixture();
        let s0 = map.shard_of_process(p0);
        let s1 = map.shard_of_process(p1);
        // Each lane: enqueue then matched dequeue, interleaved across shards
        // by the (wave, shard, local) merge.
        let h = History::from_records(vec![
            rec(
                p0,
                0,
                OpKind::Enqueue,
                OpResult::Enqueued,
                OrderKey::sharded(1, s0, 1, p0),
            ),
            rec(
                p1,
                0,
                OpKind::Enqueue,
                OpResult::Enqueued,
                OrderKey::sharded(1, s1, 1, p1),
            ),
            rec(
                p1,
                1,
                OpKind::Dequeue,
                OpResult::Returned(RequestId::new(p1, 0)),
                OrderKey::sharded(2, s1, 2, p1),
            ),
            rec(
                p0,
                1,
                OpKind::Dequeue,
                OpResult::Returned(RequestId::new(p0, 0)),
                OrderKey::sharded(2, s0, 2, p0),
            ),
        ]);
        let report = check_queue_sharded(&h, &map);
        report.assert_consistent();
        assert_eq!(report.matched_pairs, 2);
    }

    #[test]
    fn fifo_violation_inside_a_shard_is_detected() {
        let (map, p0, _) = two_shard_fixture();
        let s0 = map.shard_of_process(p0);
        // Two enqueues in shard 0, dequeued out of order.
        let h = History::from_records(vec![
            rec(
                p0,
                0,
                OpKind::Enqueue,
                OpResult::Enqueued,
                OrderKey::sharded(1, s0, 1, p0),
            ),
            rec(
                p0,
                1,
                OpKind::Enqueue,
                OpResult::Enqueued,
                OrderKey::sharded(1, s0, 2, p0),
            ),
            rec(
                p0,
                2,
                OpKind::Dequeue,
                OpResult::Returned(RequestId::new(p0, 1)),
                OrderKey::sharded(2, s0, 3, p0),
            ),
            rec(
                p0,
                3,
                OpKind::Dequeue,
                OpResult::Returned(RequestId::new(p0, 0)),
                OrderKey::sharded(2, s0, 4, p0),
            ),
        ]);
        let report = check_queue_sharded(&h, &map);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::FifoViolation { .. })));
    }

    #[test]
    fn cross_lane_delivery_is_detected() {
        // A dequeue in shard 1 returning an element enqueued in shard 0 is a
        // phantom inside shard 1's lane.
        let (map, p0, p1) = two_shard_fixture();
        let s0 = map.shard_of_process(p0);
        let s1 = map.shard_of_process(p1);
        let h = History::from_records(vec![
            rec(
                p0,
                0,
                OpKind::Enqueue,
                OpResult::Enqueued,
                OrderKey::sharded(1, s0, 1, p0),
            ),
            rec(
                p1,
                0,
                OpKind::Dequeue,
                OpResult::Returned(RequestId::new(p0, 0)),
                OrderKey::sharded(2, s1, 1, p1),
            ),
        ]);
        let report = check_queue_sharded(&h, &map);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::PhantomElement { .. })));
    }

    #[test]
    fn shard_mismatch_is_detected() {
        let (map, p0, _) = two_shard_fixture();
        let wrong = map.shard_of_process(p0) ^ 1;
        let h = History::from_records(vec![rec(
            p0,
            0,
            OpKind::Enqueue,
            OpResult::Enqueued,
            OrderKey::sharded(1, wrong, 1, p0),
        )]);
        let report = check_queue_sharded(&h, &map);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ShardMismatch { .. })));
    }

    #[test]
    fn program_order_across_waves_is_checked_on_the_merge() {
        let (map, p0, _) = two_shard_fixture();
        let s0 = map.shard_of_process(p0);
        // seq 0 ordered in wave 3, seq 1 in wave 2 — program order broken on
        // the merged order even though locals are unique.
        let h = History::from_records(vec![
            rec(
                p0,
                0,
                OpKind::Enqueue,
                OpResult::Enqueued,
                OrderKey::sharded(3, s0, 5, p0),
            ),
            rec(
                p0,
                1,
                OpKind::Enqueue,
                OpResult::Enqueued,
                OrderKey::sharded(2, s0, 4, p0),
            ),
        ]);
        let report = check_queue_sharded(&h, &map);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ProcessOrderViolation { .. })));
    }
}
