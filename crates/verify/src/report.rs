//! Consistency-check reports.

use crate::history::OrderKey;
use serde::{Deserialize, Serialize};
use skueue_sim::ids::RequestId;
use std::fmt;

/// One violation found by a checker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Violation {
    /// Two records claim the same position in the total order.
    DuplicateOrder {
        /// The duplicated order value.
        order: OrderKey,
        /// The two requests involved.
        requests: (RequestId, RequestId),
    },
    /// The same request id appears more than once in the history.
    DuplicateRequest {
        /// The duplicated id.
        request: RequestId,
    },
    /// A dequeue returned an element that was never enqueued.
    PhantomElement {
        /// The dequeue.
        dequeue: RequestId,
        /// The claimed source enqueue.
        claimed_enqueue: RequestId,
    },
    /// Two dequeues returned the element of the same enqueue.
    DuplicateDelivery {
        /// The enqueue whose element was delivered twice.
        enqueue: RequestId,
        /// The two dequeues.
        dequeues: (RequestId, RequestId),
    },
    /// Property 1 of Definition 1: a matched dequeue is ordered before its
    /// enqueue.
    DequeueBeforeEnqueue {
        /// The enqueue.
        enqueue: RequestId,
        /// The dequeue.
        dequeue: RequestId,
    },
    /// Property 2 (first part): an empty dequeue is ordered between a matched
    /// enqueue and its dequeue.
    EmptyDequeueBetweenMatch {
        /// The matched enqueue.
        enqueue: RequestId,
        /// The matched dequeue.
        dequeue: RequestId,
        /// The offending `⊥` dequeue.
        empty_dequeue: RequestId,
    },
    /// Property 2 (second part): an unmatched enqueue is ordered before a
    /// matched enqueue whose element is dequeued afterwards.
    UnmatchedEnqueueOvertaken {
        /// The unmatched enqueue (its element is never returned).
        unmatched_enqueue: RequestId,
        /// The later matched enqueue.
        matched_enqueue: RequestId,
        /// The dequeue of the later enqueue.
        matched_dequeue: RequestId,
    },
    /// Property 3: FIFO order violated (elements dequeued out of enqueue
    /// order).
    FifoViolation {
        /// The earlier enqueue.
        first_enqueue: RequestId,
        /// The later enqueue.
        second_enqueue: RequestId,
    },
    /// Stack ordering violated (matched push/pop intervals cross).
    LifoViolation {
        /// The earlier push.
        first_push: RequestId,
        /// The later push.
        second_push: RequestId,
    },
    /// Property 4: a process's requests appear in `≺` out of issue order.
    ProcessOrderViolation {
        /// The earlier-issued request.
        earlier: RequestId,
        /// The later-issued request (ordered before the earlier one).
        later: RequestId,
    },
    /// Replay check: the response recorded for this request differs from what
    /// the reference sequential structure returns at its position in `≺`.
    ReplayMismatch {
        /// The request whose response disagrees with the sequential replay.
        request: RequestId,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A matched dequeue returned a payload different from the one its
    /// source enqueue inserted — the structure must store payloads
    /// byte-for-byte, never transform them.
    PayloadMismatch {
        /// The source enqueue.
        enqueue: RequestId,
        /// The dequeue whose returned payload disagrees.
        dequeue: RequestId,
        /// Debug rendering of both payloads.
        detail: String,
    },
    /// Sharded check: a record's witnessed order key names a different shard
    /// than the deterministic shard map assigns to its origin process.
    ShardMismatch {
        /// The mis-tagged request.
        request: RequestId,
        /// The shard the map assigns to the request's origin process.
        expected_shard: u64,
        /// The shard component of the witnessed order key.
        witnessed_shard: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DuplicateOrder { order, requests } => {
                write!(f, "order value {order} used by both {} and {}", requests.0, requests.1)
            }
            Violation::DuplicateRequest { request } => {
                write!(f, "request {request} appears more than once")
            }
            Violation::PhantomElement { dequeue, claimed_enqueue } => write!(
                f,
                "dequeue {dequeue} returned element of {claimed_enqueue}, which never enqueued"
            ),
            Violation::DuplicateDelivery { enqueue, dequeues } => write!(
                f,
                "element of {enqueue} returned by both {} and {}",
                dequeues.0, dequeues.1
            ),
            Violation::DequeueBeforeEnqueue { enqueue, dequeue } => {
                write!(f, "dequeue {dequeue} ordered before its enqueue {enqueue}")
            }
            Violation::EmptyDequeueBetweenMatch { enqueue, dequeue, empty_dequeue } => write!(
                f,
                "empty dequeue {empty_dequeue} ordered between {enqueue} and its dequeue {dequeue}"
            ),
            Violation::UnmatchedEnqueueOvertaken {
                unmatched_enqueue,
                matched_enqueue,
                matched_dequeue,
            } => write!(
                f,
                "unmatched enqueue {unmatched_enqueue} ordered before {matched_enqueue}, whose element was returned by {matched_dequeue}"
            ),
            Violation::FifoViolation { first_enqueue, second_enqueue } => write!(
                f,
                "FIFO violated: {first_enqueue} enqueued before {second_enqueue} but dequeued after it"
            ),
            Violation::LifoViolation { first_push, second_push } => write!(
                f,
                "LIFO violated: matched intervals of {first_push} and {second_push} cross"
            ),
            Violation::ProcessOrderViolation { earlier, later } => write!(
                f,
                "process order violated: {earlier} issued before {later} but ordered after it"
            ),
            Violation::ReplayMismatch { request, detail } => {
                write!(f, "replay mismatch at {request}: {detail}")
            }
            Violation::PayloadMismatch { enqueue, dequeue, detail } => write!(
                f,
                "payload mismatch between {enqueue} and its dequeue {dequeue}: {detail}"
            ),
            Violation::ShardMismatch {
                request,
                expected_shard,
                witnessed_shard,
            } => write!(
                f,
                "{request} belongs to shard {expected_shard} but its order key names shard {witnessed_shard}"
            ),
        }
    }
}

/// Result of a consistency check.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConsistencyReport {
    /// All violations found (empty means the history passed).
    pub violations: Vec<Violation>,
    /// Number of records checked.
    pub records_checked: usize,
    /// Number of matched enqueue/dequeue pairs.
    pub matched_pairs: usize,
    /// Number of dequeues that returned `⊥`.
    pub empty_dequeues: usize,
}

impl ConsistencyReport {
    /// True when no violations were found.
    pub fn is_consistent(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with a readable message if the history is inconsistent —
    /// convenience for tests.
    pub fn assert_consistent(&self) {
        if !self.is_consistent() {
            let mut msg = format!(
                "history is NOT sequentially consistent ({} violations):\n",
                self.violations.len()
            );
            for v in self.violations.iter().take(20) {
                msg.push_str(&format!("  - {v}\n"));
            }
            if self.violations.len() > 20 {
                msg.push_str(&format!("  ... and {} more\n", self.violations.len() - 20));
            }
            panic!("{msg}");
        }
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: ConsistencyReport) {
        self.violations.extend(other.violations);
        self.records_checked = self.records_checked.max(other.records_checked);
        self.matched_pairs = self.matched_pairs.max(other.matched_pairs);
        self.empty_dequeues = self.empty_dequeues.max(other.empty_dequeues);
    }
}

impl fmt::Display for ConsistencyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_consistent() {
            write!(
                f,
                "consistent: {} records, {} matched pairs, {} empty dequeues",
                self.records_checked, self.matched_pairs, self.empty_dequeues
            )
        } else {
            write!(
                f,
                "INCONSISTENT ({} violations over {} records)",
                self.violations.len(),
                self.records_checked
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skueue_sim::ids::ProcessId;

    fn rid(p: u64, s: u64) -> RequestId {
        RequestId::new(ProcessId(p), s)
    }

    #[test]
    fn empty_report_is_consistent() {
        let r = ConsistencyReport::default();
        assert!(r.is_consistent());
        r.assert_consistent();
        assert!(r.to_string().starts_with("consistent"));
    }

    #[test]
    fn report_with_violation_is_inconsistent() {
        let mut r = ConsistencyReport::default();
        r.violations
            .push(Violation::DuplicateRequest { request: rid(0, 1) });
        assert!(!r.is_consistent());
        assert!(r.to_string().contains("INCONSISTENT"));
    }

    #[test]
    #[should_panic(expected = "NOT sequentially consistent")]
    fn assert_consistent_panics_on_violation() {
        let mut r = ConsistencyReport::default();
        r.violations
            .push(Violation::DuplicateRequest { request: rid(0, 1) });
        r.assert_consistent();
    }

    #[test]
    fn merge_combines_violations() {
        let mut a = ConsistencyReport {
            records_checked: 5,
            ..Default::default()
        };
        let mut b = ConsistencyReport {
            records_checked: 9,
            ..Default::default()
        };
        b.violations
            .push(Violation::DuplicateRequest { request: rid(0, 0) });
        a.merge(b);
        assert_eq!(a.violations.len(), 1);
        assert_eq!(a.records_checked, 9);
    }

    #[test]
    fn violations_have_readable_display() {
        let samples = vec![
            Violation::DuplicateOrder {
                order: OrderKey::anchor(5, ProcessId(0)),
                requests: (rid(0, 1), rid(1, 1)),
            },
            Violation::PhantomElement {
                dequeue: rid(0, 1),
                claimed_enqueue: rid(9, 9),
            },
            Violation::DuplicateDelivery {
                enqueue: rid(0, 0),
                dequeues: (rid(1, 0), rid(2, 0)),
            },
            Violation::DequeueBeforeEnqueue {
                enqueue: rid(0, 0),
                dequeue: rid(1, 0),
            },
            Violation::EmptyDequeueBetweenMatch {
                enqueue: rid(0, 0),
                dequeue: rid(1, 0),
                empty_dequeue: rid(2, 0),
            },
            Violation::UnmatchedEnqueueOvertaken {
                unmatched_enqueue: rid(0, 0),
                matched_enqueue: rid(1, 0),
                matched_dequeue: rid(2, 0),
            },
            Violation::FifoViolation {
                first_enqueue: rid(0, 0),
                second_enqueue: rid(1, 0),
            },
            Violation::LifoViolation {
                first_push: rid(0, 0),
                second_push: rid(1, 0),
            },
            Violation::ProcessOrderViolation {
                earlier: rid(0, 0),
                later: rid(0, 1),
            },
            Violation::ReplayMismatch {
                request: rid(0, 0),
                detail: "oops".into(),
            },
        ];
        for v in samples {
            assert!(!v.to_string().is_empty());
        }
    }
}
