//! Sequential-consistency checking for the queue (Definition 1).

use crate::history::{History, OpKind, OpRecord, OpResult, OrderKey};
use crate::report::{ConsistencyReport, Violation};
use skueue_dht::Payload;
use skueue_sim::ids::RequestId;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// A matched enqueue/dequeue (or push/pop) pair with their order values.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MatchedPair {
    pub(crate) enqueue: RequestId,
    pub(crate) dequeue: RequestId,
    pub(crate) enqueue_order: OrderKey,
    pub(crate) dequeue_order: OrderKey,
}

/// Preprocessed matching shared with the stack checker.
pub(crate) struct PreparedMatching {
    pub(crate) report: ConsistencyReport,
    pub(crate) matched: Vec<MatchedPair>,
    pub(crate) unmatched_enqueues: Vec<(RequestId, OrderKey)>,
    pub(crate) empty_orders: Vec<OrderKey>,
}

/// Well-formedness checks plus matching construction, shared with the stack
/// checker (push/pop map onto enqueue/dequeue in [`OpKind`]).
pub(crate) fn prepare_for_stack<T: Payload>(history: &History<T>) -> PreparedMatching {
    let Prepared {
        report,
        matched,
        unmatched_enqueues,
        empty_orders,
        records: _,
    } = prepare(history);
    PreparedMatching {
        report,
        matched,
        unmatched_enqueues,
        empty_orders,
    }
}

/// Shared preprocessing of a history: well-formedness checks and the
/// construction of the matching `M`.
struct Prepared<'a, T> {
    report: ConsistencyReport,
    matched: Vec<MatchedPair>,
    /// Enqueues whose element is never returned, with their order values.
    unmatched_enqueues: Vec<(RequestId, OrderKey)>,
    /// Order values of dequeues that returned `⊥`.
    empty_orders: Vec<OrderKey>,
    /// Borrow of the underlying records (ties the lifetime; also used by
    /// future checkers that need record-level details).
    #[allow(dead_code)]
    records: &'a [OpRecord<T>],
}

fn prepare<T: Payload>(history: &History<T>) -> Prepared<'_, T> {
    let records = history.records();
    let mut report = ConsistencyReport {
        records_checked: records.len(),
        ..Default::default()
    };

    // Uniqueness of request ids and order values.
    let mut by_request: HashMap<RequestId, &OpRecord<T>> = HashMap::with_capacity(records.len());
    let mut by_order: BTreeMap<OrderKey, RequestId> = BTreeMap::new();
    for r in records {
        if let Some(previous) = by_request.insert(r.id, r) {
            report.violations.push(Violation::DuplicateRequest {
                request: previous.id,
            });
        }
        if let Some(previous) = by_order.insert(r.order, r.id) {
            report.violations.push(Violation::DuplicateOrder {
                order: r.order,
                requests: (previous, r.id),
            });
        }
    }

    // Build the matching M.
    let mut consumer_of: HashMap<RequestId, RequestId> = HashMap::new();
    let mut matched = Vec::new();
    let mut empty_orders = Vec::new();
    for r in records {
        match (r.kind, r.result) {
            (OpKind::Dequeue, OpResult::Returned(source)) => match by_request.get(&source) {
                Some(enq) if enq.kind == OpKind::Enqueue => {
                    if let Some(&other) = consumer_of.get(&source) {
                        report.violations.push(Violation::DuplicateDelivery {
                            enqueue: source,
                            dequeues: (other, r.id),
                        });
                    } else {
                        // Payload round-trip: the dequeue must hand back the
                        // exact payload its source enqueue inserted (the
                        // structure stores, it never transforms).
                        if r.value != enq.value {
                            report.violations.push(Violation::PayloadMismatch {
                                enqueue: source,
                                dequeue: r.id,
                                detail: format!(
                                    "enqueued {:?}, dequeue returned {:?}",
                                    enq.value, r.value
                                ),
                            });
                        }
                        consumer_of.insert(source, r.id);
                        matched.push(MatchedPair {
                            enqueue: source,
                            dequeue: r.id,
                            enqueue_order: enq.order,
                            dequeue_order: r.order,
                        });
                    }
                }
                _ => {
                    report.violations.push(Violation::PhantomElement {
                        dequeue: r.id,
                        claimed_enqueue: source,
                    });
                }
            },
            (OpKind::Dequeue, OpResult::Empty) => empty_orders.push(r.order),
            _ => {}
        }
    }
    empty_orders.sort_unstable();

    let unmatched_enqueues: Vec<(RequestId, OrderKey)> = records
        .iter()
        .filter(|r| r.kind == OpKind::Enqueue && !consumer_of.contains_key(&r.id))
        .map(|r| (r.id, r.order))
        .collect();

    report.matched_pairs = matched.len();
    report.empty_dequeues = empty_orders.len();

    Prepared {
        report,
        matched,
        unmatched_enqueues,
        empty_orders,
        records,
    }
}

/// Checks the local (per-process) issue-order property — property 4 of
/// Definition 1 (also reused by the cross-shard checker on the merged
/// order).
pub(crate) fn check_process_order<T: Payload>(
    history: &History<T>,
    report: &mut ConsistencyReport,
) {
    for (_process, ops) in history.by_process() {
        for window in ops.windows(2) {
            let (a, b) = (window[0], window[1]);
            if a.order >= b.order {
                report.violations.push(Violation::ProcessOrderViolation {
                    earlier: a.id,
                    later: b.id,
                });
            }
        }
    }
}

/// Checks the four properties of Definition 1 against the order witnessed in
/// the history.
pub fn check_queue_definition1<T: Payload>(history: &History<T>) -> ConsistencyReport {
    let Prepared {
        mut report,
        matched,
        unmatched_enqueues,
        empty_orders,
        records: _,
    } = prepare(history);

    // Property 1: enqueue before its dequeue.
    for pair in &matched {
        if pair.enqueue_order >= pair.dequeue_order {
            report.violations.push(Violation::DequeueBeforeEnqueue {
                enqueue: pair.enqueue,
                dequeue: pair.dequeue,
            });
        }
    }

    // Property 2, first part: no ⊥-dequeue strictly between a matched
    // enqueue and its dequeue.
    for pair in &matched {
        let lo = pair.enqueue_order.min(pair.dequeue_order);
        let hi = pair.enqueue_order.max(pair.dequeue_order);
        // Binary search for the first empty order greater than lo.
        let idx = empty_orders.partition_point(|&o| o <= lo);
        if idx < empty_orders.len() && empty_orders[idx] < hi {
            // Find the offending record id for the report.
            let offending_order = empty_orders[idx];
            let offender = history
                .records()
                .iter()
                .find(|r| r.order == offending_order && r.is_empty_dequeue())
                .map(|r| r.id)
                .unwrap_or(pair.dequeue);
            report.violations.push(Violation::EmptyDequeueBetweenMatch {
                enqueue: pair.enqueue,
                dequeue: pair.dequeue,
                empty_dequeue: offender,
            });
        }
    }

    // Property 2, second part: no unmatched enqueue ordered before a matched
    // enqueue whose element is returned.
    if let Some(&(first_unmatched, first_unmatched_order)) =
        unmatched_enqueues.iter().min_by_key(|(_, o)| *o)
    {
        for pair in &matched {
            if first_unmatched_order < pair.enqueue_order && pair.enqueue_order < pair.dequeue_order
            {
                report
                    .violations
                    .push(Violation::UnmatchedEnqueueOvertaken {
                        unmatched_enqueue: first_unmatched,
                        matched_enqueue: pair.enqueue,
                        matched_dequeue: pair.dequeue,
                    });
                // One witness per unmatched enqueue is enough to fail the
                // check; avoid flooding the report.
                break;
            }
        }
    }

    // Property 3: FIFO — matched elements leave in enqueue order.
    let mut by_enqueue_order = matched.clone();
    by_enqueue_order.sort_by_key(|p| p.enqueue_order);
    for window in by_enqueue_order.windows(2) {
        let (a, b) = (&window[0], &window[1]);
        if a.dequeue_order > b.dequeue_order {
            report.violations.push(Violation::FifoViolation {
                first_enqueue: a.enqueue,
                second_enqueue: b.enqueue,
            });
        }
    }

    // Property 4: per-process issue order.
    check_process_order(history, &mut report);

    report
}

/// Replays the history in the witnessed order on a reference sequential FIFO
/// queue and checks every response.
///
/// This is strictly stronger than Definition 1 for histories in which some
/// enqueues are never matched (see DESIGN.md); the Skueue protocol satisfies
/// it, so the test-suite uses it as the primary oracle.
pub fn check_queue_replay<T: Payload>(history: &History<T>) -> ConsistencyReport {
    let Prepared { mut report, .. } = prepare(history);

    let mut queue: VecDeque<RequestId> = VecDeque::new();
    for record in history.sorted_by_order() {
        match record.kind {
            OpKind::Enqueue => queue.push_back(record.id),
            OpKind::Dequeue => {
                let expected = queue.pop_front();
                match (expected, record.result) {
                    (Some(exp), OpResult::Returned(got)) if exp == got => {}
                    (None, OpResult::Empty) => {}
                    (Some(exp), OpResult::Returned(got)) => {
                        report.violations.push(Violation::ReplayMismatch {
                            request: record.id,
                            detail: format!("returned element of {got}, sequential queue would return element of {exp}"),
                        });
                    }
                    (Some(exp), OpResult::Empty) => {
                        report.violations.push(Violation::ReplayMismatch {
                            request: record.id,
                            detail: format!(
                                "returned ⊥ but sequential queue holds element of {exp}"
                            ),
                        });
                    }
                    (None, OpResult::Returned(got)) => {
                        report.violations.push(Violation::ReplayMismatch {
                            request: record.id,
                            detail: format!(
                                "returned element of {got} but sequential queue is empty"
                            ),
                        });
                    }
                    (_, OpResult::Enqueued) => {
                        report.violations.push(Violation::ReplayMismatch {
                            request: record.id,
                            detail: "dequeue recorded with an enqueue result".into(),
                        });
                    }
                }
            }
        }
    }
    check_process_order(history, &mut report);
    report
}

/// Runs both the Definition 1 check and the replay check and merges the
/// results — the oracle used by integration tests.
pub fn check_queue<T: Payload>(history: &History<T>) -> ConsistencyReport {
    let mut report = check_queue_definition1(history);
    let replay = check_queue_replay(history);
    report.merge(replay);
    report
}

/// [`check_queue`] over a bare record list — the entry point for callers
/// that synthesise histories rather than collect them from a cluster (the
/// model checker runs it on every terminal state's abstract history).
pub fn check_queue_records<T: Payload>(records: Vec<OpRecord<T>>) -> ConsistencyReport {
    check_queue(&History::from_records(records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use skueue_sim::ids::ProcessId;

    fn rid(p: u64, s: u64) -> RequestId {
        RequestId::new(ProcessId(p), s)
    }

    fn enq(p: u64, s: u64, order: u64) -> OpRecord<u64> {
        OpRecord {
            id: rid(p, s),
            kind: OpKind::Enqueue,
            value: 100 + s,
            result: OpResult::Enqueued,
            order: OrderKey::anchor(order, ProcessId(p)),
            issued_round: 0,
            completed_round: 1,
        }
    }

    fn deq(p: u64, s: u64, order: u64, from: Option<RequestId>) -> OpRecord<u64> {
        OpRecord {
            id: rid(p, s),
            kind: OpKind::Dequeue,
            value: from.map(|r| 100 + r.seq).unwrap_or(0),
            result: from.map(OpResult::Returned).unwrap_or(OpResult::Empty),
            order: OrderKey::anchor(order, ProcessId(p)),
            issued_round: 0,
            completed_round: 1,
        }
    }

    fn history(records: Vec<OpRecord<u64>>) -> History<u64> {
        History::from_records(records)
    }

    #[test]
    fn empty_history_is_consistent() {
        let h = History::<u64>::new();
        assert!(check_queue(&h).is_consistent());
    }

    #[test]
    fn simple_fifo_history_passes() {
        // p0: enq a, enq b; p1: deq -> a, deq -> b, deq -> ⊥
        let h = history(vec![
            enq(0, 0, 1),
            enq(0, 1, 2),
            deq(1, 0, 3, Some(rid(0, 0))),
            deq(1, 1, 4, Some(rid(0, 1))),
            deq(1, 2, 5, None),
        ]);
        let report = check_queue(&h);
        report.assert_consistent();
        assert_eq!(report.matched_pairs, 2);
        assert_eq!(report.empty_dequeues, 1);
    }

    #[test]
    fn leftover_elements_are_fine() {
        let h = history(vec![
            enq(0, 0, 1),
            deq(1, 0, 2, Some(rid(0, 0))),
            enq(0, 1, 3),
            enq(0, 2, 4),
        ]);
        check_queue(&h).assert_consistent();
    }

    #[test]
    fn payload_mismatch_detected() {
        // The dequeue claims the element of enq(0,0) but returns a payload
        // different from the one that enqueue inserted.
        let mut bad = deq(1, 0, 2, Some(rid(0, 0)));
        bad.value = 999;
        let h = history(vec![enq(0, 0, 1), bad]);
        let report = check_queue(&h);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::PayloadMismatch { .. })));
        // Byte-identical payloads pass.
        let h = history(vec![enq(0, 0, 1), deq(1, 0, 2, Some(rid(0, 0)))]);
        check_queue(&h).assert_consistent();
    }

    #[test]
    fn generic_payload_histories_check() {
        // The checkers are payload-generic: a Vec<u8> history round-trips.
        let enq = OpRecord {
            id: rid(0, 0),
            kind: OpKind::Enqueue,
            value: vec![1u8, 2, 3],
            result: OpResult::Enqueued,
            order: OrderKey::anchor(1, skueue_sim::ids::ProcessId(0)),
            issued_round: 0,
            completed_round: 1,
        };
        let deq = OpRecord {
            id: rid(1, 0),
            kind: OpKind::Dequeue,
            value: vec![1u8, 2, 3],
            result: OpResult::Returned(rid(0, 0)),
            order: OrderKey::anchor(2, skueue_sim::ids::ProcessId(1)),
            issued_round: 0,
            completed_round: 1,
        };
        let h: History<Vec<u8>> = History::from_records(vec![enq.clone(), deq.clone()]);
        check_queue(&h).assert_consistent();
        let mut bad = deq;
        bad.value = vec![9];
        let h: History<Vec<u8>> = History::from_records(vec![enq, bad]);
        assert!(!check_queue(&h).is_consistent());
    }

    #[test]
    fn duplicate_order_detected() {
        // Two requests of the same process claiming the same order key.
        let h = history(vec![enq(0, 0, 1), enq(0, 1, 1)]);
        let report = check_queue_definition1(&h);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DuplicateOrder { .. })));
    }

    #[test]
    fn duplicate_request_detected() {
        let h = history(vec![enq(0, 0, 1), enq(0, 0, 2)]);
        let report = check_queue_definition1(&h);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DuplicateRequest { .. })));
    }

    #[test]
    fn phantom_element_detected() {
        let h = history(vec![deq(1, 0, 1, Some(rid(9, 9)))]);
        let report = check_queue_definition1(&h);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::PhantomElement { .. })));
    }

    #[test]
    fn duplicate_delivery_detected() {
        let h = history(vec![
            enq(0, 0, 1),
            deq(1, 0, 2, Some(rid(0, 0))),
            deq(2, 0, 3, Some(rid(0, 0))),
        ]);
        let report = check_queue_definition1(&h);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DuplicateDelivery { .. })));
    }

    #[test]
    fn dequeue_before_enqueue_detected() {
        let h = history(vec![enq(0, 0, 5), deq(1, 0, 2, Some(rid(0, 0)))]);
        let report = check_queue_definition1(&h);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DequeueBeforeEnqueue { .. })));
        // Replay also rejects it (the dequeue happens on an empty queue).
        assert!(!check_queue_replay(&h).is_consistent());
    }

    #[test]
    fn empty_dequeue_between_match_detected() {
        // enq(1) ... empty-deq(2) ... deq(3)->element — the ⊥ should not be
        // possible while the element is in the queue.
        let h = history(vec![
            enq(0, 0, 1),
            deq(1, 0, 2, None),
            deq(2, 0, 3, Some(rid(0, 0))),
        ]);
        let report = check_queue_definition1(&h);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::EmptyDequeueBetweenMatch { .. })));
        assert!(!check_queue_replay(&h).is_consistent());
    }

    #[test]
    fn unmatched_enqueue_overtaken_detected() {
        // enq A (never returned), enq B, deq -> B. FIFO would require A first.
        let h = history(vec![
            enq(0, 0, 1),
            enq(0, 1, 2),
            deq(1, 0, 3, Some(rid(0, 1))),
        ]);
        let report = check_queue_definition1(&h);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::UnmatchedEnqueueOvertaken { .. })));
        assert!(!check_queue_replay(&h).is_consistent());
    }

    #[test]
    fn fifo_violation_detected() {
        // A enqueued before B but B dequeued first.
        let h = history(vec![
            enq(0, 0, 1),
            enq(0, 1, 2),
            deq(1, 0, 3, Some(rid(0, 1))),
            deq(1, 1, 4, Some(rid(0, 0))),
        ]);
        let report = check_queue_definition1(&h);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::FifoViolation { .. })));
        assert!(!check_queue_replay(&h).is_consistent());
    }

    #[test]
    fn process_order_violation_detected() {
        // Process 0 issues seq 0 then seq 1, but the order places seq 1 first.
        let h = history(vec![enq(0, 0, 5), enq(0, 1, 3)]);
        let report = check_queue_definition1(&h);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ProcessOrderViolation { .. })));
        assert!(!check_queue_replay(&h).is_consistent());
    }

    #[test]
    fn replay_detects_wrong_element_even_when_def1_passes_locally() {
        // Two enqueues from different processes and a dequeue that returns the
        // second one while the first is never returned.
        let h = history(vec![
            enq(0, 0, 1),
            enq(1, 0, 2),
            deq(2, 0, 3, Some(rid(1, 0))),
        ]);
        let replay = check_queue_replay(&h);
        assert!(!replay.is_consistent());
        assert!(replay
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ReplayMismatch { .. })));
    }

    #[test]
    fn replay_detects_bogus_empty() {
        let h = history(vec![enq(0, 0, 1), deq(1, 0, 2, None)]);
        let replay = check_queue_replay(&h);
        assert!(!replay.is_consistent());
    }

    #[test]
    fn interleaved_multi_process_history_passes() {
        // Three processes, interleaved operations consistent with FIFO.
        let h = history(vec![
            enq(0, 0, 1),                  // A
            enq(1, 0, 2),                  // B
            deq(2, 0, 3, Some(rid(0, 0))), // -> A
            enq(0, 1, 4),                  // C
            deq(1, 1, 5, Some(rid(1, 0))), // -> B
            deq(2, 1, 6, Some(rid(0, 1))), // -> C
            deq(0, 2, 7, None),            // ⊥
        ]);
        check_queue(&h).assert_consistent();
    }
}
