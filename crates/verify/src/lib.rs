//! # skueue-verify — sequential-consistency checking
//!
//! Theorem 14 of the Skueue paper states that the protocol implements a
//! *sequentially consistent* distributed queue (Definition 1), and Theorem 21
//! states the analogue for the stack variant.  This crate provides the
//! machinery the test-suite and the experiment harness use to check those
//! claims on every execution:
//!
//! * [`History`] records one [`OpRecord`] per completed request: its origin
//!   and per-process sequence number, its kind, its outcome, and the position
//!   `value(op)` in the total order `≺` that the protocol constructs
//!   (Section V).  The protocol *witnesses* its own ordering; the checker
//!   verifies that the witnessed ordering actually satisfies the definition.
//! * [`check_queue_definition1`] checks the four properties of Definition 1
//!   literally.
//! * [`check_queue_replay`] performs the stronger *replay* check: executing
//!   the requests in the witnessed order on a reference sequential queue must
//!   reproduce every response (matched element or `⊥`) exactly.  This is the
//!   check the protocol is expected to pass (and implies Definition 1 for
//!   well-formed histories).
//! * [`check_stack_replay`] / [`check_stack_ordering`] are the LIFO
//!   counterparts used for the Section VI stack.
//! * [`check_queue_sharded`] checks a *sharded* deployment (`shards > 1`):
//!   Definition 1 plus the replay oracle on every anchor shard's lane, shard
//!   discipline of the witnessed keys, and program order on the merged
//!   `(wave, shard, local)` order.
//!
//! All checkers return a [`ConsistencyReport`] listing every violation found
//! (not just the first), which makes protocol bugs much easier to localise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod history;
pub mod queue_check;
pub mod report;
pub mod sharded_check;
pub mod stack_check;

pub use history::{History, OpKind, OpRecord, OpResult, OrderKey};
pub use queue_check::{
    check_queue, check_queue_definition1, check_queue_records, check_queue_replay,
};
pub use report::{ConsistencyReport, Violation};
pub use sharded_check::check_queue_sharded;
// Re-exported so checker users can name the payload bound without a direct
// skueue-dht dependency.
pub use skueue_dht::Payload;
pub use stack_check::{check_stack, check_stack_ordering, check_stack_replay};
