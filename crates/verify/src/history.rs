//! Execution histories.
//!
//! A [`History`] is the complete record of one simulated execution as far as
//! queue/stack semantics are concerned: one [`OpRecord`] per request issued
//! to the system.  The protocol fills in the `order` field with the request's
//! position `value(op)` in the total order `≺` it constructs (Section V of
//! the paper); the checkers in this crate then verify that this order indeed
//! witnesses sequential consistency.

use serde::{Deserialize, Serialize};
use skueue_dht::Payload;
use skueue_sim::ids::{ProcessId, RequestId};
use std::collections::BTreeMap;

/// A request's position in the witnessed total order `≺`.
///
/// For batched requests the anchor's counter gives a globally unique `major`
/// value (`value(op)` of Section V) and `minor` is zero.  The stack's
/// *locally combined* push/pop pairs (Section VI) never reach the anchor;
/// they are placed directly after the issuing process's most recent ordered
/// request by reusing its `major` and counting up `minor`.  Ties on
/// `(major, minor)` cannot occur between anchor-assigned values; the
/// `origin` component only disambiguates locally combined pairs of different
/// processes that anchor to the same major (which keeps each pair adjacent —
/// required for the LIFO nesting property).
///
/// **Sharded deployments** (`shards > 1`) prepend two components: the anchor
/// shard's *wave epoch* and the *shard id*, so the global order is the fixed
/// lexicographic interleaving `(wave, shard, major, …)` of the per-shard
/// anchor orders.  Restricted to one shard this is exactly the shard's own
/// anchor order (the counter is monotone across waves), and every process
/// issues all of its requests into one shard — so the merged order stays
/// consistent with every process's program order by construction.  Unsharded
/// histories leave both components at zero, which makes the ordering (and
/// the key bytes) identical to the pre-sharding format.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct OrderKey {
    /// Wave epoch of the assigning anchor shard (zero for unsharded runs
    /// and locally combined pairs) — the leading merge component.
    pub wave: u64,
    /// Id of the assigning anchor shard (zero for unsharded runs).
    pub shard: u64,
    /// Anchor-assigned `value(op)` (or the major of the preceding ordered
    /// request for locally combined pairs).
    pub major: u64,
    /// Raw id of the origin process (tie-break between different processes'
    /// locally combined pairs).
    pub origin: u64,
    /// Position among the locally combined requests anchored at `major`
    /// (zero for anchor-assigned requests).
    pub minor: u64,
}

impl OrderKey {
    /// Key of an anchor-ordered request (unsharded deployment).
    pub fn anchor(major: u64, origin: ProcessId) -> Self {
        OrderKey {
            wave: 0,
            shard: 0,
            major,
            origin: origin.raw(),
            minor: 0,
        }
    }

    /// Key of a request ordered by shard `shard`'s anchor in its wave
    /// `wave`.  The interleaving rule of the sharded order: `(wave, shard,
    /// major)` lexicographically.
    pub fn sharded(wave: u64, shard: u32, major: u64, origin: ProcessId) -> Self {
        OrderKey {
            wave,
            shard: shard as u64,
            major,
            origin: origin.raw(),
            minor: 0,
        }
    }

    /// Key of a locally combined request anchored after `major`.
    pub fn local(major: u64, origin: ProcessId, minor: u64) -> Self {
        OrderKey {
            wave: 0,
            shard: 0,
            major,
            origin: origin.raw(),
            minor,
        }
    }
}

impl std::fmt::Display for OrderKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.wave != 0 || self.shard != 0 {
            write!(f, "w{}s{}:{}", self.wave, self.shard, self.major)?;
            if self.minor != 0 {
                write!(f, "+{}.{}", self.origin, self.minor)?;
            }
            return Ok(());
        }
        if self.minor == 0 {
            write!(f, "{}", self.major)
        } else {
            write!(f, "{}+{}.{}", self.major, self.origin, self.minor)
        }
    }
}

/// Kind of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// `ENQUEUE()` (or `PUSH()` for the stack).
    Enqueue,
    /// `DEQUEUE()` (or `POP()` for the stack).
    Dequeue,
}

/// Outcome of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpResult {
    /// An `ENQUEUE()`/`PUSH()` completed (the element is in the structure or
    /// already consumed by a matched dequeue).
    Enqueued,
    /// A `DEQUEUE()`/`POP()` returned the element that was inserted by the
    /// request with this id.
    Returned(RequestId),
    /// A `DEQUEUE()`/`POP()` returned `⊥` (empty).
    Empty,
}

/// One completed request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpRecord<T = u64> {
    /// Identity of the request: origin process and per-process sequence
    /// number (`OP_{v,i}`), which encodes the process-local issue order.
    pub id: RequestId,
    /// Whether this is an enqueue/push or dequeue/pop.
    pub kind: OpKind,
    /// Payload value carried by an enqueue/push; for a dequeue/pop, the
    /// payload of the element it returned (`T::default()` — `0` for `u64` —
    /// when it returned `⊥`).
    pub value: T,
    /// The outcome.
    pub result: OpResult,
    /// The request's position in the protocol's witnessed total order `≺`.
    pub order: OrderKey,
    /// Round in which the request was issued (for latency statistics).
    pub issued_round: u64,
    /// Round in which the request completed (for latency statistics).
    pub completed_round: u64,
}

impl<T: Payload> OpRecord<T> {
    /// Latency of the request in rounds.
    pub fn latency(&self) -> u64 {
        self.completed_round.saturating_sub(self.issued_round)
    }

    /// True if this is a dequeue that returned `⊥`.
    pub fn is_empty_dequeue(&self) -> bool {
        self.kind == OpKind::Dequeue && self.result == OpResult::Empty
    }
}

/// A complete execution history.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct History<T = u64> {
    records: Vec<OpRecord<T>>,
}

impl<T> Default for History<T> {
    fn default() -> Self {
        History {
            records: Vec::new(),
        }
    }
}

impl<T: Payload> History<T> {
    /// Creates an empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Creates a history from records.
    pub fn from_records(records: Vec<OpRecord<T>>) -> Self {
        History { records }
    }

    /// Adds a record.
    pub fn push(&mut self, record: OpRecord<T>) {
        self.records.push(record);
    }

    /// All records in insertion order.
    pub fn records(&self) -> &[OpRecord<T>] {
        &self.records
    }

    /// Consumes the history and returns the records in insertion order.
    pub fn into_records(self) -> Vec<OpRecord<T>> {
        self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records were collected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records of a given kind.
    pub fn count_kind(&self, kind: OpKind) -> usize {
        self.records.iter().filter(|r| r.kind == kind).count()
    }

    /// Number of dequeues/pops that returned `⊥`.
    pub fn count_empty(&self) -> usize {
        self.records.iter().filter(|r| r.is_empty_dequeue()).count()
    }

    /// All records sorted by the witnessed total order.
    pub fn sorted_by_order(&self) -> Vec<&OpRecord<T>> {
        let mut sorted: Vec<&OpRecord<T>> = self.records.iter().collect();
        sorted.sort_by_key(|r| r.order);
        sorted
    }

    /// Records grouped by origin process, each group sorted by the
    /// per-process sequence number (the issue order at that process).
    pub fn by_process(&self) -> BTreeMap<ProcessId, Vec<&OpRecord<T>>> {
        let mut map: BTreeMap<ProcessId, Vec<&OpRecord<T>>> = BTreeMap::new();
        for r in &self.records {
            map.entry(r.id.origin).or_default().push(r);
        }
        for group in map.values_mut() {
            group.sort_by_key(|r| r.id.seq);
        }
        map
    }

    /// Mean latency over all records (0.0 when empty).
    pub fn mean_latency(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.latency()).sum::<u64>() as f64 / self.records.len() as f64
    }

    /// Largest single-record latency (0 when empty).
    pub fn max_latency(&self) -> u64 {
        self.records.iter().map(|r| r.latency()).max().unwrap_or(0)
    }

    /// Nearest-rank latency percentile (`q` in `(0, 1]`; 0 when empty).
    ///
    /// Computed from the records alone, so it is available with lifecycle
    /// tracing off; the trace analysis' `total` stage reports the same
    /// numbers when tracing is on.
    pub fn latency_percentile(&self, q: f64) -> u64 {
        if self.records.is_empty() {
            return 0;
        }
        let mut latencies: Vec<u64> = self.records.iter().map(|r| r.latency()).collect();
        latencies.sort_unstable();
        let rank = (q * latencies.len() as f64).ceil() as usize;
        latencies[rank.clamp(1, latencies.len()) - 1]
    }

    /// The `(p50, p99, p999)` latency percentiles in rounds (nearest-rank).
    pub fn latency_percentiles(&self) -> (u64, u64, u64) {
        if self.records.is_empty() {
            return (0, 0, 0);
        }
        let mut latencies: Vec<u64> = self.records.iter().map(|r| r.latency()).collect();
        latencies.sort_unstable();
        let pick = |q: f64| {
            let rank = (q * latencies.len() as f64).ceil() as usize;
            latencies[rank.clamp(1, latencies.len()) - 1]
        };
        (pick(0.50), pick(0.99), pick(0.999))
    }
}

impl<T: Payload> Extend<OpRecord<T>> for History<T> {
    /// Appends records from any record stream — another [`History`], a
    /// `Vec<OpRecord>`, or an iterator of collected
    /// `CompletionEvent::record`s.
    fn extend<I: IntoIterator<Item = OpRecord<T>>>(&mut self, records: I) {
        self.records.extend(records);
    }
}

impl<T: Payload> IntoIterator for History<T> {
    type Item = OpRecord<T>;
    type IntoIter = std::vec::IntoIter<OpRecord<T>>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

impl<T: Payload> FromIterator<OpRecord<T>> for History<T> {
    /// Builds a history from a stream of completion records — the natural
    /// consumer of an event-observer hook that collects
    /// `CompletionEvent::record`s.
    fn from_iter<I: IntoIterator<Item = OpRecord<T>>>(records: I) -> Self {
        History {
            records: records.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(origin: u64, seq: u64, kind: OpKind, result: OpResult, order: u64) -> OpRecord<u64> {
        OpRecord {
            id: RequestId::new(ProcessId(origin), seq),
            kind,
            value: seq,
            result,
            order: OrderKey::anchor(order, ProcessId(origin)),
            issued_round: 1,
            completed_round: 5,
        }
    }

    #[test]
    fn order_key_compares_major_then_origin_then_minor() {
        let a = OrderKey::anchor(5, ProcessId(9));
        let b = OrderKey::local(5, ProcessId(9), 2);
        let c = OrderKey::local(5, ProcessId(9), 3);
        let d = OrderKey::anchor(6, ProcessId(0));
        assert!(a < b && b < c && c < d);
        let other_origin = OrderKey::local(5, ProcessId(1), 7);
        assert!(
            other_origin < b,
            "smaller origin sorts first at the same major"
        );
        assert_eq!(format!("{a}"), "5");
        assert_eq!(format!("{b}"), "5+9.2");
    }

    #[test]
    fn latency_and_empty_detection() {
        let r = rec(0, 0, OpKind::Dequeue, OpResult::Empty, 1);
        assert_eq!(r.latency(), 4);
        assert!(r.is_empty_dequeue());
        let e = rec(0, 1, OpKind::Enqueue, OpResult::Enqueued, 2);
        assert!(!e.is_empty_dequeue());
    }

    #[test]
    fn counting_helpers() {
        let mut h = History::new();
        h.push(rec(0, 0, OpKind::Enqueue, OpResult::Enqueued, 1));
        h.push(rec(
            0,
            1,
            OpKind::Dequeue,
            OpResult::Returned(RequestId::new(ProcessId(0), 0)),
            2,
        ));
        h.push(rec(1, 0, OpKind::Dequeue, OpResult::Empty, 3));
        assert_eq!(h.len(), 3);
        assert_eq!(h.count_kind(OpKind::Enqueue), 1);
        assert_eq!(h.count_kind(OpKind::Dequeue), 2);
        assert_eq!(h.count_empty(), 1);
        assert!((h.mean_latency() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn sorted_by_order_sorts() {
        let mut h = History::new();
        h.push(rec(0, 0, OpKind::Enqueue, OpResult::Enqueued, 9));
        h.push(rec(0, 1, OpKind::Enqueue, OpResult::Enqueued, 3));
        let sorted = h.sorted_by_order();
        assert_eq!(sorted[0].order.major, 3);
        assert_eq!(sorted[1].order.major, 9);
    }

    #[test]
    fn by_process_groups_and_sorts_by_seq() {
        let mut h = History::new();
        h.push(rec(2, 1, OpKind::Enqueue, OpResult::Enqueued, 5));
        h.push(rec(2, 0, OpKind::Enqueue, OpResult::Enqueued, 9));
        h.push(rec(1, 0, OpKind::Dequeue, OpResult::Empty, 1));
        let groups = h.by_process();
        assert_eq!(groups.len(), 2);
        let p2 = &groups[&ProcessId(2)];
        assert_eq!(p2[0].id.seq, 0);
        assert_eq!(p2[1].id.seq, 1);
    }

    #[test]
    fn extend_merges() {
        let mut a = History::new();
        a.push(rec(0, 0, OpKind::Enqueue, OpResult::Enqueued, 1));
        let mut b = History::new();
        b.push(rec(1, 0, OpKind::Enqueue, OpResult::Enqueued, 2));
        a.extend(b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn collects_from_record_stream() {
        let records = vec![
            rec(0, 0, OpKind::Enqueue, OpResult::Enqueued, 1),
            rec(0, 1, OpKind::Dequeue, OpResult::Empty, 2),
        ];
        let h: History = records.iter().cloned().collect();
        assert_eq!(h.len(), 2);
        assert_eq!(h.max_latency(), 4);
        let mut extended = History::new();
        extended.extend(records);
        assert_eq!(extended.len(), 2);
    }

    #[test]
    fn empty_history_defaults() {
        let h = History::<u64>::new();
        assert!(h.is_empty());
        assert_eq!(h.mean_latency(), 0.0);
        assert!(h.sorted_by_order().is_empty());
        assert_eq!(h.latency_percentiles(), (0, 0, 0));
    }

    #[test]
    fn latency_percentiles_nearest_rank() {
        let mut h = History::new();
        for i in 0..100u64 {
            h.push(OpRecord {
                id: RequestId::new(ProcessId(0), i),
                kind: OpKind::Enqueue,
                value: i,
                result: OpResult::Enqueued,
                order: OrderKey::anchor(i, ProcessId(0)),
                issued_round: 0,
                completed_round: i + 1,
            });
        }
        assert_eq!(h.latency_percentile(0.50), 50);
        assert_eq!(h.latency_percentiles(), (50, 99, 100));
        assert_eq!(h.latency_percentile(1.0), h.max_latency());
    }
}
