//! Sequential-consistency checking for the stack variant (Section VI).
//!
//! The paper adjusts Definition 1 for LIFO semantics.  The corresponding
//! conditions on the witnessed order `≺` are:
//!
//! 1. a matched `PUSH()` precedes its `POP()`,
//! 2. (a) no `⊥`-pop lies strictly between a matched push and its pop,
//!    (b) no *unmatched* push lies strictly between a matched push and its
//!    pop (an element sitting on top of the stack would have to leave first),
//! 3. matched push/pop intervals never *cross*: `e₁ ≺ e₂ ≺ d₁ ≺ d₂` is
//!    forbidden (they must be disjoint or properly nested),
//! 4. every process's requests appear in `≺` in their issue order.
//!
//! [`check_stack_replay`] is the stronger oracle that replays the witnessed
//! order against a reference sequential stack; the Skueue stack satisfies it
//! because locally combined pairs are placed adjacently in the witnessed
//! order (see `OrderKey`).

use crate::history::{History, OpKind, OpResult};
use crate::queue_check::{prepare_for_stack, PreparedMatching};
use crate::report::{ConsistencyReport, Violation};
use skueue_dht::Payload;
use skueue_sim::ids::RequestId;

/// Checks the adjusted Definition 1 (LIFO version) against the witnessed
/// order.
pub fn check_stack_ordering<T: Payload>(history: &History<T>) -> ConsistencyReport {
    let PreparedMatching {
        mut report,
        matched,
        unmatched_enqueues,
        empty_orders,
    } = prepare_for_stack(history);

    // Property 1: push before its pop.
    for pair in &matched {
        if pair.enqueue_order >= pair.dequeue_order {
            report.violations.push(Violation::DequeueBeforeEnqueue {
                enqueue: pair.enqueue,
                dequeue: pair.dequeue,
            });
        }
    }

    // Property 2a: no ⊥-pop strictly inside a matched interval.
    for pair in &matched {
        let lo = pair.enqueue_order.min(pair.dequeue_order);
        let hi = pair.enqueue_order.max(pair.dequeue_order);
        let idx = empty_orders.partition_point(|&o| o <= lo);
        if idx < empty_orders.len() && empty_orders[idx] < hi {
            let offending_order = empty_orders[idx];
            let offender = history
                .records()
                .iter()
                .find(|r| r.order == offending_order && r.is_empty_dequeue())
                .map(|r| r.id)
                .unwrap_or(pair.dequeue);
            report.violations.push(Violation::EmptyDequeueBetweenMatch {
                enqueue: pair.enqueue,
                dequeue: pair.dequeue,
                empty_dequeue: offender,
            });
        }
    }

    // Property 2b: no unmatched push strictly inside a matched interval.
    if !unmatched_enqueues.is_empty() {
        let mut unmatched_orders: Vec<_> =
            unmatched_enqueues.iter().map(|&(id, o)| (o, id)).collect();
        unmatched_orders.sort_unstable();
        for pair in &matched {
            let lo = pair.enqueue_order.min(pair.dequeue_order);
            let hi = pair.enqueue_order.max(pair.dequeue_order);
            let idx = unmatched_orders.partition_point(|&(o, _)| o <= lo);
            if idx < unmatched_orders.len() && unmatched_orders[idx].0 < hi {
                report
                    .violations
                    .push(Violation::UnmatchedEnqueueOvertaken {
                        unmatched_enqueue: unmatched_orders[idx].1,
                        matched_enqueue: pair.enqueue,
                        matched_dequeue: pair.dequeue,
                    });
            }
        }
    }

    // Property 3 (LIFO): matched intervals must not cross.  Sweep the
    // matched pairs in push order and keep a stack of open intervals: when a
    // pair's pop order is larger than the pop order of an interval opened
    // before it that is still open at its push, the intervals cross.
    let mut by_push = matched.clone();
    by_push.sort_by_key(|p| p.enqueue_order);
    // Sweep over all matched "events" in order of push; maintain a stack of
    // currently-open intervals by pop order.
    let mut open: Vec<(RequestId, crate::history::OrderKey)> = Vec::new();
    for pair in &by_push {
        // Close every interval whose pop happens before this push.
        while let Some(&(_, top_pop)) = open.last() {
            if top_pop < pair.enqueue_order {
                open.pop();
            } else {
                break;
            }
        }
        // All remaining open intervals must enclose this one.
        if let Some(&(outer_push, outer_pop)) = open.last() {
            if pair.dequeue_order > outer_pop {
                report.violations.push(Violation::LifoViolation {
                    first_push: outer_push,
                    second_push: pair.enqueue,
                });
            }
        }
        open.push((pair.enqueue, pair.dequeue_order));
    }

    // Property 4.
    for (_process, ops) in history.by_process() {
        for window in ops.windows(2) {
            let (a, b) = (window[0], window[1]);
            if a.order >= b.order {
                report.violations.push(Violation::ProcessOrderViolation {
                    earlier: a.id,
                    later: b.id,
                });
            }
        }
    }

    report
}

/// Replays the history in the witnessed order on a reference sequential
/// (LIFO) stack and checks every response.
pub fn check_stack_replay<T: Payload>(history: &History<T>) -> ConsistencyReport {
    let PreparedMatching { mut report, .. } = prepare_for_stack(history);

    let mut stack: Vec<RequestId> = Vec::new();
    for record in history.sorted_by_order() {
        match record.kind {
            OpKind::Enqueue => stack.push(record.id),
            OpKind::Dequeue => {
                let expected = stack.pop();
                match (expected, record.result) {
                    (Some(exp), OpResult::Returned(got)) if exp == got => {}
                    (None, OpResult::Empty) => {}
                    (Some(exp), OpResult::Returned(got)) => {
                        report.violations.push(Violation::ReplayMismatch {
                            request: record.id,
                            detail: format!(
                                "popped element of {got}, sequential stack top is element of {exp}"
                            ),
                        });
                    }
                    (Some(exp), OpResult::Empty) => {
                        report.violations.push(Violation::ReplayMismatch {
                            request: record.id,
                            detail: format!(
                                "returned ⊥ but sequential stack top is element of {exp}"
                            ),
                        });
                    }
                    (None, OpResult::Returned(got)) => {
                        report.violations.push(Violation::ReplayMismatch {
                            request: record.id,
                            detail: format!(
                                "popped element of {got} but sequential stack is empty"
                            ),
                        });
                    }
                    (_, OpResult::Enqueued) => {
                        report.violations.push(Violation::ReplayMismatch {
                            request: record.id,
                            detail: "pop recorded with a push result".into(),
                        });
                    }
                }
            }
        }
    }

    // Property 4 also has to hold for the replay witness.
    for (_process, ops) in history.by_process() {
        for window in ops.windows(2) {
            let (a, b) = (window[0], window[1]);
            if a.order >= b.order {
                report.violations.push(Violation::ProcessOrderViolation {
                    earlier: a.id,
                    later: b.id,
                });
            }
        }
    }
    report
}

/// Runs both the adjusted-ordering check and the replay check.
pub fn check_stack<T: Payload>(history: &History<T>) -> ConsistencyReport {
    let mut report = check_stack_ordering(history);
    report.merge(check_stack_replay(history));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{OpRecord, OrderKey};
    use skueue_sim::ids::{ProcessId, RequestId};

    fn rid(p: u64, s: u64) -> RequestId {
        RequestId::new(ProcessId(p), s)
    }

    fn push(p: u64, s: u64, order: u64) -> OpRecord<u64> {
        OpRecord {
            id: rid(p, s),
            kind: OpKind::Enqueue,
            value: s,
            result: OpResult::Enqueued,
            order: OrderKey::anchor(order, ProcessId(p)),
            issued_round: 0,
            completed_round: 1,
        }
    }

    fn pop(p: u64, s: u64, order: u64, from: Option<RequestId>) -> OpRecord<u64> {
        OpRecord {
            id: rid(p, s),
            kind: OpKind::Dequeue,
            value: from.map(|r| r.seq).unwrap_or(0),
            result: from.map(OpResult::Returned).unwrap_or(OpResult::Empty),
            order: OrderKey::anchor(order, ProcessId(p)),
            issued_round: 0,
            completed_round: 1,
        }
    }

    #[test]
    fn lifo_history_passes() {
        // push A, push B, pop -> B, pop -> A, pop -> ⊥
        let h = History::from_records(vec![
            push(0, 0, 1),
            push(0, 1, 2),
            pop(1, 0, 3, Some(rid(0, 1))),
            pop(1, 1, 4, Some(rid(0, 0))),
            pop(1, 2, 5, None),
        ]);
        check_stack(&h).assert_consistent();
    }

    #[test]
    fn fifo_order_fails_the_stack_checker() {
        // push A, push B, pop -> A (FIFO behaviour) is not LIFO.
        let h = History::from_records(vec![
            push(0, 0, 1),
            push(0, 1, 2),
            pop(1, 0, 3, Some(rid(0, 0))),
        ]);
        let report = check_stack(&h);
        assert!(!report.is_consistent());
    }

    #[test]
    fn crossing_intervals_detected() {
        // A pushed, B pushed, A popped, B popped: crossing (not nested).
        let h = History::from_records(vec![
            push(0, 0, 1),
            push(1, 0, 2),
            pop(2, 0, 3, Some(rid(0, 0))),
            pop(2, 1, 4, Some(rid(1, 0))),
        ]);
        let report = check_stack_ordering(&h);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::LifoViolation { .. })));
        assert!(!check_stack_replay(&h).is_consistent());
    }

    #[test]
    fn nested_intervals_pass() {
        // A pushed, B pushed, B popped, A popped — properly nested.
        let h = History::from_records(vec![
            push(0, 0, 1),
            push(1, 0, 2),
            pop(2, 0, 3, Some(rid(1, 0))),
            pop(2, 1, 4, Some(rid(0, 0))),
        ]);
        check_stack(&h).assert_consistent();
    }

    #[test]
    fn unmatched_push_inside_interval_detected() {
        // A pushed, B pushed (never popped), A popped: B is on top, so the
        // pop of A cannot happen while B is unmatched.
        let h = History::from_records(vec![
            push(0, 0, 1),
            push(1, 0, 2),
            pop(2, 0, 3, Some(rid(0, 0))),
        ]);
        let report = check_stack_ordering(&h);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::UnmatchedEnqueueOvertaken { .. })));
    }

    #[test]
    fn empty_pop_inside_interval_detected() {
        let h = History::from_records(vec![
            push(0, 0, 1),
            pop(1, 0, 2, None),
            pop(2, 0, 3, Some(rid(0, 0))),
        ]);
        let report = check_stack_ordering(&h);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::EmptyDequeueBetweenMatch { .. })));
        assert!(!check_stack_replay(&h).is_consistent());
    }

    #[test]
    fn leftover_elements_are_fine_for_the_stack() {
        let h = History::from_records(vec![
            push(0, 0, 1),
            push(0, 1, 2),
            pop(1, 0, 3, Some(rid(0, 1))),
        ]);
        check_stack(&h).assert_consistent();
    }

    #[test]
    fn locally_combined_pairs_with_minor_orders_pass() {
        // Process 3 issues a batched push (major 1), then a locally combined
        // push/pop pair anchored after it (majors 1, minors 1 and 2).
        let combined_push = OpRecord {
            id: rid(3, 1),
            kind: OpKind::Enqueue,
            value: 7,
            result: OpResult::Enqueued,
            order: OrderKey::local(1, ProcessId(3), 1),
            issued_round: 0,
            completed_round: 0,
        };
        let combined_pop = OpRecord {
            id: rid(3, 2),
            kind: OpKind::Dequeue,
            value: 7,
            result: OpResult::Returned(rid(3, 1)),
            order: OrderKey::local(1, ProcessId(3), 2),
            issued_round: 0,
            completed_round: 0,
        };
        let h = History::from_records(vec![
            push(3, 0, 1),
            combined_push,
            combined_pop,
            pop(4, 0, 2, Some(rid(3, 0))),
        ]);
        check_stack(&h).assert_consistent();
    }

    #[test]
    fn process_order_violation_detected() {
        let h = History::from_records(vec![push(0, 0, 5), push(0, 1, 3)]);
        let report = check_stack_ordering(&h);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ProcessOrderViolation { .. })));
    }

    #[test]
    fn empty_history_is_consistent() {
        check_stack(&History::<u64>::new()).assert_consistent();
    }
}
