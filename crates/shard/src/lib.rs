//! # skueue-shard — anchor sharding
//!
//! The Skueue anchor is a single assign point: every aggregation wave of the
//! whole system is ordered by the leftmost node (Stage 2), which makes it the
//! protocol's scaling bottleneck once batching and pipelining have removed
//! the per-message overheads.  This crate provides the *deterministic*
//! machinery for splitting that bottleneck into `S` independent **anchor
//! shards** while keeping one global, verifiable total order:
//!
//! * [`ShardMap`] — the pure, stateless map from processes (via their overlay
//!   labels, using the publicly known splittable hash family) to shards, and
//!   from shards to disjoint, exhaustive intervals of the DHT position
//!   keyspace (the shard id occupies the high bits of the 64-bit position).
//! * [`ShardRouter`] — the stateless front-end the cluster driver uses to
//!   assign every client operation to the shard of its issuing process.
//!
//! ## Why per-*process* sharding preserves sequential consistency
//!
//! Every operation of a process is routed to the same shard, so each
//! process's program order is fully contained in one shard's anchor order.
//! Each shard independently constructs a total order of its own operations
//! (its anchor's counter); the global witnessed order `≺` is the fixed
//! lexicographic interleaving `(wave_epoch, shard_id, local_order)` — a
//! deterministic merge that restricts to each shard's order and therefore to
//! every process's program order.  The verifier checks Definition 1 on every
//! shard's sub-history and program order on the merged order
//! (`skueue_verify::check_queue_sharded`); with `S = 1` everything collapses
//! to the unsharded protocol, bit for bit.
//!
//! Elements are placed in the shard of their *enqueuer*, and a dequeue takes
//! from the shard of its *issuer* — the deterministic relaxation that the
//! Skeap/Seap follow-up work shows is what buys scalability without giving up
//! a checkable global order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use skueue_overlay::{Label, LabelHasher};
use skueue_sim::ids::ProcessId;

/// Identifier of one anchor shard (`0..shards`).
pub type ShardId = u32;

/// Largest supported shard count.  The position keyspace split keeps every
/// shard's interval at least `2^64 / MAX_SHARDS ≥ 2^56` positions wide, so a
/// shard-local anchor window can never overflow its interval in practice.
pub const MAX_SHARDS: u32 = 256;

/// The deterministic shard layout of one deployment: how many shards exist,
/// which shard a process belongs to, and which interval of the DHT position
/// keyspace each shard owns.
///
/// A `ShardMap` is a pure function of `(shards, hash_seed)` — the same pair
/// every node, the cluster driver and the verifier already share — so all of
/// them derive identical layouts without any coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMap {
    shards: u32,
    hasher: LabelHasher,
}

impl ShardMap {
    /// Creates the map for `shards` anchor shards under the given publicly
    /// known hash seed.  `shards == 0` is normalised to 1; counts beyond
    /// [`MAX_SHARDS`] are clamped (the cluster builder rejects them before
    /// they get here).
    pub fn new(shards: u32, hash_seed: u64) -> Self {
        ShardMap {
            shards: shards.clamp(1, MAX_SHARDS),
            hasher: LabelHasher::new(hash_seed),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        self.shards
    }

    /// True when sharding is effectively disabled.
    pub fn is_single(&self) -> bool {
        self.shards == 1
    }

    /// Shard of an overlay label (the splittable hash split of the label).
    pub fn shard_of_label(&self, label: Label) -> ShardId {
        self.hasher.shard_of_label(label, self.shards)
    }

    /// Shard of a process: the split of its middle-node label, so every
    /// operation the process ever issues lands in the same shard.
    pub fn shard_of_process(&self, process: ProcessId) -> ShardId {
        self.shard_of_label(self.hasher.process_label(process))
    }

    /// The interval `[lo, hi]` (inclusive) of the global position keyspace
    /// owned by `shard`.  The intervals of all shards are pairwise disjoint
    /// and together cover every `u64` position exactly once.
    pub fn position_interval(&self, shard: ShardId) -> (u64, u64) {
        debug_assert!(shard < self.shards);
        (self.interval_lo(shard), self.interval_hi(shard))
    }

    /// First global position of a shard's interval (`ceil(s · 2^64 / S)`).
    fn interval_lo(&self, shard: ShardId) -> u64 {
        let s = shard as u128;
        let n = self.shards as u128;
        (s << 64).div_ceil(n) as u64
    }

    /// Last global position of a shard's interval.
    fn interval_hi(&self, shard: ShardId) -> u64 {
        if shard + 1 == self.shards {
            u64::MAX
        } else {
            self.interval_lo(shard + 1) - 1
        }
    }

    /// Maps a shard-local position (the anchor's window coordinate, starting
    /// at 1) to the global position the DHT stores it under: the shard id in
    /// the high bits, i.e. an offset into the shard's interval.
    pub fn global_position(&self, shard: ShardId, local: u64) -> u64 {
        let lo = self.interval_lo(shard);
        debug_assert!(
            local <= self.interval_hi(shard) - lo,
            "shard-local position {local} overflows the interval of shard {shard}"
        );
        lo + local
    }

    /// The shard whose interval contains a global position (the inverse of
    /// [`Self::global_position`]).
    pub fn shard_of_position(&self, position: u64) -> ShardId {
        ((position as u128 * self.shards as u128) >> 64) as ShardId
    }
}

/// The driver-side front-end over [`ShardMap`]: assigns every client
/// operation to the shard of its issuing process.  Deliberately stateless —
/// the splittable hash is two multiply-shift mixes, cheaper than any cache
/// lookup, and the cluster driver memoises each process's shard in its own
/// process table anyway.
#[derive(Debug, Clone, Copy)]
pub struct ShardRouter {
    map: ShardMap,
}

impl ShardRouter {
    /// Creates a router over the given map.
    pub fn new(map: ShardMap) -> Self {
        ShardRouter { map }
    }

    /// The underlying pure map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        self.map.shard_count()
    }

    /// Shard of a process.
    pub fn route(&self, process: ProcessId) -> ShardId {
        if self.map.is_single() {
            return 0;
        }
        self.map.shard_of_process(process)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_shard_owns_everything() {
        let m = ShardMap::new(1, 7);
        assert!(m.is_single());
        assert_eq!(m.position_interval(0), (0, u64::MAX));
        assert_eq!(m.shard_of_process(ProcessId(42)), 0);
        assert_eq!(m.shard_of_position(u64::MAX), 0);
        assert_eq!(m.global_position(0, 5), 5);
    }

    #[test]
    fn zero_shards_normalises_to_one() {
        assert_eq!(ShardMap::new(0, 1).shard_count(), 1);
        assert_eq!(ShardMap::new(MAX_SHARDS + 9, 1).shard_count(), MAX_SHARDS);
    }

    #[test]
    fn intervals_tile_the_keyspace() {
        for shards in [2u32, 3, 4, 5, 7, 8, 16, MAX_SHARDS] {
            let m = ShardMap::new(shards, 99);
            assert_eq!(m.position_interval(0).0, 0, "S={shards}");
            assert_eq!(m.position_interval(shards - 1).1, u64::MAX, "S={shards}");
            for s in 0..shards - 1 {
                let (_, hi) = m.position_interval(s);
                let (lo_next, _) = m.position_interval(s + 1);
                assert_eq!(
                    hi.wrapping_add(1),
                    lo_next,
                    "gap/overlap at S={shards} s={s}"
                );
            }
        }
    }

    #[test]
    fn global_positions_round_trip_to_their_shard() {
        let m = ShardMap::new(4, 3);
        for s in 0..4 {
            for local in [1u64, 2, 1000, 1 << 40] {
                let g = m.global_position(s, local);
                assert_eq!(m.shard_of_position(g), s);
            }
            let (lo, hi) = m.position_interval(s);
            assert_eq!(m.shard_of_position(lo), s);
            assert_eq!(m.shard_of_position(hi), s);
        }
    }

    #[test]
    fn process_assignment_is_stable_and_covers_shards() {
        let m = ShardMap::new(8, 0x5EED);
        let mut seen = [false; 8];
        for p in 0..256u64 {
            let s = m.shard_of_process(ProcessId(p));
            assert!(s < 8);
            assert_eq!(s, m.shard_of_process(ProcessId(p)), "stability");
            seen[s as usize] = true;
        }
        assert!(
            seen.iter().all(|&b| b),
            "256 processes should hit all 8 shards"
        );
    }

    #[test]
    fn shard_labels_stay_spread_over_the_ring() {
        // Fairness prerequisite: the labels of one shard's processes must not
        // cluster on one arc of the ring (the splittable hash re-mixes, so
        // shard membership is independent of ring position).
        let m = ShardMap::new(4, 1);
        let hasher = LabelHasher::new(1);
        let mut per_shard_halves = [[0u32; 2]; 4];
        for p in 0..2000u64 {
            let label = hasher.process_label(ProcessId(p));
            let s = m.shard_of_label(label) as usize;
            per_shard_halves[s][(label.raw() >> 63) as usize] += 1;
        }
        for (s, halves) in per_shard_halves.iter().enumerate() {
            let total = halves[0] + halves[1];
            assert!(total > 0, "shard {s} empty");
            let frac = halves[0] as f64 / total as f64;
            assert!(
                (0.35..=0.65).contains(&frac),
                "shard {s} clusters on one half of the ring: {frac:.2}"
            );
        }
    }

    #[test]
    fn router_matches_the_map() {
        let map = ShardMap::new(4, 77);
        let router = ShardRouter::new(map);
        for p in 0..64u64 {
            let pid = ProcessId(p);
            assert_eq!(router.route(pid), map.shard_of_process(pid));
        }
        assert_eq!(router.shard_count(), 4);
        assert_eq!(router.map().shard_count(), 4);
        // Single-shard routing short-circuits.
        assert_eq!(
            ShardRouter::new(ShardMap::new(1, 77)).route(ProcessId(5)),
            0
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The position keyspace is partitioned into disjoint, exhaustive
        /// intervals for arbitrary shard counts and hash seeds: interval
        /// boundaries tile `u64` exactly, and membership (the multiply-shift
        /// inverse) agrees with the intervals at and around every boundary.
        #[test]
        fn prop_position_intervals_partition_keyspace(
            shards in 1u32..(MAX_SHARDS + 1),
            hash_seed in any::<u64>(),
            probe in any::<u64>(),
        ) {
            let m = ShardMap::new(shards, hash_seed);
            // Exhaustive: starts at 0, ends at u64::MAX, no gaps in between.
            prop_assert_eq!(m.position_interval(0).0, 0);
            prop_assert_eq!(m.position_interval(shards - 1).1, u64::MAX);
            for s in 0..shards {
                let (lo, hi) = m.position_interval(s);
                prop_assert!(lo <= hi, "shard {} has an empty interval", s);
                // Disjoint + exhaustive: each boundary belongs to exactly
                // its own shard, and the neighbours meet with no gap.
                prop_assert_eq!(m.shard_of_position(lo), s);
                prop_assert_eq!(m.shard_of_position(hi), s);
                if s > 0 {
                    prop_assert_eq!(m.position_interval(s - 1).1.wrapping_add(1), lo);
                    prop_assert_eq!(m.shard_of_position(lo - 1), s - 1);
                }
            }
            // Any probe position maps into the interval that contains it.
            let s = m.shard_of_position(probe);
            let (lo, hi) = m.position_interval(s);
            prop_assert!(lo <= probe && probe <= hi);
        }

        /// Shard-local positions always map back to their own shard, for
        /// arbitrary layouts (local coordinates are bounded far below the
        /// interval width of even MAX_SHARDS shards).
        #[test]
        fn prop_global_position_round_trips(
            shards in 1u32..(MAX_SHARDS + 1),
            hash_seed in any::<u64>(),
            local in 0u64..(1 << 50),
        ) {
            let m = ShardMap::new(shards, hash_seed);
            for s in 0..shards.min(9) {
                prop_assert_eq!(m.shard_of_position(m.global_position(s, local)), s);
            }
        }
    }
}
