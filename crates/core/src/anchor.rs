//! Anchor state and position assignment (Stage 2).
//!
//! The anchor — the leftmost node of the LDB — maintains the window
//! `[first, last]` of positions currently occupied by queue elements
//! (invariant: `first ≤ last + 1`), the virtual counter `c` that induces the
//! total order `≺` of Section V, and (for the stack) the monotone `ticket`
//! counter of Section VI.
//!
//! [`AnchorState::assign`] processes one combined batch: every run of the
//! batch receives a [`RunAssignment`] containing its DHT position interval,
//! its first order value, and (for the stack) its ticket information.  The
//! assignments are then decomposed down the aggregation tree (Stage 3, see
//! [`crate::interval`]).
//!
//! Positions start at 1; position 0 is never assigned, which lets an empty
//! interval be represented as `pos_lo > pos_hi` without underflow.

use crate::batch::{Batch, BatchOp};
use crate::config::Mode;
use serde::{Deserialize, Serialize};

/// The positions, order values and tickets assigned to one run of a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunAssignment {
    /// Epoch of the anchor wave that produced this assignment (monotone per
    /// anchor lineage; survives re-anchoring).  In sharded deployments this
    /// is the leading component of the `(wave, shard, local)` order merge;
    /// it travels with the assignment through the Stage 3 decomposition so
    /// every resolved request can witness it.
    pub wave: u64,
    /// Kind of the operations in this run.
    pub kind: BatchOp,
    /// Number of operations in this run.
    pub count: u64,
    /// Lowest assigned DHT position (inclusive). The interval is empty iff
    /// `pos_lo > pos_hi`.
    pub pos_lo: u64,
    /// Highest assigned DHT position (inclusive).
    pub pos_hi: u64,
    /// Order value of the first operation of the run; the `j`-th operation
    /// has order value `value_base + j`.
    pub value_base: u64,
    /// Stack only: for pushes the ticket of the first operation (the `j`-th
    /// push has ticket `ticket_base + j`); for pops the maximum admissible
    /// ticket (identical for every pop of the run). Zero in queue mode.
    pub ticket_base: u64,
    /// Stack pops consume positions from `pos_hi` downwards (the top of the
    /// stack first); everything else consumes from `pos_lo` upwards.
    pub descending: bool,
}

impl RunAssignment {
    /// Number of DHT positions available in the interval.
    pub fn available_positions(&self) -> u64 {
        if self.pos_lo > self.pos_hi {
            0
        } else {
            self.pos_hi - self.pos_lo + 1
        }
    }

    /// True when the interval holds no positions.
    pub fn is_interval_empty(&self) -> bool {
        self.pos_lo > self.pos_hi
    }
}

/// State maintained by the anchor node (and transferred on anchor hand-off).
///
/// The state is *epoch-aware*: every assigned wave advances [`Self::epoch`],
/// and the epoch travels with the state on re-anchoring (`AnchorTransfer`),
/// so a new anchor continues the wave numbering — and the churn accounting —
/// exactly where the old one stopped, even while older waves are still being
/// decomposed down the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnchorState {
    /// Lowest occupied position (queue only; `first = last + 1` when empty).
    pub first: u64,
    /// Highest occupied position (`0` together with `first = 1` when empty).
    pub last: u64,
    /// The virtual counter `c` of Section V: the next order value to assign.
    pub counter: u64,
    /// Stack only: number of pushes ever processed (Section VI).
    pub ticket: u64,
    /// Number of waves (combined batches) assigned by the anchor so far.
    pub epoch: u64,
    /// Number of update phases this anchor lineage has started (tags all
    /// update-phase control messages; monotone across re-anchoring).
    pub phases_started: u64,
    /// Pending `JOIN()`/`LEAVE()` requests reported by batch counters and not
    /// yet discharged by an update phase.  Accumulated across waves — with
    /// pipelined waves, batches carrying churn counters can arrive while an
    /// update phase is already running (or while the flag is in flight), and
    /// their counts must survive until the *next* phase instead of being
    /// evaluated per batch in isolation.
    pub pending_churn: u64,
}

impl AnchorState {
    /// Fresh anchor state for an empty queue/stack.
    pub fn new() -> Self {
        AnchorState {
            first: 1,
            last: 0,
            counter: 1,
            ticket: 0,
            epoch: 0,
            phases_started: 0,
            pending_churn: 0,
        }
    }

    /// Number of elements currently in the structure according to the
    /// anchor's window.
    pub fn size(&self) -> u64 {
        (self.last + 1).saturating_sub(self.first)
    }

    /// The invariant `first ≤ last + 1`.
    pub fn invariant_holds(&self) -> bool {
        self.first <= self.last + 1
    }

    /// Processes one combined batch (Stage 2), folding the batch's
    /// join/leave counters into [`Self::pending_churn`], and returns one
    /// assignment per run of the batch.  Whether the churn triggers an
    /// update phase is decided separately via [`Self::take_update_decision`]
    /// so churn carried by waves assigned *during* an update phase is
    /// deferred, not dropped.
    pub fn assign_wave(&mut self, batch: &Batch, mode: Mode) -> Vec<RunAssignment> {
        self.pending_churn += batch.joins + batch.leaves;
        self.assign(batch, mode)
    }

    /// Whether the accumulated churn warrants entering an update phase now;
    /// consumes the pending count and returns the new phase's number when it
    /// does.  `threshold == 0` disables update phases.
    pub fn take_update_decision(&mut self, threshold: u64) -> Option<u64> {
        if threshold > 0 && self.pending_churn >= threshold {
            self.pending_churn = 0;
            self.phases_started += 1;
            Some(self.phases_started)
        } else {
            None
        }
    }

    /// Processes one combined batch (Stage 2) and returns one assignment per
    /// run of the batch.
    pub fn assign(&mut self, batch: &Batch, mode: Mode) -> Vec<RunAssignment> {
        self.epoch += 1;
        let mut assignments = Vec::with_capacity(batch.num_runs());
        for (i, &count) in batch.runs().iter().enumerate() {
            let kind = batch.kind_of_run(i);
            let mut assignment = match (mode, kind) {
                (_, BatchOp::Enqueue) if mode == Mode::Queue => self.assign_enqueue(count),
                (Mode::Queue, BatchOp::Dequeue) => self.assign_dequeue(count),
                (Mode::Stack, BatchOp::Enqueue) => self.assign_push(count),
                (Mode::Stack, BatchOp::Dequeue) => self.assign_pop(count),
                (Mode::Queue, BatchOp::Enqueue) => unreachable!(),
            };
            assignment.wave = self.epoch;
            assignments.push(assignment);
        }
        debug_assert!(self.invariant_holds());
        assignments
    }

    fn take_values(&mut self, count: u64) -> u64 {
        let base = self.counter;
        self.counter += count;
        base
    }

    fn assign_enqueue(&mut self, count: u64) -> RunAssignment {
        let value_base = self.take_values(count);
        let pos_lo = self.last + 1;
        let pos_hi = self.last + count; // empty (lo > hi) when count == 0
        self.last += count;
        RunAssignment {
            wave: 0, // stamped by `assign` once the wave epoch is advanced
            kind: BatchOp::Enqueue,
            count,
            pos_lo,
            pos_hi,
            value_base,
            ticket_base: 0,
            descending: false,
        }
    }

    fn assign_dequeue(&mut self, count: u64) -> RunAssignment {
        let value_base = self.take_values(count);
        let pos_lo = self.first;
        let pos_hi = if count == 0 {
            self.first.saturating_sub(1).max(pos_lo.saturating_sub(1))
        } else {
            (self.first + count - 1).min(self.last)
        };
        self.first = (self.first + count).min(self.last + 1);
        RunAssignment {
            wave: 0, // stamped by `assign` once the wave epoch is advanced
            kind: BatchOp::Dequeue,
            count,
            pos_lo,
            pos_hi,
            value_base,
            ticket_base: 0,
            descending: false,
        }
    }

    fn assign_push(&mut self, count: u64) -> RunAssignment {
        let value_base = self.take_values(count);
        let pos_lo = self.last + 1;
        let pos_hi = self.last + count;
        self.last += count;
        // Tickets are monotone: they advance with every push and never
        // decrease, even when `last` later shrinks on pops.
        let ticket_base = self.ticket + 1;
        self.ticket += count;
        RunAssignment {
            wave: 0, // stamped by `assign` once the wave epoch is advanced
            kind: BatchOp::Enqueue,
            count,
            pos_lo,
            pos_hi,
            value_base,
            ticket_base,
            descending: false,
        }
    }

    fn assign_pop(&mut self, count: u64) -> RunAssignment {
        let value_base = self.take_values(count);
        let pos_hi = self.last;
        let pos_lo = if count == 0 {
            pos_hi + 1
        } else {
            (self.last.saturating_sub(count - 1)).max(1)
        };
        self.last = self.last.saturating_sub(count);
        RunAssignment {
            wave: 0, // stamped by `assign` once the wave epoch is advanced
            kind: BatchOp::Dequeue,
            count,
            pos_lo,
            pos_hi,
            value_base,
            // Pops may take any element pushed so far.
            ticket_base: self.ticket,
            descending: true,
        }
    }
}

impl Default for AnchorState {
    fn default() -> Self {
        AnchorState::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::FirstRun;
    use proptest::prelude::*;

    fn queue_batch(runs: &[u64]) -> Batch {
        let mut b = Batch::empty();
        for (i, &count) in runs.iter().enumerate() {
            for _ in 0..count {
                b.push_op(if i % 2 == 0 {
                    BatchOp::Enqueue
                } else {
                    BatchOp::Dequeue
                });
            }
        }
        b
    }

    fn stack_batch(pops: u64, pushes: u64) -> Batch {
        let mut b = Batch::empty_stack();
        b.push_stack_residual(pops, pushes);
        b
    }

    #[test]
    fn fresh_anchor_is_empty() {
        let a = AnchorState::new();
        assert_eq!(a.size(), 0);
        assert!(a.invariant_holds());
        assert_eq!(a.counter, 1);
    }

    #[test]
    fn enqueue_run_extends_window() {
        let mut a = AnchorState::new();
        let asg = a.assign(&queue_batch(&[3]), Mode::Queue);
        assert_eq!(asg.len(), 1);
        assert_eq!(asg[0].pos_lo, 1);
        assert_eq!(asg[0].pos_hi, 3);
        assert_eq!(asg[0].value_base, 1);
        assert_eq!(a.size(), 3);
        assert_eq!(a.counter, 4);
    }

    #[test]
    fn dequeue_run_consumes_from_the_front() {
        let mut a = AnchorState::new();
        a.assign(&queue_batch(&[5]), Mode::Queue);
        let asg = a.assign(&queue_batch(&[0, 2]), Mode::Queue);
        // Run 0 is an empty enqueue run, run 1 the dequeue run.
        assert_eq!(asg[0].count, 0);
        assert!(asg[0].is_interval_empty());
        assert_eq!(asg[1].pos_lo, 1);
        assert_eq!(asg[1].pos_hi, 2);
        assert_eq!(a.size(), 3);
        assert_eq!(a.first, 3);
    }

    #[test]
    fn dequeue_beyond_size_truncates_interval() {
        let mut a = AnchorState::new();
        a.assign(&queue_batch(&[2]), Mode::Queue);
        let asg = a.assign(&queue_batch(&[0, 5]), Mode::Queue);
        assert_eq!(asg[1].pos_lo, 1);
        assert_eq!(asg[1].pos_hi, 2);
        assert_eq!(asg[1].available_positions(), 2);
        assert_eq!(asg[1].count, 5);
        assert_eq!(a.size(), 0);
        assert!(a.invariant_holds());
    }

    #[test]
    fn dequeue_on_empty_queue_yields_empty_interval() {
        let mut a = AnchorState::new();
        let asg = a.assign(&queue_batch(&[0, 3]), Mode::Queue);
        assert!(asg[1].is_interval_empty());
        assert_eq!(asg[1].available_positions(), 0);
        assert!(a.invariant_holds());
    }

    #[test]
    fn mixed_batch_interleaves_runs() {
        // Batch (2, 1, 3): enqueue 2, dequeue 1, enqueue 3.
        let mut a = AnchorState::new();
        let asg = a.assign(&queue_batch(&[2, 1, 3]), Mode::Queue);
        assert_eq!(asg[0].pos_lo, 1);
        assert_eq!(asg[0].pos_hi, 2);
        assert_eq!(asg[1].pos_lo, 1);
        assert_eq!(asg[1].pos_hi, 1);
        assert_eq!(asg[2].pos_lo, 3);
        assert_eq!(asg[2].pos_hi, 5);
        assert_eq!(a.size(), 4); // 5 enqueued, 1 dequeued
                                 // Order values are consecutive over the whole batch.
        assert_eq!(asg[0].value_base, 1);
        assert_eq!(asg[1].value_base, 3);
        assert_eq!(asg[2].value_base, 4);
        assert_eq!(a.counter, 7);
    }

    #[test]
    fn epoch_counts_batches() {
        let mut a = AnchorState::new();
        a.assign(&queue_batch(&[1]), Mode::Queue);
        a.assign(&queue_batch(&[1]), Mode::Queue);
        assert_eq!(a.epoch, 2);
    }

    #[test]
    fn assignments_carry_their_wave_epoch() {
        let mut a = AnchorState::new();
        let first = a.assign(&queue_batch(&[2, 1]), Mode::Queue);
        assert!(first.iter().all(|r| r.wave == 1));
        let second = a.assign(&queue_batch(&[1]), Mode::Queue);
        assert!(second.iter().all(|r| r.wave == 2));
        // The epoch travels with the state across re-anchoring, so a
        // transferred anchor continues the wave numbering.
        let mut transferred = a;
        assert!(transferred
            .assign(&queue_batch(&[1]), Mode::Queue)
            .iter()
            .all(|r| r.wave == 3));
    }

    #[test]
    fn assign_wave_matches_assign_and_advances_the_epoch() {
        let mut a = AnchorState::new();
        let mut b = AnchorState::new();
        let batch = queue_batch(&[2, 1]);
        let runs = a.assign_wave(&batch, Mode::Queue);
        assert_eq!(runs, b.assign(&batch, Mode::Queue));
        assert_eq!(a.epoch, 1);
        a.assign_wave(&batch, Mode::Queue);
        assert_eq!(a.epoch, 2);
    }

    #[test]
    fn churn_accumulates_across_waves_and_is_consumed_on_trigger() {
        let mut a = AnchorState::new();
        let mut batch = queue_batch(&[1]);
        batch.joins = 1;
        a.assign_wave(&batch, Mode::Queue);
        // Threshold 3 not reached yet; the count is deferred, not dropped.
        assert_eq!(a.take_update_decision(3), None);
        assert_eq!(a.pending_churn, 1);
        let mut batch = queue_batch(&[0]);
        batch.leaves = 2;
        a.assign_wave(&batch, Mode::Queue);
        assert_eq!(a.take_update_decision(3), Some(1), "phases are numbered");
        assert_eq!(a.pending_churn, 0, "a triggered phase consumes the count");
        // Threshold 0 disables update phases entirely.
        let mut batch = queue_batch(&[0]);
        batch.joins = 9;
        a.assign_wave(&batch, Mode::Queue);
        assert_eq!(a.take_update_decision(0), None);
        assert_eq!(a.pending_churn, 9);
    }

    #[test]
    fn stack_push_assigns_tickets() {
        let mut a = AnchorState::new();
        let asg = a.assign(&stack_batch(0, 3), Mode::Stack);
        // Run 0 is the (empty) pop run, run 1 the push run.
        assert_eq!(asg[1].ticket_base, 1);
        assert_eq!(asg[1].pos_lo, 1);
        assert_eq!(asg[1].pos_hi, 3);
        assert_eq!(a.ticket, 3);
        assert_eq!(a.last, 3);
    }

    #[test]
    fn stack_pop_takes_from_the_top() {
        let mut a = AnchorState::new();
        a.assign(&stack_batch(0, 5), Mode::Stack);
        let asg = a.assign(&stack_batch(2, 0), Mode::Stack);
        assert_eq!(asg[0].kind, BatchOp::Dequeue);
        assert!(asg[0].descending);
        assert_eq!(asg[0].pos_lo, 4);
        assert_eq!(asg[0].pos_hi, 5);
        assert_eq!(asg[0].ticket_base, 5);
        assert_eq!(a.last, 3);
    }

    #[test]
    fn stack_position_reuse_gets_fresh_tickets() {
        let mut a = AnchorState::new();
        // push, pop, push: the second push reuses position 1 but must get a
        // larger ticket (this is exactly the scenario Section VI motivates).
        let t1 = a.assign(&stack_batch(0, 1), Mode::Stack)[1].ticket_base;
        a.assign(&stack_batch(1, 0), Mode::Stack);
        let t2 = a.assign(&stack_batch(0, 1), Mode::Stack)[1].ticket_base;
        assert_eq!(a.last, 1);
        assert!(t2 > t1, "tickets must be monotone: {t1} then {t2}");
    }

    #[test]
    fn stack_pop_on_empty_yields_empty_interval() {
        let mut a = AnchorState::new();
        let asg = a.assign(&stack_batch(4, 0), Mode::Stack);
        assert!(asg[0].is_interval_empty());
        assert_eq!(a.last, 0);
    }

    #[test]
    fn stack_pop_beyond_size_truncates() {
        let mut a = AnchorState::new();
        a.assign(&stack_batch(0, 2), Mode::Stack);
        let asg = a.assign(&stack_batch(5, 0), Mode::Stack);
        assert_eq!(asg[0].pos_lo, 1);
        assert_eq!(asg[0].pos_hi, 2);
        assert_eq!(a.last, 0);
        let _ = FirstRun::Dequeues; // layout sanity: residuals always start with pops
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The anchor window invariant holds and the counter advances by the
        /// total number of operations, for arbitrary batch sequences.
        #[test]
        fn prop_anchor_invariants(batches in proptest::collection::vec(
            proptest::collection::vec(0u64..10, 0..5), 0..20))
        {
            let mut a = AnchorState::new();
            let mut expected_counter = 1u64;
            for runs in &batches {
                let b = queue_batch(runs);
                expected_counter += b.total_ops();
                let asg = a.assign(&b, Mode::Queue);
                prop_assert!(a.invariant_holds());
                prop_assert_eq!(a.counter, expected_counter);
                // Enqueue intervals always have exactly `count` positions.
                for run in &asg {
                    if run.kind == BatchOp::Enqueue {
                        prop_assert_eq!(run.available_positions(), run.count);
                    } else {
                        prop_assert!(run.available_positions() <= run.count);
                    }
                }
            }
        }

        /// The queue size tracked by the anchor equals enqueues minus matched
        /// dequeues, and dequeue intervals never hand out positions that were
        /// not enqueued.
        #[test]
        fn prop_queue_size_is_conserved(batches in proptest::collection::vec(
            (0u64..8, 0u64..8), 0..30))
        {
            let mut a = AnchorState::new();
            let mut model_size = 0u64;
            for &(enq, deq) in &batches {
                let mut b = Batch::empty();
                for _ in 0..enq { b.push_op(BatchOp::Enqueue); }
                for _ in 0..deq { b.push_op(BatchOp::Dequeue); }
                let asg = a.assign(&b, Mode::Queue);
                model_size += enq;
                let served = asg.iter()
                    .filter(|r| r.kind == BatchOp::Dequeue)
                    .map(|r| r.available_positions().min(r.count))
                    .sum::<u64>();
                model_size -= served;
                prop_assert_eq!(a.size(), model_size);
            }
        }

        /// Stack tickets are strictly monotone over pushes and `last` never
        /// goes negative.
        #[test]
        fn prop_stack_tickets_monotone(batches in proptest::collection::vec(
            (0u64..6, 0u64..6), 0..30))
        {
            let mut a = AnchorState::new();
            let mut last_ticket = 0u64;
            for &(pops, pushes) in &batches {
                let asg = a.assign(&stack_batch(pops, pushes), Mode::Stack);
                for run in &asg {
                    if run.kind == BatchOp::Enqueue && run.count > 0 {
                        prop_assert!(run.ticket_base > last_ticket);
                        last_ticket = run.ticket_base + run.count - 1;
                    }
                }
                prop_assert!(a.invariant_holds());
            }
        }
    }
}
