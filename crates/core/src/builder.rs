//! The fluent, validating constructor for [`SkueueCluster`].
//!
//! [`SkueueBuilder`] replaces the old `new(n, cfg, sim_cfg)` / `queue(n,
//! seed)` / `stack(n, seed)` constructor zoo with a single entry point that
//! validates the whole configuration in one place:
//!
//! ```
//! use skueue_core::{Mode, Skueue};
//!
//! let cluster: Skueue = Skueue::builder()
//!     .processes(64)
//!     .mode(Mode::Queue)
//!     .seed(42)
//!     .build()?;
//! assert_eq!(cluster.active_processes(), 64);
//! # Ok::<(), skueue_core::BuildError>(())
//! ```
//!
//! Invalid configurations are reported as structured [`BuildError`]s instead
//! of panicking deep inside the constructor:
//!
//! ```
//! use skueue_core::{BuildError, Skueue};
//!
//! let err = Skueue::<u64>::builder().processes(0).build().unwrap_err();
//! assert_eq!(err, BuildError::NoProcesses);
//! ```

use crate::cluster::SkueueCluster;
use crate::config::{Mode, ProtocolConfig};
use skueue_dht::Payload;
use skueue_sim::{DeliveryModel, ExecMode, SimConfig};
use skueue_trace::TraceLevel;
use std::marker::PhantomData;

/// Width of an overlay label in bits; the distance-halving bit budget cannot
/// exceed it.
const MAX_BIT_BUDGET: u32 = 64;

/// Largest accepted anchor-shard count (`skueue_shard::MAX_SHARDS`).
const MAX_SHARDS: usize = skueue_shard::MAX_SHARDS as usize;

/// A configuration rejected by [`SkueueBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A cluster needs at least one process.
    NoProcesses,
    /// The distance-halving bit budget exceeds the label width.
    BitBudgetTooLarge {
        /// The requested budget.
        requested: u32,
        /// The largest valid budget (the label width).
        max: u32,
    },
    /// The anchor's update threshold must be at least one pending request.
    ZeroUpdateThreshold,
    /// The wave pipeline needs at least one slot per node.
    ZeroPipelineDepth,
    /// The deployment needs at least one anchor shard.
    ZeroShards,
    /// The anchor-shard count exceeds the supported maximum.
    TooManyShards {
        /// The requested count.
        requested: usize,
        /// The largest valid count.
        max: usize,
    },
    /// The simulation configuration is invalid (e.g. an empty delay range).
    InvalidSimConfig(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::NoProcesses => {
                write!(f, "a Skueue cluster needs at least one process")
            }
            BuildError::BitBudgetTooLarge { requested, max } => write!(
                f,
                "bit budget {requested} exceeds the {max}-bit label width"
            ),
            BuildError::ZeroUpdateThreshold => {
                write!(f, "the update threshold must be at least 1")
            }
            BuildError::ZeroPipelineDepth => {
                write!(f, "the wave pipeline depth must be at least 1")
            }
            BuildError::ZeroShards => {
                write!(f, "the deployment needs at least one anchor shard")
            }
            BuildError::TooManyShards { requested, max } => {
                write!(
                    f,
                    "shard count {requested} exceeds the supported maximum of {max}"
                )
            }
            BuildError::InvalidSimConfig(reason) => {
                write!(f, "invalid simulation config: {reason}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Fluent builder for [`SkueueCluster`]; created by
/// [`SkueueCluster::builder`].
///
/// Defaults: one process would be pointless, so there is no default size —
/// call [`processes`](Self::processes).  Everything else defaults to the
/// paper's evaluation setup: queue mode, the synchronous round scheduler,
/// seed 0, and a bit budget derived from the initial system size.  Switching
/// to [`Mode::Stack`] also switches on the stack's protocol switches (local
/// combining and the stage-4 barrier), exactly like the old
/// `ProtocolConfig::stack()` defaults; the individual setters below override
/// either choice.
#[derive(Debug, Clone)]
pub struct SkueueBuilder<T: Payload = u64> {
    processes: usize,
    mode: Mode,
    seed: u64,
    hash_seed: Option<u64>,
    bit_budget: u32,
    local_combining: Option<bool>,
    stage4_barrier: Option<bool>,
    update_threshold: u64,
    pipeline_depth: usize,
    shards: usize,
    delivery: DeliveryModel,
    shuffle_node_order: Option<bool>,
    record_trace: bool,
    threads: usize,
    middle_fingers: bool,
    trace: TraceLevel,
    /// The element payload type the built cluster will carry.
    _payload: PhantomData<T>,
}

impl<T: Payload> Default for SkueueBuilder<T> {
    fn default() -> Self {
        SkueueBuilder {
            processes: 0,
            mode: Mode::Queue,
            seed: 0,
            hash_seed: None,
            bit_budget: 0,
            local_combining: None,
            stage4_barrier: None,
            update_threshold: 1,
            pipeline_depth: crate::config::DEFAULT_PIPELINE_DEPTH,
            shards: 1,
            delivery: DeliveryModel::Synchronous,
            shuffle_node_order: None,
            record_trace: false,
            threads: 1,
            middle_fingers: false,
            trace: TraceLevel::Off,
            _payload: PhantomData,
        }
    }
}

impl<T: Payload> SkueueBuilder<T> {
    /// Starts a builder with the defaults described on the type.
    pub fn new() -> Self {
        SkueueBuilder::default()
    }

    /// Number of processes of the initial system (each emulates three
    /// virtual De Bruijn nodes).  Required; zero is rejected by
    /// [`build`](Self::build).
    pub fn processes(mut self, n: usize) -> Self {
        self.processes = n;
        self
    }

    /// Queue (FIFO) or stack (LIFO) semantics.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Shorthand for `.mode(Mode::Queue)`.
    pub fn queue(self) -> Self {
        self.mode(Mode::Queue)
    }

    /// Shorthand for `.mode(Mode::Stack)`.
    pub fn stack(self) -> Self {
        self.mode(Mode::Stack)
    }

    /// Seed of the simulation substrate (message delays, tie breaking).
    /// The same seed reproduces the same run.  The publicly known hash
    /// function (process labels, position keys) keeps its fixed default
    /// seed — matching the paper's setup, where varying the workload seed
    /// does not move the overlay — unless [`hash_seed`](Self::hash_seed)
    /// overrides it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the seed of the publicly known pseudorandom hash function
    /// (process labels and position keys) independently of the simulation
    /// seed.
    pub fn hash_seed(mut self, seed: u64) -> Self {
        self.hash_seed = Some(seed);
        self
    }

    /// Number of distance-halving bits used when routing DHT operations.
    /// `0` (the default) derives the budget from the initial system size.
    /// Budgets beyond the 64-bit label width are rejected by
    /// [`build`](Self::build).
    pub fn bit_budget(mut self, bits: u32) -> Self {
        self.bit_budget = bits;
        self
    }

    /// Stack only: locally combine a node's own push/pop pairs so they
    /// complete without involving the anchor (Section VI; the E9 ablation
    /// switch).  Defaults to on in stack mode, off in queue mode.
    pub fn local_combining(mut self, enabled: bool) -> Self {
        self.local_combining = Some(enabled);
        self
    }

    /// Stack only: wait at the end of stage 4 until all DHT operations
    /// issued by this node have finished before starting the next
    /// aggregation phase (required for stack correctness, Section VI).
    /// Defaults to on in stack mode, off in queue mode.
    pub fn stage4_barrier(mut self, enabled: bool) -> Self {
        self.stage4_barrier = Some(enabled);
        self
    }

    /// Batching of membership changes: the minimum number of pending
    /// `JOIN()`/`LEAVE()` requests the anchor observes before it triggers an
    /// update phase.  `1` (the default) keeps the system maximally up to
    /// date; larger thresholds batch more churn per update phase.  Zero is
    /// rejected by [`build`](Self::build).
    pub fn update_threshold(mut self, threshold: u64) -> Self {
        self.update_threshold = threshold;
        self
    }

    /// Maximum number of aggregation waves each node keeps in flight
    /// concurrently (default
    /// [`DEFAULT_PIPELINE_DEPTH`](crate::config::DEFAULT_PIPELINE_DEPTH),
    /// chosen to sit above the anchor round-trip time so the ring bounds
    /// state without throttling).  `1` reproduces the strictly alternating
    /// wave of the original analysis; larger depths overlap aggregation of
    /// wave `k+1` with the serve/DHT phases of wave `k` (Skeap-style
    /// pipelining).  The stack's stage-4 barrier serialises waves
    /// regardless.  Zero is rejected by [`build`](Self::build).
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth;
        self
    }

    /// Number of independent anchor shards the queue is partitioned into
    /// (default 1 = the unsharded protocol of the paper).  Every process is
    /// deterministically assigned to one shard by a splittable hash of its
    /// label; each shard runs its own cycle, aggregation tree and anchor
    /// over a disjoint interval of the position keyspace, and the verifier
    /// checks the merged `(wave, shard, local)` order with
    /// `skueue_verify::check_queue_sharded`.  Stack mode pins the count
    /// to 1 (the ticket matching needs the single global stage-4 barrier).
    /// Zero and counts beyond `skueue_shard::MAX_SHARDS` are rejected by
    /// [`build`](Self::build).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Runs on the synchronous round scheduler the paper evaluates on (the
    /// default).
    pub fn synchronous(mut self) -> Self {
        self.delivery = DeliveryModel::Synchronous;
        self
    }

    /// Runs under asynchronous, non-FIFO delivery with uniform delays in
    /// `[1, max_delay]` — the model the correctness proof targets.  Also
    /// shuffles the per-round node iteration order (override with
    /// [`shuffle_node_order`](Self::shuffle_node_order)).
    pub fn asynchronous(mut self, max_delay: u64) -> Self {
        self.delivery = DeliveryModel::uniform(max_delay);
        self
    }

    /// Uses an explicit delivery model (e.g.
    /// [`DeliveryModel::Adversarial`]).
    pub fn delivery(mut self, delivery: DeliveryModel) -> Self {
        self.delivery = delivery;
        self
    }

    /// Shuffles (or pins) the per-round node iteration order.  Defaults to
    /// shuffled for asynchronous delivery models and pinned for the
    /// synchronous scheduler.
    pub fn shuffle_node_order(mut self, shuffle: bool) -> Self {
        self.shuffle_node_order = Some(shuffle);
        self
    }

    /// Records an event trace of the simulation (costs memory; intended for
    /// tests and debugging).
    pub fn record_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Number of OS worker threads the round loop runs anchor-shard lanes
    /// on.  `1` (the default) selects the single-threaded backend; `n > 1`
    /// runs each shard's lane on a persistent worker thread behind a
    /// deterministic round barrier (capped at the shard count — extra
    /// threads would have no lane to run).  The two backends produce
    /// **byte-identical** histories for every seed, so `.threads(n)` is
    /// purely a wall-clock knob.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables the nearest-middle routing finger: every node additionally
    /// tracks the nearest *middle* node in successor direction and the
    /// distance-halving walk jumps straight to it instead of stepping
    /// node-by-node across the left/middle/right cycle (≈3 virtual hops per
    /// halving bit without the finger).  Routing stays correct with the
    /// finger absent or stale, but hop counts — and therefore message
    /// schedules and histories — change, so the switch defaults to **off**
    /// to keep seeded runs comparable with the pinned goldens.
    pub fn middle_fingers(mut self, enabled: bool) -> Self {
        self.middle_fingers = enabled;
        self
    }

    /// Per-op lifecycle tracing level (default [`TraceLevel::Off`]).
    ///
    /// At [`TraceLevel::Spans`] every request's protocol stages (issue, wave
    /// join, anchor assignment, DHT routing, completion) are recorded into
    /// lane-local buffers and merged deterministically; [`TraceLevel::Full`]
    /// adds one event per DHT routing hop.  Tracing is observation-only:
    /// histories are byte-identical at every level, and the off path is a
    /// single branch on a `Copy` enum (no buffer allocated).  Distinct from
    /// [`record_trace`](Self::record_trace), which captures the simulator's
    /// message-level debug trace.
    pub fn trace(mut self, level: TraceLevel) -> Self {
        self.trace = level;
        self
    }

    /// The [`ProtocolConfig`] this builder currently describes.
    pub fn protocol_config(&self) -> ProtocolConfig {
        let mut cfg = match self.mode {
            Mode::Queue => ProtocolConfig::queue(),
            Mode::Stack => ProtocolConfig::stack(),
        };
        if let Some(seed) = self.hash_seed {
            cfg.hash_seed = seed;
        }
        cfg.bit_budget = self.bit_budget;
        if let Some(enabled) = self.local_combining {
            cfg.local_combining = enabled;
        }
        if let Some(enabled) = self.stage4_barrier {
            cfg.stage4_barrier = enabled;
        }
        cfg.update_threshold = self.update_threshold;
        cfg.pipeline_depth = self.pipeline_depth;
        cfg.shards = self.shards;
        cfg.middle_fingers = self.middle_fingers;
        cfg.trace_level = self.trace;
        // The synchronous round scheduler delivers per-channel in send
        // order; every other model may reorder, which the protocol's
        // aggregate credit must compensate for.
        cfg.fifo_channels = self.delivery.is_synchronous();
        cfg
    }

    /// The [`SimConfig`] this builder currently describes.
    pub fn sim_config(&self) -> SimConfig {
        let synchronous = self.delivery.is_synchronous();
        SimConfig {
            seed: self.seed,
            delivery: self.delivery,
            shuffle_node_order: self.shuffle_node_order.unwrap_or(!synchronous),
            record_trace: self.record_trace,
            max_rounds: 0,
        }
    }

    /// The [`ExecMode`] this builder currently describes.
    pub fn exec_mode(&self) -> ExecMode {
        ExecMode::from_threads(self.threads)
    }

    /// Validates the configuration and builds the cluster.
    pub fn build(self) -> Result<SkueueCluster<T>, BuildError> {
        let sim_cfg = self.sim_config();
        let protocol_cfg = self.protocol_config();
        validate_config(self.processes, &protocol_cfg, &sim_cfg)?;
        Ok(SkueueCluster::from_config(
            self.processes,
            protocol_cfg,
            sim_cfg,
            self.exec_mode(),
        ))
    }
}

/// The single validation gate for cluster configurations — used by
/// [`SkueueBuilder::build`] and by the deprecated constructor shims, so both
/// entry points accept exactly the same configurations.
pub(crate) fn validate_config(
    processes: usize,
    protocol_cfg: &ProtocolConfig,
    sim_cfg: &SimConfig,
) -> Result<(), BuildError> {
    if processes == 0 {
        return Err(BuildError::NoProcesses);
    }
    if protocol_cfg.bit_budget > MAX_BIT_BUDGET {
        return Err(BuildError::BitBudgetTooLarge {
            requested: protocol_cfg.bit_budget,
            max: MAX_BIT_BUDGET,
        });
    }
    if protocol_cfg.update_threshold == 0 {
        return Err(BuildError::ZeroUpdateThreshold);
    }
    if protocol_cfg.pipeline_depth == 0 {
        return Err(BuildError::ZeroPipelineDepth);
    }
    if protocol_cfg.shards == 0 {
        return Err(BuildError::ZeroShards);
    }
    if protocol_cfg.shards > MAX_SHARDS {
        return Err(BuildError::TooManyShards {
            requested: protocol_cfg.shards,
            max: MAX_SHARDS,
        });
    }
    sim_cfg.validate().map_err(|e| match e {
        // Unwrap the reason so the BuildError Display doesn't repeat the
        // "invalid simulation config" prefix.
        skueue_sim::SimError::InvalidConfig(reason) => BuildError::InvalidSimConfig(reason),
        other => BuildError::InvalidSimConfig(other.to_string()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use skueue_overlay::recommended_bit_budget;

    #[test]
    fn zero_processes_is_rejected() {
        assert_eq!(
            SkueueBuilder::<u64>::new().build().unwrap_err(),
            BuildError::NoProcesses
        );
        assert_eq!(
            SkueueBuilder::<u64>::new()
                .processes(0)
                .seed(1)
                .build()
                .unwrap_err(),
            BuildError::NoProcesses
        );
    }

    #[test]
    fn oversized_bit_budget_is_rejected() {
        let err = SkueueBuilder::<u64>::new()
            .processes(4)
            .bit_budget(65)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            BuildError::BitBudgetTooLarge {
                requested: 65,
                max: 64
            }
        );
        assert!(err.to_string().contains("65"));
    }

    #[test]
    fn zero_update_threshold_is_rejected() {
        let err = SkueueBuilder::<u64>::new()
            .processes(4)
            .update_threshold(0)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::ZeroUpdateThreshold);
    }

    #[test]
    fn zero_pipeline_depth_is_rejected() {
        let err = SkueueBuilder::<u64>::new()
            .processes(4)
            .pipeline_depth(0)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::ZeroPipelineDepth);
        let cfg = SkueueBuilder::<u64>::new()
            .processes(4)
            .pipeline_depth(3)
            .protocol_config();
        assert_eq!(cfg.pipeline_depth, 3);
    }

    #[test]
    fn shard_counts_are_validated() {
        let err = SkueueBuilder::<u64>::new()
            .processes(4)
            .shards(0)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::ZeroShards);
        let err = SkueueBuilder::<u64>::new()
            .processes(4)
            .shards(MAX_SHARDS + 1)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            BuildError::TooManyShards {
                requested: MAX_SHARDS + 1,
                max: MAX_SHARDS
            }
        );
        let cluster = SkueueBuilder::<u64>::new()
            .processes(16)
            .shards(4)
            .seed(1)
            .build()
            .unwrap();
        assert_eq!(cluster.shards(), 4);
        // Stack mode pins the effective count to 1.
        let stack = SkueueBuilder::<u64>::new()
            .processes(8)
            .stack()
            .shards(4)
            .build()
            .unwrap();
        assert_eq!(stack.shards(), 1);
    }

    #[test]
    fn invalid_delivery_model_is_rejected() {
        let err = SkueueBuilder::<u64>::new()
            .processes(4)
            .delivery(DeliveryModel::UniformRandom {
                min_delay: 9,
                max_delay: 2,
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::InvalidSimConfig(_)));
    }

    #[test]
    fn defaults_match_the_papers_queue_setup() {
        let builder = SkueueBuilder::<u64>::new().processes(8).seed(3);
        let cfg = builder.protocol_config();
        assert_eq!(cfg.mode, Mode::Queue);
        assert!(!cfg.local_combining);
        assert!(!cfg.stage4_barrier);
        let sim = builder.sim_config();
        assert!(sim.delivery.is_synchronous());
        assert!(!sim.shuffle_node_order);
        assert_eq!(sim.seed, 3);
    }

    #[test]
    fn stack_mode_switches_stack_defaults_on() {
        let cfg = SkueueBuilder::<u64>::new()
            .processes(8)
            .stack()
            .protocol_config();
        assert_eq!(cfg.mode, Mode::Stack);
        assert!(cfg.local_combining);
        assert!(cfg.stage4_barrier);
        // …and the individual switches still override.
        let cfg = SkueueBuilder::<u64>::new()
            .processes(8)
            .stack()
            .local_combining(false)
            .protocol_config();
        assert!(!cfg.local_combining);
        assert!(cfg.stage4_barrier);
    }

    #[test]
    fn asynchronous_shuffles_by_default_and_can_be_pinned() {
        let sim = SkueueBuilder::<u64>::new()
            .processes(4)
            .asynchronous(5)
            .sim_config();
        assert!(!sim.delivery.is_synchronous());
        assert!(sim.shuffle_node_order);
        let sim = SkueueBuilder::<u64>::new()
            .processes(4)
            .asynchronous(5)
            .shuffle_node_order(false)
            .sim_config();
        assert!(!sim.shuffle_node_order);
    }

    #[test]
    fn built_cluster_derives_bit_budget_from_size() {
        let cluster = SkueueBuilder::<u64>::new()
            .processes(16)
            .seed(1)
            .build()
            .unwrap();
        assert_eq!(cluster.config().bit_budget, recommended_bit_budget(16));
        assert_eq!(cluster.active_processes(), 16);
    }

    #[test]
    fn hash_seed_and_explicit_bit_budget_are_respected() {
        let cluster = SkueueBuilder::<u64>::new()
            .processes(4)
            .seed(9)
            .hash_seed(1234)
            .bit_budget(17)
            .build()
            .unwrap();
        assert_eq!(cluster.config().hash_seed, 1234);
        assert_eq!(cluster.config().bit_budget, 17);
    }
}
