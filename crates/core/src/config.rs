//! Protocol configuration.

use serde::{Deserialize, Serialize};
use skueue_overlay::LabelHasher;

/// Whether the protocol runs as the FIFO queue of Sections III–V or as the
/// LIFO stack of Section VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// `ENQUEUE()` / `DEQUEUE()` with FIFO semantics.
    Queue,
    /// `PUSH()` / `POP()` with LIFO semantics (tickets, constant-size
    /// batches, stage-4 barrier).
    Stack,
}

/// Static configuration shared by all nodes of one Skueue deployment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Queue or stack semantics.
    pub mode: Mode,
    /// Seed of the publicly known pseudorandom hash function (process labels
    /// and position keys).
    pub hash_seed: u64,
    /// Number of distance-halving bits used when routing DHT operations.
    /// `0` means "derive from the initial system size".
    pub bit_budget: u32,
    /// Stack only: locally combine a node's own push/pop pairs so they
    /// complete without involving the anchor (Section VI).  Ignored in queue
    /// mode.  Exposed as a switch for the E9 ablation.
    pub local_combining: bool,
    /// Minimum number of pending `JOIN()`/`LEAVE()` requests observed by the
    /// anchor before it triggers an update phase.  The paper enters the
    /// update phase as soon as the joining nodes outnumber the integrated
    /// ones / the leave count passes a threshold; `1` (the default) keeps
    /// the system maximally up to date.
    pub update_threshold: u64,
    /// Stack only: wait at the end of stage 4 until all DHT operations
    /// issued by this node have finished before starting the next
    /// aggregation phase (required for stack correctness, Section VI).
    pub stage4_barrier: bool,
}

impl ProtocolConfig {
    /// Default queue configuration.
    pub fn queue() -> Self {
        ProtocolConfig {
            mode: Mode::Queue,
            hash_seed: LabelHasher::default().seed(),
            bit_budget: 0,
            local_combining: false,
            update_threshold: 1,
            stage4_barrier: false,
        }
    }

    /// Default stack configuration (local combining and the stage-4 barrier
    /// enabled, as in the paper).
    pub fn stack() -> Self {
        ProtocolConfig {
            mode: Mode::Stack,
            hash_seed: LabelHasher::default().seed(),
            bit_budget: 0,
            local_combining: true,
            update_threshold: 1,
            stage4_barrier: true,
        }
    }

    /// Overrides the hash seed.
    pub fn with_hash_seed(mut self, seed: u64) -> Self {
        self.hash_seed = seed;
        self
    }

    /// Overrides the distance-halving bit budget.
    pub fn with_bit_budget(mut self, bits: u32) -> Self {
        self.bit_budget = bits;
        self
    }

    /// Enables or disables the stack's local combining (E9 ablation).
    pub fn with_local_combining(mut self, enabled: bool) -> Self {
        self.local_combining = enabled;
        self
    }

    /// The hasher corresponding to this configuration.
    pub fn hasher(&self) -> LabelHasher {
        LabelHasher::new(self.hash_seed)
    }

    /// True for stack mode.
    pub fn is_stack(&self) -> bool {
        self.mode == Mode::Stack
    }
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig::queue()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_defaults() {
        let c = ProtocolConfig::queue();
        assert_eq!(c.mode, Mode::Queue);
        assert!(!c.is_stack());
        assert!(!c.local_combining);
        assert!(!c.stage4_barrier);
        assert_eq!(c.update_threshold, 1);
    }

    #[test]
    fn stack_defaults() {
        let c = ProtocolConfig::stack();
        assert!(c.is_stack());
        assert!(c.local_combining);
        assert!(c.stage4_barrier);
    }

    #[test]
    fn builders() {
        let c = ProtocolConfig::stack()
            .with_hash_seed(99)
            .with_bit_budget(17)
            .with_local_combining(false);
        assert_eq!(c.hash_seed, 99);
        assert_eq!(c.bit_budget, 17);
        assert!(!c.local_combining);
        assert_eq!(c.hasher().seed(), 99);
    }

    #[test]
    fn default_is_queue() {
        assert_eq!(ProtocolConfig::default().mode, Mode::Queue);
    }
}
