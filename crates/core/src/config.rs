//! Protocol configuration.

use serde::{Deserialize, Serialize};
use skueue_overlay::LabelHasher;
use skueue_trace::TraceLevel;

/// Whether the protocol runs as the FIFO queue of Sections III–V or as the
/// LIFO stack of Section VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// `ENQUEUE()` / `DEQUEUE()` with FIFO semantics.
    Queue,
    /// `PUSH()` / `POP()` with LIFO semantics (tickets, constant-size
    /// batches, stage-4 barrier).
    Stack,
}

/// Static configuration shared by all nodes of one Skueue deployment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Queue or stack semantics.
    pub mode: Mode,
    /// Seed of the publicly known pseudorandom hash function (process labels
    /// and position keys).
    pub hash_seed: u64,
    /// Number of distance-halving bits used when routing DHT operations.
    /// `0` means "derive from the initial system size".
    pub bit_budget: u32,
    /// Stack only: locally combine a node's own push/pop pairs so they
    /// complete without involving the anchor (Section VI).  Ignored in queue
    /// mode.  Exposed as a switch for the E9 ablation.
    pub local_combining: bool,
    /// Minimum number of pending `JOIN()`/`LEAVE()` requests observed by the
    /// anchor before it triggers an update phase.  The paper enters the
    /// update phase as soon as the joining nodes outnumber the integrated
    /// ones / the leave count passes a threshold; `1` (the default) keeps
    /// the system maximally up to date.
    pub update_threshold: u64,
    /// Stack only: wait at the end of stage 4 until all DHT operations
    /// issued by this node have finished before starting the next
    /// aggregation phase (required for stack correctness, Section VI).
    pub stage4_barrier: bool,
    /// True when the transport delivers each channel's messages in send
    /// order (the synchronous round model).  FIFO channels make the
    /// `AggregateAck` credit redundant: a child may keep several aggregates
    /// to the same parent in flight because they cannot overtake each other
    /// (re-parenting is covered separately by the wave slots' parent guard).
    /// Under reordering delivery this must be `false`, and the credit
    /// serialises every child→parent channel.  Set by the cluster builder
    /// from the configured delivery model.
    pub fifo_channels: bool,
    /// Maximum number of aggregation waves a node keeps in flight
    /// concurrently (the size of its `WaveSlot` ring): a node may combine
    /// and forward wave `k+1` while wave `k`'s assignments are still
    /// travelling back down the tree, as in Skeap/Seap's overlapping phases.
    /// `1` reproduces the strictly alternating wave of the original Skueue
    /// analysis.  The stack's stage-4 barrier serialises waves regardless,
    /// so this knob effectively applies to the queue.
    pub pipeline_depth: usize,
    /// Number of independent anchor shards the queue is partitioned into.
    /// Every process belongs to exactly one shard (splittable hash of its
    /// label, `skueue_shard::ShardMap`); each shard runs its own LDB cycle,
    /// aggregation tree, anchor and position-keyspace interval, and the
    /// global order is the fixed `(wave, shard, local)` interleaving.  `1`
    /// (the default) is the unsharded protocol of the paper, bit for bit.
    /// The stack's ticket matching needs the single global stage-4 barrier,
    /// so stack mode pins this to 1 (see [`Self::effective_shards`]).
    pub shards: usize,
    /// Enables the nearest-middle routing finger: every node additionally
    /// knows the nearest *middle* node in successor direction and the
    /// distance-halving walk jumps straight to it instead of stepping
    /// node-by-node until it finds a middle (≈3 virtual hops per halving
    /// bit on the full left/middle/right cycle).  The finger is an
    /// optimisation only — routing is correct with it absent or stale —
    /// but it changes hop counts and therefore message schedules, so it
    /// defaults to **off** to keep the pinned golden histories intact.
    pub middle_fingers: bool,
    /// Per-op lifecycle tracing level ([`skueue_trace`]).  Off by default;
    /// the off path is a branch on this `Copy` enum and allocates nothing.
    /// Tracing is observation-only — it never sends messages or alters
    /// scheduling decisions, so histories (and the pinned goldens) are
    /// identical at every level.
    pub trace_level: TraceLevel,
}

/// Default number of concurrently in-flight aggregation waves per node.
///
/// The slot ring is bookkeeping for epoch-matched serves, not flow control:
/// capping it below the anchor round-trip time (≈ 2·tree height rounds)
/// throttles every tree level and costs O(height) extra latency per level.
/// In-flight waves self-limit at about one round trip's worth, so 32 covers
/// trees of height ≈ 16 (hundreds of thousands of processes) without ever
/// becoming the bottleneck, while still bounding per-node state.
pub const DEFAULT_PIPELINE_DEPTH: usize = 32;

impl ProtocolConfig {
    /// Default queue configuration.
    pub fn queue() -> Self {
        ProtocolConfig {
            mode: Mode::Queue,
            hash_seed: LabelHasher::default().seed(),
            bit_budget: 0,
            local_combining: false,
            update_threshold: 1,
            stage4_barrier: false,
            fifo_channels: true,
            pipeline_depth: DEFAULT_PIPELINE_DEPTH,
            shards: 1,
            middle_fingers: false,
            trace_level: TraceLevel::Off,
        }
    }

    /// Default stack configuration (local combining and the stage-4 barrier
    /// enabled, as in the paper).
    pub fn stack() -> Self {
        ProtocolConfig {
            mode: Mode::Stack,
            hash_seed: LabelHasher::default().seed(),
            bit_budget: 0,
            local_combining: true,
            update_threshold: 1,
            stage4_barrier: true,
            fifo_channels: true,
            pipeline_depth: DEFAULT_PIPELINE_DEPTH,
            shards: 1,
            middle_fingers: false,
            trace_level: TraceLevel::Off,
        }
    }

    /// Overrides the hash seed.
    pub fn with_hash_seed(mut self, seed: u64) -> Self {
        self.hash_seed = seed;
        self
    }

    /// Overrides the distance-halving bit budget.
    pub fn with_bit_budget(mut self, bits: u32) -> Self {
        self.bit_budget = bits;
        self
    }

    /// Enables or disables the stack's local combining (E9 ablation).
    pub fn with_local_combining(mut self, enabled: bool) -> Self {
        self.local_combining = enabled;
        self
    }

    /// Overrides the wave pipeline depth (must be at least 1).
    pub fn with_pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth;
        self
    }

    /// The effective number of wave slots a node uses: the stack's stage-4
    /// barrier requires strictly alternating waves, so it pins the depth
    /// to 1 regardless of the configured value.
    pub fn effective_pipeline_depth(&self) -> usize {
        if self.stage4_barrier {
            1
        } else {
            self.pipeline_depth.max(1)
        }
    }

    /// Overrides the number of anchor shards (must be at least 1).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Enables or disables the nearest-middle routing finger (default off;
    /// see [`Self::middle_fingers`]).
    pub fn with_middle_fingers(mut self, enabled: bool) -> Self {
        self.middle_fingers = enabled;
        self
    }

    /// Sets the per-op lifecycle tracing level (default
    /// [`TraceLevel::Off`]).
    pub fn with_trace(mut self, level: TraceLevel) -> Self {
        self.trace_level = level;
        self
    }

    /// The effective number of anchor shards: the stack's ticket matching
    /// relies on the single global stage-4 barrier, so stack mode pins the
    /// count to 1 regardless of the configured value.
    pub fn effective_shards(&self) -> usize {
        if self.is_stack() {
            1
        } else {
            self.shards.max(1)
        }
    }

    /// True when this deployment runs more than one anchor shard (order
    /// keys carry the `(wave, shard)` merge components only then, keeping
    /// unsharded histories bit-identical to the pre-sharding format).
    pub fn is_sharded(&self) -> bool {
        self.effective_shards() > 1
    }

    /// The hasher corresponding to this configuration.
    pub fn hasher(&self) -> LabelHasher {
        LabelHasher::new(self.hash_seed)
    }

    /// True for stack mode.
    pub fn is_stack(&self) -> bool {
        self.mode == Mode::Stack
    }
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig::queue()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_defaults() {
        let c = ProtocolConfig::queue();
        assert_eq!(c.mode, Mode::Queue);
        assert!(!c.is_stack());
        assert!(!c.local_combining);
        assert!(!c.stage4_barrier);
        assert_eq!(c.update_threshold, 1);
    }

    #[test]
    fn stack_defaults() {
        let c = ProtocolConfig::stack();
        assert!(c.is_stack());
        assert!(c.local_combining);
        assert!(c.stage4_barrier);
    }

    #[test]
    fn builders() {
        let c = ProtocolConfig::stack()
            .with_hash_seed(99)
            .with_bit_budget(17)
            .with_local_combining(false);
        assert_eq!(c.hash_seed, 99);
        assert_eq!(c.bit_budget, 17);
        assert!(!c.local_combining);
        assert_eq!(c.hasher().seed(), 99);
    }

    #[test]
    fn default_is_queue() {
        assert_eq!(ProtocolConfig::default().mode, Mode::Queue);
    }

    #[test]
    fn trace_defaults_off_and_overrides() {
        // Off by default: tracing must cost nothing unless asked for.
        assert!(ProtocolConfig::queue().trace_level.is_off());
        assert!(ProtocolConfig::stack().trace_level.is_off());
        let c = ProtocolConfig::queue().with_trace(TraceLevel::Full);
        assert_eq!(c.trace_level, TraceLevel::Full);
        assert!(c.trace_level.hops());
    }

    #[test]
    fn middle_fingers_default_off() {
        // Off by default: the finger changes hop counts and therefore
        // message schedules, which would invalidate the golden histories.
        assert!(!ProtocolConfig::queue().middle_fingers);
        assert!(!ProtocolConfig::stack().middle_fingers);
        assert!(
            ProtocolConfig::queue()
                .with_middle_fingers(true)
                .middle_fingers
        );
    }

    #[test]
    fn shards_default_to_one_and_stack_pins_them() {
        let c = ProtocolConfig::queue();
        assert_eq!(c.shards, 1);
        assert_eq!(c.effective_shards(), 1);
        assert!(!c.is_sharded());
        let c = c.with_shards(4);
        assert_eq!(c.effective_shards(), 4);
        assert!(c.is_sharded());
        // The stack's global stage-4 barrier is incompatible with multiple
        // anchors; the count is pinned to 1.
        let s = ProtocolConfig::stack().with_shards(4);
        assert_eq!(s.effective_shards(), 1);
        assert!(!s.is_sharded());
        // Zero is normalised, not an extra state.
        assert_eq!(ProtocolConfig::queue().with_shards(0).effective_shards(), 1);
    }

    #[test]
    fn pipeline_depth_defaults_and_barrier_override() {
        let c = ProtocolConfig::queue();
        assert_eq!(c.pipeline_depth, DEFAULT_PIPELINE_DEPTH);
        assert_eq!(c.effective_pipeline_depth(), DEFAULT_PIPELINE_DEPTH);
        let c = c.with_pipeline_depth(5);
        assert_eq!(c.effective_pipeline_depth(), 5);
        // The stack's stage-4 barrier serialises waves regardless of the
        // configured depth.
        let s = ProtocolConfig::stack().with_pipeline_depth(5);
        assert_eq!(s.effective_pipeline_depth(), 1);
    }
}
