//! Per-process client handles.
//!
//! A [`ClientHandle`] scopes request issuing to one process, the way an
//! application-side connection object would.  Workloads, benches and the
//! examples all drive the cluster through handles:
//!
//! ```
//! use skueue_core::SkueueCluster;
//! use skueue_sim::ids::ProcessId;
//!
//! let mut cluster = SkueueCluster::builder().processes(4).seed(1).build()?;
//! let ticket = cluster.client(ProcessId(2)).enqueue(7)?;
//! cluster.run_until_done(&[ticket], 500)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::cluster::{ClusterError, SkueueCluster};
use crate::ticket::OpTicket;
use skueue_dht::Payload;
use skueue_sim::ids::ProcessId;

/// A request-issuing handle bound to one process of a [`SkueueCluster`].
///
/// Handles are cheap, short-lived borrows: obtain one with
/// [`SkueueCluster::client`], issue one or more operations, then drive the
/// cluster.  Issuing through a handle enforces the same rules as the cluster
/// methods (the process must exist and be an integrated member, and the
/// operation must match the cluster's [`crate::Mode`]).
pub struct ClientHandle<'c, T: Payload = u64> {
    cluster: &'c mut SkueueCluster<T>,
    process: ProcessId,
}

impl<'c, T: Payload> ClientHandle<'c, T> {
    pub(crate) fn new(cluster: &'c mut SkueueCluster<T>, process: ProcessId) -> Self {
        ClientHandle { cluster, process }
    }

    /// The process this handle issues requests at.
    pub fn process(&self) -> ProcessId {
        self.process
    }

    /// True while the process may issue requests — the exact condition the
    /// issuing methods check, so a `true` here means the next issue will not
    /// fail with `UnknownProcess`/`ProcessNotActive`.  Turns `false` the
    /// moment a `leave()` is requested for the process.
    pub fn is_active(&self) -> bool {
        self.cluster.process_may_issue(self.process)
    }

    /// Issues an `ENQUEUE(value)` (queue mode).
    pub fn enqueue(&mut self, value: T) -> Result<OpTicket, ClusterError> {
        self.cluster.enqueue(self.process, value)
    }

    /// Issues a `DEQUEUE()` (queue mode).
    pub fn dequeue(&mut self) -> Result<OpTicket, ClusterError> {
        self.cluster.dequeue(self.process)
    }

    /// Issues a `PUSH(value)` (stack mode).
    pub fn push(&mut self, value: T) -> Result<OpTicket, ClusterError> {
        self.cluster.push(self.process, value)
    }

    /// Issues a `POP()` (stack mode).
    pub fn pop(&mut self) -> Result<OpTicket, ClusterError> {
        self.cluster.pop(self.process)
    }

    /// Issues an insert or remove without caring about queue/stack naming
    /// (what the workload generators use).
    pub fn issue(&mut self, is_insert: bool, value: T) -> Result<OpTicket, ClusterError> {
        self.cluster.issue_op(self.process, is_insert, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;
    use crate::ticket::OpOutcome;
    use skueue_verify::OpKind;

    #[test]
    fn handle_issues_and_reports_activity() {
        let mut cluster = SkueueCluster::builder()
            .processes(3)
            .seed(5)
            .build()
            .unwrap();
        let mut client = cluster.client(ProcessId(1));
        assert_eq!(client.process(), ProcessId(1));
        assert!(client.is_active());
        let put = client.enqueue(10).unwrap();
        let got = client.dequeue().unwrap();
        assert_eq!(put.origin(), ProcessId(1));
        assert_eq!(put.kind(), OpKind::Enqueue);
        assert_eq!(got.kind(), OpKind::Dequeue);
        let outcomes = cluster.run_until_done(&[put, got], 500).unwrap();
        assert!(matches!(outcomes[0], OpOutcome::Enqueued { .. }));
        assert_eq!(outcomes[1].value(), Some(10));
    }

    #[test]
    fn handle_enforces_mode() {
        let mut cluster = SkueueCluster::builder()
            .processes(2)
            .stack()
            .seed(5)
            .build()
            .unwrap();
        let mut client = cluster.client(ProcessId(0));
        assert!(client.push(1).is_ok());
        assert!(matches!(
            client.enqueue(1),
            Err(ClusterError::WrongMode {
                required: Mode::Queue,
                actual: Mode::Stack
            })
        ));
    }

    #[test]
    fn handle_turns_inactive_the_moment_leave_is_requested() {
        let mut cluster = SkueueCluster::builder()
            .processes(4)
            .seed(3)
            .build()
            .unwrap();
        cluster.run_rounds(2);
        let leaver = (0..4u64)
            .map(ProcessId)
            .find(|&p| cluster.leave(p).is_ok())
            .expect("some non-anchor process can leave");
        let mut client = cluster.client(leaver);
        assert!(!client.is_active(), "leave() requested => may not issue");
        assert!(matches!(
            client.enqueue(1),
            Err(ClusterError::ProcessNotActive(_))
        ));
    }

    #[test]
    fn handle_for_unknown_process_errors_on_issue() {
        let mut cluster = SkueueCluster::builder()
            .processes(2)
            .seed(5)
            .build()
            .unwrap();
        let mut client = cluster.client(ProcessId(77));
        assert!(!client.is_active());
        assert!(matches!(
            client.enqueue(1),
            Err(ClusterError::UnknownProcess(_))
        ));
    }
}
