//! # skueue-core — the Skueue protocol
//!
//! This crate implements the paper's primary contribution: a distributed
//! FIFO queue (and LIFO stack) that is *sequentially consistent* and scales
//! by aggregating requests into batches over an implicit aggregation tree on
//! the Linearized De Bruijn overlay.
//!
//! The public entry point is [`SkueueCluster`] (aliased [`Skueue`]): build a
//! cluster with the validating [`SkueueBuilder`], issue operations through
//! per-process [`ClientHandle`]s, and resolve the returned [`OpTicket`]s to
//! structured [`OpOutcome`]s:
//!
//! ```
//! use skueue_core::Skueue;
//! use skueue_sim::ids::ProcessId;
//! use skueue_verify::check_queue;
//!
//! let mut cluster = Skueue::builder().processes(4).seed(42).build()?;
//! let put = cluster.client(ProcessId(0)).enqueue(7)?;
//! let got = cluster.client(ProcessId(2)).dequeue()?;
//! let outcomes = cluster.run_until_done(&[put, got], 500)?;
//! assert_eq!(outcomes[1].value(), Some(7));
//! check_queue(cluster.history()).assert_consistent();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Every completion is also published as a [`CompletionEvent`] on the
//! cluster's event stream ([`SkueueCluster::on_complete`]); the execution
//! [`skueue_verify::History`] is built from that same stream, so workloads,
//! benches and the verifier all consume identical data.
//!
//! Internally the crate is organised along the paper's structure:
//!
//! | module | paper section | content |
//! |--------|---------------|---------|
//! | [`batch`] | Def. 5, §IV | run-length batches, combination, join/leave counters |
//! | [`anchor`] | §III-D (Stage 2), §VI | the anchor's `[first,last]` window, order counter, tickets |
//! | [`interval`] | §III-E (Stage 3) | decomposition of position intervals over sub-batches |
//! | [`node`] | §III (Stages 1–4), §VI | the per-virtual-node state machine |
//! | [`join_leave`] | §IV | lazy joins/leaves, update phase, anchor hand-off |
//! | [`builder`] | — | the validating [`SkueueBuilder`] |
//! | [`ticket`] | — | [`OpTicket`], [`OpOutcome`], the completion stream |
//! | [`client`] | — | per-process [`ClientHandle`]s |
//! | [`cluster`] | §VII | the driver API used by workloads, examples and tests |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anchor;
pub mod batch;
pub mod builder;
pub mod client;
pub mod cluster;
pub mod config;
pub mod interval;
pub mod join_leave;
pub mod messages;
pub mod node;
pub mod ticket;

pub use anchor::{AnchorState, RunAssignment};
pub use batch::{Batch, BatchOp, FirstRun};
pub use builder::{BuildError, SkueueBuilder};
pub use client::ClientHandle;
pub use cluster::{ClusterError, ClusterProjection, Skueue, SkueueCluster};
pub use config::{Mode, ProtocolConfig};
pub use messages::{DhtOp, SkueueMsg};
pub use node::{LocalOp, NodeStats, Role, SkueueNode};
// The payload bound every `Skueue<T>` instantiation needs; re-exported so
// downstream code can write `fn f<T: Payload>(q: &mut Skueue<T>)` without a
// direct skueue-dht dependency.
pub use skueue_dht::Payload;
// Re-exported so downstream crates can feed `SkueueCluster::shard_map` to
// `skueue_verify::check_queue_sharded` without a direct skueue-shard dep.
pub use skueue_shard::{ShardId, ShardMap, ShardRouter};
// Re-exported so `SkueueBuilder::trace(TraceLevel::…)` and the trace sinks
// are reachable without a direct skueue-trace dependency.
pub use skueue_trace::{StageStats, TraceAnalysis, TraceLevel, TraceLog};
pub use ticket::{CompletionEvent, OpOutcome, OpStatus, OpTicket};
