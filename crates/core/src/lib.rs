//! # skueue-core — the Skueue protocol
//!
//! This crate implements the paper's primary contribution: a distributed
//! FIFO queue (and LIFO stack) that is *sequentially consistent* and scales
//! by aggregating requests into batches over an implicit aggregation tree on
//! the Linearized De Bruijn overlay.
//!
//! The public entry point is [`SkueueCluster`]: build a cluster of `n`
//! processes, issue `ENQUEUE()`/`DEQUEUE()` (or `PUSH()`/`POP()`) requests at
//! any process, drive the simulation round by round, and read back the
//! execution [`skueue_verify::History`] plus the measurements the paper
//! reports (per-request rounds, batch sizes, per-node load, …).
//!
//! ```
//! use skueue_core::{SkueueCluster};
//! use skueue_sim::ids::ProcessId;
//! use skueue_verify::check_queue;
//!
//! let mut cluster = SkueueCluster::queue(4, 42);
//! cluster.enqueue(ProcessId(0), 7).unwrap();
//! cluster.enqueue(ProcessId(1), 8).unwrap();
//! cluster.dequeue(ProcessId(2)).unwrap();
//! cluster.run_until_all_complete(500).unwrap();
//! check_queue(cluster.history()).assert_consistent();
//! ```
//!
//! Internally the crate is organised along the paper's structure:
//!
//! | module | paper section | content |
//! |--------|---------------|---------|
//! | [`batch`] | Def. 5, §IV | run-length batches, combination, join/leave counters |
//! | [`anchor`] | §III-D (Stage 2), §VI | the anchor's `[first,last]` window, order counter, tickets |
//! | [`interval`] | §III-E (Stage 3) | decomposition of position intervals over sub-batches |
//! | [`node`] | §III (Stages 1–4), §VI | the per-virtual-node state machine |
//! | [`join_leave`] | §IV | lazy joins/leaves, update phase, anchor hand-off |
//! | [`cluster`] | §VII | the driver API used by workloads, examples and tests |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anchor;
pub mod batch;
pub mod cluster;
pub mod config;
pub mod interval;
pub mod join_leave;
pub mod messages;
pub mod node;

pub use anchor::{AnchorState, RunAssignment};
pub use batch::{Batch, BatchOp, FirstRun};
pub use cluster::{ClusterError, SkueueCluster};
pub use config::{Mode, ProtocolConfig};
pub use messages::{DhtOp, SkueueMsg};
pub use node::{LocalOp, NodeStats, Role, SkueueNode};
