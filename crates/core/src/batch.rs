//! Operation batches (Definition 5).
//!
//! A batch is a run-length encoding of a sequence of queue operations:
//! `(op₁, …, op_k)` where odd indices (1-based) count consecutive
//! `ENQUEUE()` requests and even indices count consecutive `DEQUEUE()`
//! requests.  Two batches are combined by element-wise addition (padding the
//! shorter one with zeros).  Section IV extends batches with two extra
//! counters for the number of `JOIN()` and `LEAVE()` requests the sender is
//! responsible for.
//!
//! For the stack variant (Section VI) the same type is used, with the roles
//! of the runs fixed by the local-combining argument: a node's residual
//! operations always have the shape `POP()^a · PUSH()^b`, i.e. a batch of at
//! most two runs (Theorem 20).  The stack encodes this as run 1 = *dequeues*
//! (pops) and run 2 = *enqueues* (pushes); see [`Batch::push_stack_residual`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Kind of a single queue operation inside a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BatchOp {
    /// `ENQUEUE()` / `PUSH()`.
    Enqueue,
    /// `DEQUEUE()` / `POP()`.
    Dequeue,
}

/// Whether the first run of a batch counts enqueues (queue layout) or
/// dequeues (stack layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FirstRun {
    /// Run 1 counts enqueues — the queue layout of Definition 5.
    Enqueues,
    /// Run 1 counts dequeues (pops) — the residual layout of the stack.
    Dequeues,
}

/// A batch of queue operations (Definition 5) plus join/leave counters
/// (Section IV).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Batch {
    /// Run lengths. `runs[i]` counts operations of kind
    /// [`Batch::kind_of_run`]`(i)`. An empty vector is the empty batch `(0)`.
    runs: Vec<u64>,
    /// Which operation kind the first run counts.
    first: FirstRun,
    /// Number of `JOIN()` requests the sender has become responsible for
    /// since its last batch (`B.j`).
    pub joins: u64,
    /// Number of `LEAVE()` requests the sender has become responsible for
    /// since its last batch (`B.l`).
    pub leaves: u64,
}

impl Batch {
    /// The empty queue-layout batch `(0)`.
    pub fn empty() -> Self {
        Batch {
            runs: Vec::new(),
            first: FirstRun::Enqueues,
            joins: 0,
            leaves: 0,
        }
    }

    /// The empty stack-layout batch.
    pub fn empty_stack() -> Self {
        Batch {
            runs: Vec::new(),
            first: FirstRun::Dequeues,
            joins: 0,
            leaves: 0,
        }
    }

    /// Reassembles a batch from its parts — the inverse of reading
    /// [`Batch::runs`], [`Batch::first_run`] and the two public counters.
    /// Used by wire codecs (`skueue-net`) to decode a batch that travelled
    /// as plain fields; protocol code builds batches with
    /// [`Batch::push_op`]/[`Batch::combine`] instead.
    pub fn from_parts(first: FirstRun, runs: Vec<u64>, joins: u64, leaves: u64) -> Self {
        Batch {
            runs,
            first,
            joins,
            leaves,
        }
    }

    /// True when the batch carries neither operations nor join/leave counts.
    pub fn is_empty(&self) -> bool {
        self.total_ops() == 0 && self.joins == 0 && self.leaves == 0
    }

    /// True when the batch carries no queue operations (it may still carry
    /// join/leave counts).
    pub fn has_no_ops(&self) -> bool {
        self.total_ops() == 0
    }

    /// Number of runs.
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// The run lengths.
    pub fn runs(&self) -> &[u64] {
        &self.runs
    }

    /// Layout of the batch.
    pub fn first_run(&self) -> FirstRun {
        self.first
    }

    /// Kind of operations counted by run `index` (0-based).
    pub fn kind_of_run(&self, index: usize) -> BatchOp {
        let first_kind = match self.first {
            FirstRun::Enqueues => BatchOp::Enqueue,
            FirstRun::Dequeues => BatchOp::Dequeue,
        };
        if index.is_multiple_of(2) {
            first_kind
        } else {
            match first_kind {
                BatchOp::Enqueue => BatchOp::Dequeue,
                BatchOp::Dequeue => BatchOp::Enqueue,
            }
        }
    }

    /// Total number of queue operations in the batch.
    pub fn total_ops(&self) -> u64 {
        self.runs.iter().sum()
    }

    /// Total number of enqueue operations.
    pub fn total_enqueues(&self) -> u64 {
        self.runs
            .iter()
            .enumerate()
            .filter(|(i, _)| self.kind_of_run(*i) == BatchOp::Enqueue)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Total number of dequeue operations.
    pub fn total_dequeues(&self) -> u64 {
        self.total_ops() - self.total_enqueues()
    }

    /// Size of the batch in "entries" — the quantity Theorem 18 bounds.
    /// (Run counts plus the two join/leave counters.)
    pub fn size(&self) -> usize {
        self.runs.len() + 2
    }

    /// Appends one operation generated locally by the owner of the batch,
    /// preserving the local issue order (Section III-A).
    pub fn push_op(&mut self, op: BatchOp) {
        let idx = self.runs.len();
        if idx > 0 && self.kind_of_run(idx - 1) == op {
            self.runs[idx - 1] += 1;
        } else if idx == 0 && self.kind_of_run(0) != op {
            // The first generated op is of the "second" kind: insert an empty
            // first run so indices keep their meaning.
            self.runs.push(0);
            self.runs.push(1);
        } else {
            self.runs.push(1);
        }
    }

    /// Sets the residual of a stack node after local combining: `pops`
    /// surplus `POP()`s (issued first) followed by `pushes` surviving
    /// `PUSH()`es.  Only valid for stack-layout batches.
    pub fn push_stack_residual(&mut self, pops: u64, pushes: u64) {
        debug_assert_eq!(self.first, FirstRun::Dequeues);
        debug_assert!(
            self.runs.is_empty(),
            "residual must be set on an empty batch"
        );
        if pops == 0 && pushes == 0 {
            return;
        }
        self.runs.push(pops);
        if pushes > 0 {
            self.runs.push(pushes);
        }
    }

    /// Removes the most recently pushed operation again (used by the stack's
    /// local combining: the matched push is always the last unsent
    /// operation).  Panics if the batch has no operations.
    pub fn pop_last_op(&mut self) {
        let last = self.runs.last_mut().expect("pop_last_op on an empty batch");
        assert!(*last > 0, "pop_last_op on an empty trailing run");
        *last -= 1;
        while matches!(self.runs.last(), Some(0)) {
            self.runs.pop();
        }
    }

    /// Combines another batch into this one (element-wise addition of run
    /// lengths, addition of the join/leave counters).  Both batches must use
    /// the same layout.
    pub fn combine(&mut self, other: &Batch) {
        debug_assert_eq!(self.first, other.first, "cannot combine different layouts");
        if self.runs.len() < other.runs.len() {
            self.runs.resize(other.runs.len(), 0);
        }
        for (i, &c) in other.runs.iter().enumerate() {
            self.runs[i] += c;
        }
        self.joins += other.joins;
        self.leaves += other.leaves;
    }

    /// Combines a sequence of batches (used by tests and the anchor).
    pub fn combine_all<'a>(
        layout: FirstRun,
        batches: impl IntoIterator<Item = &'a Batch>,
    ) -> Batch {
        let mut acc = match layout {
            FirstRun::Enqueues => Batch::empty(),
            FirstRun::Dequeues => Batch::empty_stack(),
        };
        for b in batches {
            acc.combine(b);
        }
        acc
    }
}

impl Default for Batch {
    fn default() -> Self {
        Batch::empty()
    }
}

impl fmt::Display for Batch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.runs.is_empty() {
            write!(f, "(0)")?;
        } else {
            write!(f, "(")?;
            for (i, c) in self.runs.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{c}")?;
            }
            write!(f, ")")?;
        }
        if self.joins > 0 || self.leaves > 0 {
            write!(f, "[j={},l={}]", self.joins, self.leaves)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_batch() {
        let b = Batch::empty();
        assert!(b.is_empty());
        assert!(b.has_no_ops());
        assert_eq!(b.total_ops(), 0);
        assert_eq!(b.to_string(), "(0)");
        assert_eq!(b.size(), 2);
    }

    #[test]
    fn push_op_respects_local_order() {
        // Issue order: E E D D D E  →  runs (2, 3, 1).
        let mut b = Batch::empty();
        for op in [
            BatchOp::Enqueue,
            BatchOp::Enqueue,
            BatchOp::Dequeue,
            BatchOp::Dequeue,
            BatchOp::Dequeue,
            BatchOp::Enqueue,
        ] {
            b.push_op(op);
        }
        assert_eq!(b.runs(), &[2, 3, 1]);
        assert_eq!(b.total_enqueues(), 3);
        assert_eq!(b.total_dequeues(), 3);
        assert_eq!(b.kind_of_run(0), BatchOp::Enqueue);
        assert_eq!(b.kind_of_run(1), BatchOp::Dequeue);
        assert_eq!(b.kind_of_run(2), BatchOp::Enqueue);
    }

    #[test]
    fn first_op_dequeue_inserts_empty_run() {
        // Issue order: D E  →  runs (0, 1, 1): zero enqueues, one dequeue, one enqueue.
        let mut b = Batch::empty();
        b.push_op(BatchOp::Dequeue);
        b.push_op(BatchOp::Enqueue);
        assert_eq!(b.runs(), &[0, 1, 1]);
        assert_eq!(b.total_enqueues(), 1);
        assert_eq!(b.total_dequeues(), 1);
    }

    #[test]
    fn combine_pads_and_adds() {
        let mut a = Batch::empty();
        a.push_op(BatchOp::Enqueue); // (1)
        let mut b = Batch::empty();
        b.push_op(BatchOp::Dequeue);
        b.push_op(BatchOp::Dequeue);
        b.push_op(BatchOp::Enqueue); // (0, 2, 1)
        a.combine(&b);
        assert_eq!(a.runs(), &[1, 2, 1]);
        assert_eq!(a.total_ops(), 4);
    }

    #[test]
    fn combine_carries_join_leave_counters() {
        let mut a = Batch::empty();
        a.joins = 2;
        let mut b = Batch::empty();
        b.leaves = 3;
        b.joins = 1;
        a.combine(&b);
        assert_eq!(a.joins, 3);
        assert_eq!(a.leaves, 3);
        assert!(!a.is_empty());
        assert!(a.has_no_ops());
        assert_eq!(a.to_string(), "(0)[j=3,l=3]");
    }

    #[test]
    fn stack_layout_runs() {
        let mut b = Batch::empty_stack();
        b.push_stack_residual(2, 3);
        assert_eq!(b.runs(), &[2, 3]);
        assert_eq!(b.kind_of_run(0), BatchOp::Dequeue);
        assert_eq!(b.kind_of_run(1), BatchOp::Enqueue);
        assert_eq!(b.total_dequeues(), 2);
        assert_eq!(b.total_enqueues(), 3);
        // Constant size regardless of the number of requests (Theorem 20).
        assert!(b.size() <= 4);
    }

    #[test]
    fn stack_residual_with_only_pops() {
        let mut b = Batch::empty_stack();
        b.push_stack_residual(5, 0);
        assert_eq!(b.runs(), &[5]);
        assert_eq!(b.total_dequeues(), 5);
        assert_eq!(b.total_enqueues(), 0);
    }

    #[test]
    fn combine_all_sums_everything() {
        let mut a = Batch::empty();
        a.push_op(BatchOp::Enqueue);
        let mut b = Batch::empty();
        b.push_op(BatchOp::Enqueue);
        b.push_op(BatchOp::Dequeue);
        let combined = Batch::combine_all(FirstRun::Enqueues, [&a, &b]);
        assert_eq!(combined.runs(), &[2, 1]);
    }

    #[test]
    fn pop_last_op_undoes_push() {
        let mut b = Batch::empty();
        b.push_op(BatchOp::Enqueue);
        b.push_op(BatchOp::Dequeue);
        b.pop_last_op();
        assert_eq!(b.runs(), &[1]);
        b.pop_last_op();
        assert!(b.has_no_ops());
        assert!(b.runs().is_empty());

        // Leading-zero case: D pushed first, then popped again.
        let mut b = Batch::empty();
        b.push_op(BatchOp::Dequeue);
        assert_eq!(b.runs(), &[0, 1]);
        b.pop_last_op();
        assert!(b.runs().is_empty());
    }

    #[test]
    fn display_formats() {
        let mut b = Batch::empty();
        b.push_op(BatchOp::Enqueue);
        b.push_op(BatchOp::Dequeue);
        assert_eq!(b.to_string(), "(1,1)");
    }

    proptest! {
        /// Batch combination is commutative and associative on the counts
        /// (the order of sub-batches only matters for interval decomposition,
        /// not for the combined run lengths).
        #[test]
        fn prop_combine_commutative_associative(
            a in proptest::collection::vec(0u64..20, 0..6),
            b in proptest::collection::vec(0u64..20, 0..6),
            c in proptest::collection::vec(0u64..20, 0..6),
        ) {
            let mk = |runs: &[u64]| {
                let mut batch = Batch::empty();
                for (i, &count) in runs.iter().enumerate() {
                    for _ in 0..count {
                        batch.push_op(if i % 2 == 0 { BatchOp::Enqueue } else { BatchOp::Dequeue });
                    }
                }
                batch
            };
            let (ba, bb, bc) = (mk(&a), mk(&b), mk(&c));

            let mut ab = ba.clone();
            ab.combine(&bb);
            let mut ba_ = bb.clone();
            ba_.combine(&ba);
            prop_assert_eq!(ab.runs(), ba_.runs());

            let mut ab_c = ab.clone();
            ab_c.combine(&bc);
            let mut bc_ = bc.clone();
            bc_.combine(&bb);
            let mut a_bc = ba.clone();
            a_bc.combine(&bc_);
            prop_assert_eq!(ab_c.runs(), a_bc.runs());
            prop_assert_eq!(ab_c.total_ops(), ba.total_ops() + bb.total_ops() + bc.total_ops());
        }

        /// Pushing ops one by one always yields runs that sum to the number of
        /// pushed ops and alternate kinds correctly.
        #[test]
        fn prop_push_op_preserves_counts(ops in proptest::collection::vec(any::<bool>(), 0..200)) {
            let mut b = Batch::empty();
            for &is_enq in &ops {
                b.push_op(if is_enq { BatchOp::Enqueue } else { BatchOp::Dequeue });
            }
            prop_assert_eq!(b.total_ops() as usize, ops.len());
            prop_assert_eq!(b.total_enqueues() as usize, ops.iter().filter(|&&x| x).count());
            // Runs after the first are never zero.
            for (i, &run) in b.runs().iter().enumerate() {
                if i > 0 {
                    prop_assert!(run > 0);
                }
            }
        }
    }
}
