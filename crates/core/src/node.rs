//! The per-virtual-node protocol state machine.
//!
//! A [`SkueueNode`] is one virtual node of the LDB running the Skueue
//! protocol.  It implements [`Actor`] for the simulation substrate and
//! realises Stages 1–4 of Section III (plus the stack variant of Section VI
//! and the join/leave handling of Section IV, see `join_leave.rs`):
//!
//! * **Stage 1** (`TIMEOUT` + `AGGREGATE`): buffer locally generated
//!   operations in the working batch `W`, wait until all aggregation-tree
//!   children have contributed their sub-batches, combine everything into
//!   `B`, remember the combination order, and forward `B` to the parent.
//! * **Stage 2** (`ASSIGN`): only at the anchor — hand out position
//!   intervals, order values and tickets from the `[first, last]` window.
//! * **Stage 3** (`SERVE`): split the received assignments back among the
//!   remembered sub-batches and forward them to the children; resolve the
//!   node's own requests.
//! * **Stage 4**: issue `PUT`/`GET` operations into the DHT, routed over the
//!   LDB; record request completions for the history.

use crate::anchor::{AnchorState, RunAssignment};
use crate::batch::{Batch, BatchOp};
use crate::config::{Mode, ProtocolConfig};
use crate::messages::{DhtOp, PutMeta, SkueueMsg};
use skueue_dht::{Element, GetOutcome, NodeStore, StoredEntry};
use skueue_overlay::{
    aggregation_child_set, aggregation_parent, route_step, ChildSet, LocalView, RouteAction,
    RouteProgress, VKind,
};
use skueue_sim::actor::{Actor, Context};
use skueue_sim::ids::{NodeId, ProcessId, RequestId};
use skueue_sim::metrics::Histogram;
use skueue_verify::{OpKind, OpRecord, OpResult, OrderKey};
use std::collections::HashMap;

/// A locally generated request that has not been resolved yet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalOp {
    /// The request's identity.
    pub id: RequestId,
    /// Enqueue/push or dequeue/pop.
    pub kind: BatchOp,
    /// Payload (enqueues only).
    pub value: u64,
    /// Round in which the request was generated.
    pub issued_round: u64,
}

/// Where a sub-batch of the node's pending batch came from.
#[derive(Debug, Clone)]
pub(crate) enum BatchSource {
    /// The node's own working batch (its own requests).
    Own(Batch),
    /// A child's sub-batch.
    Child(NodeId, Batch),
}

impl BatchSource {
    fn batch(&self) -> &Batch {
        match self {
            BatchSource::Own(b) | BatchSource::Child(_, b) => b,
        }
    }
}

/// The batch a node has sent up the tree and not yet been served for, plus
/// the memorised combination order needed for Stage 3.  Only the combined
/// batch's run count is kept — the runs themselves travelled up the tree in
/// the `Aggregate` message and come back as `Serve` assignments, so storing
/// a clone of the whole batch here would be a pure waste.
#[derive(Debug, Clone)]
pub(crate) struct PendingBatch {
    pub(crate) num_runs: usize,
    pub(crate) sources: Vec<BatchSource>,
}

/// Sub-batches received from aggregation-tree children and not yet combined,
/// stored inline (the tree bounds the fan-in at two; absorbing a leaver can
/// temporarily add a couple more, hence a `Vec` — but its capacity is
/// retained across waves, so steady-state inserts and removals do not touch
/// the allocator, unlike the `BTreeMap` this replaced).
#[derive(Debug, Clone, Default)]
pub(crate) struct ChildBatches {
    entries: Vec<(NodeId, Batch)>,
}

impl ChildBatches {
    /// True when a sub-batch from `child` is buffered.
    pub(crate) fn contains(&self, child: &NodeId) -> bool {
        self.entries.iter().any(|(n, _)| n == child)
    }

    /// Buffers a sub-batch; keeps the first one on duplicate inserts (the
    /// protocol serves a child before it may send again, so duplicates only
    /// occur transiently during absorb hand-overs).
    pub(crate) fn insert_if_absent(&mut self, child: NodeId, batch: Batch) {
        if !self.contains(&child) {
            self.entries.push((child, batch));
        }
    }

    /// Removes and returns the sub-batch from `child`, if any.
    pub(crate) fn remove(&mut self, child: &NodeId) -> Option<Batch> {
        let pos = self.entries.iter().position(|(n, _)| n == child)?;
        Some(self.entries.swap_remove(pos).1)
    }

    /// Drains all buffered `(child, sub-batch)` pairs.
    pub(crate) fn drain(&mut self) -> impl Iterator<Item = (NodeId, Batch)> + '_ {
        self.entries.drain(..)
    }
}

/// Membership status of a virtual node (Section IV).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Role {
    /// Fully integrated member of the LDB.
    Active,
    /// Waiting to be integrated; `responsible` is the node relaying for us
    /// once the join request has been answered.
    Joining {
        /// The node responsible for this joiner (if already discovered).
        responsible: Option<NodeId>,
    },
    /// Granted leave and absorbed; every received message is forwarded to the
    /// absorber.
    Draining {
        /// The absorbing node (our former predecessor).
        absorber: NodeId,
    },
}

/// A joining node this node is responsible for (Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct JoinerRecord {
    pub(crate) info: skueue_overlay::NeighborInfo,
    pub(crate) handed_over: bool,
}

/// A leaver this node has granted and will absorb during the next update
/// phase (Section IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LeaverRecord {
    pub(crate) info: skueue_overlay::NeighborInfo,
    pub(crate) absorb_requested: bool,
}

/// State of an ongoing update phase at this node.
#[derive(Debug, Clone, Default)]
pub(crate) struct UpdatePhase {
    /// Children (at flag time) we still expect an `UpdateAck` from.
    pub(crate) awaiting_child_acks: Vec<NodeId>,
    /// Parent (at flag time) to ack to once done.
    pub(crate) old_parent: Option<NodeId>,
    /// Joiners we still expect an `IntegrateAck` from.
    pub(crate) awaiting_integrate_acks: usize,
    /// Leavers we still expect `AbsorbData` from.
    pub(crate) awaiting_absorb_data: usize,
    /// Whether our own ack has been sent already.
    pub(crate) acked: bool,
}

/// Counters a node keeps about its own protocol activity.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    /// Number of batches this node sent to its parent (or processed as the
    /// anchor).
    pub batches_sent: u64,
    /// Distribution of the sizes of those batches (Theorem 18 / 20).
    pub batch_sizes: Histogram,
    /// Number of DHT operations this node issued.
    pub dht_ops_issued: u64,
    /// Distribution of DHT routing hop counts observed at delivery (only
    /// recorded at the responsible node).
    pub dht_hops: Histogram,
    /// Number of requests this node generated.
    pub requests_generated: u64,
    /// Number of requests resolved by local combining (stack only).
    pub locally_combined: u64,
}

/// One virtual node running the Skueue protocol.
#[derive(Debug)]
pub struct SkueueNode {
    pub(crate) cfg: ProtocolConfig,
    pub(crate) hasher: skueue_overlay::LabelHasher,
    pub(crate) view: LocalView,
    pub(crate) role: Role,
    /// Anchor state, present only at the current anchor.
    pub(crate) anchor: Option<AnchorState>,

    // --- Stage 1 state ------------------------------------------------------
    pub(crate) own_batch: Batch,
    pub(crate) own_log: Vec<LocalOp>,
    pub(crate) child_batches: ChildBatches,
    pub(crate) pending: Option<PendingBatch>,
    pub(crate) suspended: bool,
    /// Scratch for the batch-source list, reused across aggregation waves.
    pub(crate) sources_scratch: Vec<BatchSource>,
    /// Scratch for the Stage 3 run cursors, reused across serves.
    pub(crate) cursors_scratch: Vec<RunAssignment>,
    /// Scratch for the node's own run share in Stage 3, reused across serves.
    pub(crate) runs_scratch: Vec<RunAssignment>,

    // --- Stage 4 state ------------------------------------------------------
    pub(crate) store: NodeStore,
    pub(crate) outstanding_gets: HashMap<RequestId, LocalOp>,
    pub(crate) outstanding_dht: u64,

    // --- Stack local combining ----------------------------------------------
    /// Unsent pushes eligible for local matching (indices into `own_log`).
    pub(crate) local_stack: Vec<LocalOp>,
    /// Completed-but-unordered combined pairs, keyed by the seq of the own
    /// request whose order value they must follow.
    pub(crate) pairs_by_anchor: HashMap<u64, Vec<OpRecord>>,
    /// Major order value of this node's most recently ordered own request.
    pub(crate) last_order_major: u64,
    /// Minor counter for combined pairs anchored at `last_order_major`.
    pub(crate) minor_counter: u64,

    // --- Membership (Section IV) --------------------------------------------
    /// Which of the emulating process's three virtual nodes are integrated
    /// members (indexed by `VKind::index`).  A node only treats integrated
    /// siblings as aggregation-tree children.
    pub(crate) sibling_integrated: [bool; 3],
    /// Bootstrap contact used by a joining node to send its `JOIN()` request.
    pub(crate) bootstrap: Option<NodeId>,
    /// Whether the join request has been sent already.
    pub(crate) join_sent: bool,
    /// DHT operations received while still joining; re-routed after
    /// integration.
    pub(crate) deferred_dht: Vec<(Box<DhtOp>, RouteProgress)>,
    pub(crate) joiners: Vec<JoinerRecord>,
    pub(crate) pending_leavers: Vec<LeaverRecord>,
    /// An absorber asked for our state while a batch was still pending; the
    /// hand-over happens as soon as the batch has been served.
    pub(crate) absorb_deferred: Option<NodeId>,
    pub(crate) wants_to_leave: bool,
    pub(crate) leave_granted: bool,
    pub(crate) leave_requested: bool,
    pub(crate) pending_join_count: u64,
    pub(crate) pending_leave_count: u64,
    pub(crate) update: Option<UpdatePhase>,

    // --- Outputs --------------------------------------------------------------
    pub(crate) completed: Vec<OpRecord>,
    pub(crate) stats: NodeStats,
}

impl SkueueNode {
    /// Creates a node with the given configuration and initial neighbourhood
    /// view. `is_anchor` must be true exactly for the leftmost node of the
    /// initial topology.
    pub fn new(cfg: ProtocolConfig, view: LocalView, is_anchor: bool) -> Self {
        let hasher = cfg.hasher();
        let own_batch = Self::fresh_batch(&cfg);
        SkueueNode {
            cfg,
            hasher,
            view,
            role: Role::Active,
            anchor: if is_anchor {
                Some(AnchorState::new())
            } else {
                None
            },
            own_batch,
            own_log: Vec::new(),
            child_batches: ChildBatches::default(),
            pending: None,
            suspended: false,
            sources_scratch: Vec::new(),
            cursors_scratch: Vec::new(),
            runs_scratch: Vec::new(),
            store: NodeStore::new(),
            outstanding_gets: HashMap::new(),
            outstanding_dht: 0,
            local_stack: Vec::new(),
            pairs_by_anchor: HashMap::new(),
            last_order_major: 0,
            minor_counter: 0,
            sibling_integrated: [true; 3],
            bootstrap: None,
            join_sent: false,
            deferred_dht: Vec::new(),
            joiners: Vec::new(),
            pending_leavers: Vec::new(),
            absorb_deferred: None,
            wants_to_leave: false,
            leave_granted: false,
            leave_requested: false,
            pending_join_count: 0,
            pending_leave_count: 0,
            update: None,
            completed: Vec::new(),
            stats: NodeStats::default(),
        }
    }

    /// Creates a node that starts in the joining state (not yet part of the
    /// cycle); `view` holds the node's own identity with placeholder
    /// neighbours.
    pub fn new_joining(cfg: ProtocolConfig, view: LocalView) -> Self {
        let mut node = Self::new(cfg, view, false);
        node.role = Role::Joining { responsible: None };
        // Siblings of a joining process integrate one by one; each announces
        // itself via `SiblingStatus` when it does.
        node.sibling_integrated = [false; 3];
        node
    }

    fn fresh_batch(cfg: &ProtocolConfig) -> Batch {
        match cfg.mode {
            Mode::Queue => Batch::empty(),
            Mode::Stack => Batch::empty_stack(),
        }
    }

    // ---------------------------------------------------------------------
    // Public accessors used by the cluster driver.
    // ---------------------------------------------------------------------

    /// The node's virtual identity.
    pub fn vid(&self) -> skueue_overlay::VirtualId {
        self.view.me.vid
    }

    /// The emulating process.
    pub fn process(&self) -> ProcessId {
        self.view.me.vid.process
    }

    /// The node's label.
    pub fn label(&self) -> skueue_overlay::Label {
        self.view.me.label
    }

    /// The node's current neighbourhood view.
    pub fn view(&self) -> &LocalView {
        &self.view
    }

    /// Current membership role.
    pub fn role(&self) -> &Role {
        &self.role
    }

    /// True if this node currently holds the anchor state.
    pub fn is_anchor_node(&self) -> bool {
        self.anchor.is_some()
    }

    /// The anchor state, if this node is the anchor.
    pub fn anchor_state(&self) -> Option<&AnchorState> {
        self.anchor.as_ref()
    }

    /// Number of elements stored in this node's DHT partition.
    pub fn stored_elements(&self) -> usize {
        self.store.len()
    }

    /// Number of parked GETs at this node.
    pub fn parked_gets(&self) -> usize {
        self.store.pending_gets()
    }

    /// Protocol statistics.
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// True while an update phase suspends batching at this node.
    pub fn is_suspended(&self) -> bool {
        self.suspended
    }

    /// Drains the completed-operation records collected since the last call.
    pub fn drain_completed(&mut self) -> Vec<OpRecord> {
        std::mem::take(&mut self.completed)
    }

    /// True when completion records are waiting to be drained.
    pub fn has_completed(&self) -> bool {
        !self.completed.is_empty()
    }

    /// Appends the completed-operation records to `out`, keeping this node's
    /// buffer (and its capacity) in place — the allocation-free form of
    /// [`Self::drain_completed`] used by the cluster's per-round collection.
    pub fn drain_completed_into(&mut self, out: &mut Vec<OpRecord>) {
        out.append(&mut self.completed);
    }

    /// One-line diagnostic summary of the node's protocol state (used by
    /// tests and the experiment harness when something stalls).
    pub fn diagnostics(&self) -> String {
        let children = self.tree_children().to_vec();
        let missing: Vec<NodeId> = children
            .iter()
            .copied()
            .filter(|c| !self.child_batches.contains(c))
            .collect();
        let update = match &self.update {
            Some(u) => format!(
                "update(child_acks={:?},integrate={},absorb={},acked={})",
                u.awaiting_child_acks, u.awaiting_integrate_acks, u.awaiting_absorb_data, u.acked
            ),
            None => "no-update".to_string(),
        };
        format!(
            "{} role={:?} suspended={} anchor={} pending={} children={:?} missing_child_batches={:?} joiners={} leavers={} own_log={} outstanding_gets={} outstanding_dht={} {}",
            self.view.me.vid,
            self.role,
            self.suspended,
            self.anchor.is_some(),
            self.pending.is_some(),
            children,
            missing,
            self.joiners.len(),
            self.pending_leavers.len(),
            self.own_log.len(),
            self.outstanding_gets.len(),
            self.outstanding_dht,
            update
        )
    }

    /// Number of requests generated at this node that have not completed yet.
    pub fn open_requests(&self) -> usize {
        self.own_log.len() + self.outstanding_gets.len()
    }

    // ---------------------------------------------------------------------
    // Request generation (driver-side local operation).
    // ---------------------------------------------------------------------

    /// Generates a queue/stack operation at this node.  This is a *local*
    /// action of the emulating process, not a message.
    pub fn generate_op(&mut self, id: RequestId, kind: BatchOp, value: u64, round: u64) {
        debug_assert!(
            matches!(self.role, Role::Active),
            "only active nodes generate requests"
        );
        self.stats.requests_generated += 1;
        let op = LocalOp {
            id,
            kind,
            value,
            issued_round: round,
        };

        if self.cfg.is_stack() && self.cfg.local_combining {
            match kind {
                BatchOp::Enqueue => {
                    self.own_log.push(op);
                    self.own_batch.push_op(kind);
                    self.local_stack.push(op);
                    return;
                }
                BatchOp::Dequeue => {
                    if let Some(push) = self.local_stack.pop() {
                        // The matched push is necessarily the most recently
                        // issued unsent operation: undo its batching and
                        // complete both requests immediately (Section VI).
                        let last = self.own_log.pop().expect("push must still be unsent");
                        debug_assert_eq!(last.id, push.id);
                        self.own_batch.pop_last_op();
                        self.stats.locally_combined += 2;
                        // Pairs that were anchored to the removed push must be
                        // re-anchored together with the new pair (the push
                        // will never receive an anchor order value of its
                        // own).  The push precedes and the pop follows every
                        // record in the removed bucket, so placing them at
                        // the ends keeps the whole list in issue (= seq)
                        // order without re-sorting.
                        let mut records = self
                            .pairs_by_anchor
                            .remove(&push.id.seq)
                            .unwrap_or_default();
                        let [push_rec, pop_rec] = self.make_combined_pair(push, op, round);
                        records.insert(0, push_rec);
                        records.push(pop_rec);
                        self.reanchor_pairs(records, round);
                        return;
                    }
                    // No unsent push available: the pop becomes part of the
                    // residual batch like any other operation.
                    self.own_log.push(op);
                    self.own_batch.push_op(kind);
                    return;
                }
            }
        }

        self.own_log.push(op);
        self.own_batch.push_op(kind);
    }

    /// Builds the completion records of a locally combined push/pop pair.
    /// The order keys are placeholders; [`Self::reanchor_pairs`] (directly or
    /// via [`Self::note_order_assigned`]) fills in the final keys so that the
    /// pair ends up adjacent in `≺`, right after the issuing process's most
    /// recent anchor-ordered request.
    fn make_combined_pair(&self, push: LocalOp, pop: LocalOp, round: u64) -> [OpRecord; 2] {
        let origin = self.process();
        [
            OpRecord {
                id: push.id,
                kind: OpKind::Enqueue,
                value: push.value,
                result: OpResult::Enqueued,
                order: OrderKey::local(0, origin, 0),
                issued_round: push.issued_round,
                completed_round: round,
            },
            OpRecord {
                id: pop.id,
                kind: OpKind::Dequeue,
                value: push.value,
                result: OpResult::Returned(push.id),
                order: OrderKey::local(0, origin, 0),
                issued_round: pop.issued_round,
                completed_round: round,
            },
        ]
    }

    /// Attaches locally combined records to the request whose order value
    /// they must follow, or emits them right away when that order is already
    /// known.  Records within one anchor bucket are kept in issue order (the
    /// local execution order), which is itself a valid sequential stack
    /// execution.
    ///
    /// `records` arrives in issue (= seq) order, and every record is newer
    /// than anything already in the target bucket (re-anchoring only moves
    /// records to an *older* anchor, see [`Self::generate_op`]), so a plain
    /// append preserves the bucket's sort order — no re-sorting, which the
    /// old `extend` + `sort_by_key` pattern paid on every combined pair.
    fn reanchor_pairs(&mut self, records: Vec<OpRecord>, _round: u64) {
        debug_assert!(
            records.windows(2).all(|w| w[0].id.seq < w[1].id.seq),
            "combined records must arrive in issue order"
        );
        if let Some(anchor_op) = self.own_log.last() {
            let bucket = self.pairs_by_anchor.entry(anchor_op.id.seq).or_default();
            debug_assert!(
                match (bucket.last(), records.first()) {
                    (Some(last), Some(first)) => last.id.seq < first.id.seq,
                    _ => true,
                },
                "re-anchored records must be newer than the bucket's contents"
            );
            bucket.extend(records);
        } else {
            let origin = self.process();
            for mut record in records {
                self.minor_counter += 1;
                record.order = OrderKey::local(self.last_order_major, origin, self.minor_counter);
                self.completed.push(record);
            }
        }
    }

    // ---------------------------------------------------------------------
    // Aggregation-tree helpers.
    // ---------------------------------------------------------------------

    /// The node's current aggregation-tree parent (None for the anchor).
    pub(crate) fn tree_parent(&self) -> Option<NodeId> {
        aggregation_parent(
            self.view.kind(),
            self.view.is_anchor(),
            self.view.sibling(VKind::Left).node,
            self.view.sibling(VKind::Middle).node,
            self.view.pred.node,
        )
    }

    /// The node's current aggregation-tree children (inline, no allocation —
    /// this runs on every `TIMEOUT` of every node).
    ///
    /// Sibling children (the process's own middle/right node) are only
    /// counted while they are integrated members — waiting for a sub-batch
    /// from a joining or draining sibling would deadlock the wave.
    pub(crate) fn tree_children(&self) -> ChildSet<NodeId> {
        let middle = self.view.sibling(VKind::Middle).node;
        let right = self.view.sibling(VKind::Right).node;
        let raw = aggregation_child_set(
            self.view.kind(),
            right,
            middle,
            self.view.succ.node,
            self.view.succ.kind(),
            self.view.successor_wraps(),
        );
        let mut children = ChildSet::new();
        for &n in raw.iter() {
            if n == self.view.me.node {
                continue;
            }
            let integrated = if n == middle && n != self.view.succ.node {
                self.sibling_integrated[VKind::Middle.index()]
            } else if n == right && n != self.view.succ.node {
                self.sibling_integrated[VKind::Right.index()]
            } else {
                true
            };
            if integrated {
                children.push(n);
            }
        }
        children
    }

    fn children_ready(&self, children: &ChildSet<NodeId>) -> bool {
        children.iter().all(|c| self.child_batches.contains(c))
    }

    // ---------------------------------------------------------------------
    // Stage 1: batch aggregation.
    // ---------------------------------------------------------------------

    fn try_send_batch(&mut self, ctx: &mut Context<SkueueMsg>) {
        if self.suspended || self.pending.is_some() || !matches!(self.role, Role::Active) {
            return;
        }
        let children = self.tree_children();
        if !self.children_ready(&children) {
            return;
        }
        if self.cfg.stage4_barrier && self.outstanding_dht > 0 {
            return;
        }
        let is_anchor = self.anchor.is_some();
        let parent = if is_anchor {
            None
        } else {
            match self.tree_parent() {
                Some(p) => Some(p),
                // Leftmost node that has not received the anchor state yet
                // (anchor hand-off in flight): keep everything in the
                // working state and retry next timeout.
                None => return,
            }
        };

        // Combine own batch + children sub-batches in a fixed order.  The
        // sub-batches are *moved* into the source list (they are needed for
        // the Stage 3 decomposition); the combined batch sums their runs
        // without cloning any of them.
        let own = std::mem::replace(&mut self.own_batch, Self::fresh_batch(&self.cfg));
        // Every unsent push is now committed to the aggregation path and can
        // no longer be combined locally.
        self.local_stack.clear();

        let mut sources = std::mem::take(&mut self.sources_scratch);
        debug_assert!(sources.is_empty());
        sources.push(BatchSource::Own(own));
        for &child in children.iter() {
            if let Some(batch) = self.child_batches.remove(&child) {
                sources.push(BatchSource::Child(child, batch));
            }
        }
        let mut combined = Batch::combine_all(
            self.own_batch.first_run(),
            sources.iter().map(|s| s.batch()),
        );
        // Join/leave counters this node is itself responsible for.
        combined.joins += self.pending_join_count;
        combined.leaves += self.pending_leave_count;
        self.pending_join_count = 0;
        self.pending_leave_count = 0;

        self.stats.batches_sent += 1;
        self.stats.batch_sizes.record(combined.size() as u64);

        if let Some(anchor) = self.anchor {
            // Stage 2 happens right here: the anchor serves itself.
            let mut anchor = anchor;
            let enter_update = anchor_should_update(&combined, self.cfg.update_threshold);
            let assignments = anchor.assign(&combined, self.cfg.mode);
            self.anchor = Some(anchor);
            self.serve_sources(&assignments, &mut sources, enter_update, ctx);
            self.sources_scratch = sources;
            if enter_update {
                self.enter_update_phase(None, ctx);
            }
        } else {
            let parent = parent.expect("checked above");
            self.pending = Some(PendingBatch {
                num_runs: combined.num_runs(),
                sources,
            });
            ctx.send(parent, SkueueMsg::Aggregate { batch: combined });
        }
    }

    // ---------------------------------------------------------------------
    // Stage 3: decomposition and serving.
    // ---------------------------------------------------------------------

    /// Splits the run assignments for the combined batch among its sources,
    /// in combination order (the inlined, scratch-reusing form of
    /// [`crate::interval::decompose`]): each source takes its share of every
    /// run front-to-back.  Sub-assignments for children are forwarded; the
    /// node's own share is resolved locally.  `sources` is drained — the
    /// caller parks the emptied vector back in [`Self::sources_scratch`].
    fn serve_sources(
        &mut self,
        assignments: &[RunAssignment],
        sources: &mut Vec<BatchSource>,
        enter_update: bool,
        ctx: &mut Context<SkueueMsg>,
    ) {
        let mut cursors = std::mem::take(&mut self.cursors_scratch);
        cursors.clear();
        cursors.extend_from_slice(assignments);
        for source in sources.drain(..) {
            match source {
                BatchSource::Own(own) => {
                    // The own share is consumed locally right away — split it
                    // into a reused scratch instead of a fresh Vec per wave.
                    let mut runs = std::mem::take(&mut self.runs_scratch);
                    runs.clear();
                    for (run_idx, cursor) in cursors[..own.num_runs()].iter_mut().enumerate() {
                        runs.push(cursor.split_front(own.runs()[run_idx]));
                    }
                    self.resolve_own(&runs, ctx);
                    self.runs_scratch = runs;
                }
                BatchSource::Child(child, batch) => {
                    // A child's share travels in a message and must be owned.
                    let mut runs = Vec::with_capacity(batch.num_runs());
                    for (run_idx, cursor) in cursors[..batch.num_runs()].iter_mut().enumerate() {
                        runs.push(cursor.split_front(batch.runs()[run_idx]));
                    }
                    ctx.send(child, SkueueMsg::Serve { runs, enter_update });
                }
            }
        }
        debug_assert!(
            cursors.iter().all(|c| c.count == 0),
            "sources must account for every operation of the combined batch"
        );
        self.cursors_scratch = cursors;
    }

    fn handle_serve(
        &mut self,
        runs: Vec<RunAssignment>,
        enter_update: bool,
        ctx: &mut Context<SkueueMsg>,
    ) {
        let mut pending = match self.pending.take() {
            Some(p) => p,
            None => {
                debug_assert!(false, "Serve received without a pending batch");
                return;
            }
        };
        debug_assert_eq!(pending.num_runs, runs.len());
        let old_parent = self.tree_parent();
        self.serve_sources(&runs, &mut pending.sources, enter_update, ctx);
        self.sources_scratch = pending.sources;
        if enter_update {
            self.enter_update_phase(old_parent, ctx);
        }
    }

    /// Resolves the node's own requests from the run assignments of its own
    /// sub-batch (Stage 3 → Stage 4 transition).
    fn resolve_own(&mut self, runs: &[RunAssignment], ctx: &mut Context<SkueueMsg>) {
        let mut log_cursor = 0usize;
        for run in runs {
            for j in 0..run.count {
                let op = self.own_log[log_cursor];
                log_cursor += 1;
                debug_assert_eq!(op.kind, run.kind, "own log out of sync with batch runs");
                let order_major = run.value_base + j;
                self.note_order_assigned(op.id.seq, order_major);

                match run.kind {
                    BatchOp::Enqueue => {
                        let position = run.pos_lo + j;
                        let ticket = if self.cfg.is_stack() {
                            run.ticket_base + j
                        } else {
                            0
                        };
                        self.issue_put(op, position, ticket, order_major, ctx);
                    }
                    BatchOp::Dequeue => {
                        let available = run.available_positions();
                        if j < available {
                            let position = if run.descending {
                                run.pos_hi - j
                            } else {
                                run.pos_lo + j
                            };
                            let max_ticket = if self.cfg.is_stack() {
                                run.ticket_base
                            } else {
                                u64::MAX
                            };
                            self.issue_get(op, position, max_ticket, order_major, ctx);
                        } else {
                            // ⊥: completes immediately.
                            self.completed.push(OpRecord {
                                id: op.id,
                                kind: OpKind::Dequeue,
                                value: 0,
                                result: OpResult::Empty,
                                order: OrderKey::anchor(order_major, op.id.origin),
                                issued_round: op.issued_round,
                                completed_round: ctx.round(),
                            });
                        }
                    }
                }
            }
        }
        // Remove the resolved prefix from the log; anything after it was
        // generated after the batch was sent and belongs to the next one.
        self.own_log.drain(0..log_cursor);
    }

    /// Updates the local order bookkeeping when one of this node's own
    /// requests receives its anchor order value, releasing any locally
    /// combined pairs anchored to it.
    fn note_order_assigned(&mut self, seq: u64, major: u64) {
        self.last_order_major = major;
        self.minor_counter = 0;
        if let Some(pairs) = self.pairs_by_anchor.remove(&seq) {
            // Buckets are maintained in seq order (see `reanchor_pairs`).
            debug_assert!(pairs.windows(2).all(|w| w[0].id.seq < w[1].id.seq));
            for mut record in pairs {
                self.minor_counter += 1;
                record.order = OrderKey::local(major, self.process(), self.minor_counter);
                self.completed.push(record);
            }
        }
    }

    // ---------------------------------------------------------------------
    // Stage 4: DHT operations.
    // ---------------------------------------------------------------------

    fn issue_put(
        &mut self,
        op: LocalOp,
        position: u64,
        ticket: u64,
        order_major: u64,
        ctx: &mut Context<SkueueMsg>,
    ) {
        let key = self.hasher.position_key(position);
        let entry = StoredEntry {
            position,
            key,
            ticket,
            element: Element::new(op.id, op.value),
        };
        let meta = PutMeta {
            issued_round: op.issued_round,
            order: order_major,
            needs_ack: self.cfg.stage4_barrier,
            issuer: self.view.me.node,
        };
        if self.cfg.stage4_barrier {
            self.outstanding_dht += 1;
        }
        self.stats.dht_ops_issued += 1;
        let progress = RouteProgress::new(key, self.cfg.bit_budget);
        self.route_dht(Box::new(DhtOp::Put { entry, meta }), progress, ctx);
    }

    fn issue_get(
        &mut self,
        op: LocalOp,
        position: u64,
        max_ticket: u64,
        order_major: u64,
        ctx: &mut Context<SkueueMsg>,
    ) {
        let key = self.hasher.position_key(position);
        // Remember the metadata needed to complete the request when the reply
        // arrives; the order value travels via the key of `outstanding_gets`.
        let mut meta = op;
        meta.value = order_major; // reuse the payload slot to carry the order
        self.outstanding_gets.insert(op.id, meta);
        if self.cfg.stage4_barrier {
            self.outstanding_dht += 1;
        }
        self.stats.dht_ops_issued += 1;
        let progress = RouteProgress::new(key, self.cfg.bit_budget);
        self.route_dht(
            Box::new(DhtOp::Get {
                position,
                max_ticket,
                request: op.id,
                requester: self.view.me.node,
            }),
            progress,
            ctx,
        );
    }

    /// Routes (or locally applies) a DHT operation.
    fn route_dht(
        &mut self,
        op: Box<DhtOp>,
        mut progress: RouteProgress,
        ctx: &mut Context<SkueueMsg>,
    ) {
        match route_step(&self.view, &mut progress) {
            RouteAction::Deliver => self.apply_dht(*op, &progress, ctx),
            RouteAction::Forward(next) => {
                progress.hops += 1;
                ctx.send(next, SkueueMsg::Dht { op, progress });
            }
        }
    }

    /// Applies a DHT operation at the responsible node.
    pub(crate) fn apply_dht(
        &mut self,
        op: DhtOp,
        progress: &RouteProgress,
        ctx: &mut Context<SkueueMsg>,
    ) {
        self.stats.dht_hops.record(progress.hops as u64);
        match op {
            DhtOp::Put { entry, meta } => {
                // The enqueue/push is finished once its element is stored (or
                // immediately consumed by a parked GET).
                self.completed.push(OpRecord {
                    id: entry.element.id,
                    kind: OpKind::Enqueue,
                    value: entry.element.value,
                    result: OpResult::Enqueued,
                    order: OrderKey::anchor(meta.order, entry.element.id.origin),
                    issued_round: meta.issued_round,
                    completed_round: ctx.round(),
                });
                if meta.needs_ack {
                    ctx.send(
                        meta.issuer,
                        SkueueMsg::PutAck {
                            request: entry.element.id,
                        },
                    );
                }
                for satisfied in self.store.put(entry) {
                    ctx.send(
                        satisfied.get.requester,
                        SkueueMsg::DhtReply {
                            request: satisfied.get.request,
                            entry: satisfied.entry,
                        },
                    );
                }
            }
            DhtOp::Get {
                position,
                max_ticket,
                request,
                requester,
            } => {
                match self.store.get(position, max_ticket, request, requester) {
                    GetOutcome::Found(entry) => {
                        ctx.send(requester, SkueueMsg::DhtReply { request, entry });
                    }
                    GetOutcome::Parked => {
                        // Waits at this node until the PUT arrives (Stage 4).
                    }
                }
            }
        }
    }

    fn handle_dht_reply(
        &mut self,
        request: RequestId,
        entry: StoredEntry,
        ctx: &mut Context<SkueueMsg>,
    ) {
        if let Some(meta) = self.outstanding_gets.remove(&request) {
            if self.cfg.stage4_barrier {
                self.outstanding_dht = self.outstanding_dht.saturating_sub(1);
            }
            self.completed.push(OpRecord {
                id: request,
                kind: OpKind::Dequeue,
                value: entry.element.value,
                result: OpResult::Returned(entry.element.id),
                // `value` carried the order major (see `issue_get`).
                order: OrderKey::anchor(meta.value, request.origin),
                issued_round: meta.issued_round,
                completed_round: ctx.round(),
            });
        } else {
            debug_assert!(false, "DhtReply for unknown request {request}");
        }
    }

    // ---------------------------------------------------------------------
    // Anchor / update-phase helpers (details in join_leave.rs).
    // ---------------------------------------------------------------------

    /// Becomes the anchor with the given state (initial setup or hand-off).
    pub(crate) fn adopt_anchor(&mut self, state: AnchorState) {
        self.anchor = Some(state);
    }
}

/// Whether the anchor should trigger an update phase for this batch.
fn anchor_should_update(batch: &Batch, threshold: u64) -> bool {
    threshold > 0 && batch.joins + batch.leaves >= threshold
}

impl Actor for SkueueNode {
    type Msg = SkueueMsg;

    fn on_message(&mut self, from: NodeId, msg: SkueueMsg, ctx: &mut Context<SkueueMsg>) {
        // Draining nodes forward everything to their absorber (reliable
        // channels: nothing is lost while the node is on its way out).
        if let Role::Draining { absorber } = self.role {
            match msg {
                // Pointer updates and control traffic still apply to us.
                SkueueMsg::SetPred { .. } | SkueueMsg::SetSucc { .. } | SkueueMsg::UpdateOver => {}
                other => {
                    ctx.send(absorber, other);
                    return;
                }
            }
        }

        match msg {
            SkueueMsg::Aggregate { batch } => {
                debug_assert!(
                    !self.child_batches.contains(&from),
                    "child {from} sent a second batch before being served"
                );
                self.child_batches.insert_if_absent(from, batch);
                // Try to flush immediately; the timeout would also pick it up
                // next round, but reacting now keeps latency at one round per
                // tree level, matching the paper's accounting.
                self.try_send_batch(ctx);
            }
            SkueueMsg::Serve { runs, enter_update } => {
                self.handle_serve(runs, enter_update, ctx);
            }
            SkueueMsg::Dht { op, progress } => {
                if matches!(self.role, Role::Joining { .. }) {
                    // Not part of the cycle yet: re-route after integration.
                    self.deferred_dht.push((op, progress));
                } else {
                    self.route_or_forward_dht(op, progress, ctx);
                }
            }
            SkueueMsg::DhtReply { request, entry } => self.handle_dht_reply(request, entry, ctx),
            SkueueMsg::PutAck { .. } => {
                if self.cfg.stage4_barrier {
                    self.outstanding_dht = self.outstanding_dht.saturating_sub(1);
                }
            }
            other => self.handle_membership(from, other, ctx),
        }
    }

    fn on_timeout(&mut self, ctx: &mut Context<SkueueMsg>) {
        match self.role {
            Role::Active => {
                self.membership_timeout(ctx);
                self.try_send_batch(ctx);
            }
            Role::Joining { .. } => self.joining_timeout(ctx),
            Role::Draining { .. } => {}
        }
    }

    fn is_active(&self) -> bool {
        !matches!(self.role, Role::Draining { .. })
    }

    /// A node's `TIMEOUT` is a provable no-op — and is therefore skipped by
    /// the scheduler — while its batch is pending up the aggregation tree
    /// and no membership duty is outstanding.  Every state change that can
    /// flip this back (a `Serve`, an absorb request, an `UpdateOver`, …)
    /// arrives as a message, after which the scheduler re-queries; the two
    /// driver-side mutations that can flip it ([`Self::generate_op`] cannot
    /// — sending still waits for the pending serve — but `request_leave`
    /// can) are followed by a
    /// [`refresh_timeout_interest`](skueue_sim::Simulation::refresh_timeout_interest)
    /// call in the cluster driver.
    fn wants_timeout(&self) -> bool {
        match self.role {
            Role::Active => {
                self.pending.is_none()
                    || self.absorb_deferred.is_some()
                    || (self.wants_to_leave && !self.leave_requested && !self.leave_granted)
            }
            Role::Joining { .. } => !self.join_sent,
            Role::Draining { .. } => false,
        }
    }
}

impl SkueueNode {
    /// Handles a routed DHT message: either applies it (responsible) or
    /// forwards it another hop.
    fn route_or_forward_dht(
        &mut self,
        op: Box<DhtOp>,
        mut progress: RouteProgress,
        ctx: &mut Context<SkueueMsg>,
    ) {
        // If a joiner took over part of our interval but is not integrated
        // into the cycle yet, forward operations for its range directly.
        if let Some(target) = self.joiner_responsible_for(progress.target) {
            progress.hops += 1;
            ctx.send(target, SkueueMsg::Dht { op, progress });
            return;
        }
        match route_step(&self.view, &mut progress) {
            RouteAction::Deliver => self.apply_dht(*op, &progress, ctx),
            RouteAction::Forward(next) => {
                progress.hops += 1;
                ctx.send(next, SkueueMsg::Dht { op, progress });
            }
        }
    }
}
