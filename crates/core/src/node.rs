//! The per-virtual-node protocol state machine.
//!
//! A [`SkueueNode`] is one virtual node of the LDB running the Skueue
//! protocol.  It implements [`Actor`] for the simulation substrate and
//! realises Stages 1–4 of Section III (plus the stack variant of Section VI
//! and the join/leave handling of Section IV, see `join_leave.rs`):
//!
//! * **Stage 1** (`TIMEOUT` + `AGGREGATE`): buffer locally generated
//!   operations in the working batch `W`, wait until all aggregation-tree
//!   children have contributed their sub-batches, combine everything into
//!   `B`, remember the combination order, and forward `B` to the parent.
//! * **Stage 2** (`ASSIGN`): only at the anchor — hand out position
//!   intervals, order values and tickets from the `[first, last]` window.
//! * **Stage 3** (`SERVE`): split the received assignments back among the
//!   remembered sub-batches and forward them to the children; resolve the
//!   node's own requests.
//! * **Stage 4**: issue `PUT`/`GET` operations into the DHT, routed over the
//!   LDB; record request completions for the history.

use crate::anchor::{AnchorState, RunAssignment};
use crate::batch::{Batch, BatchOp};
use crate::config::{Mode, ProtocolConfig};
use crate::messages::{DhtOp, PutMeta, SkueueMsg};
use skueue_dht::{Element, GetOutcome, NodeStore, StoredEntry};
use skueue_overlay::{
    aggregation_parent, route_step, LocalView, RouteAction, RouteProgress, VKind,
};
use skueue_sim::actor::{Actor, Context};
use skueue_sim::ids::{NodeId, ProcessId, RequestId};
use skueue_sim::metrics::Histogram;
use skueue_verify::{OpKind, OpRecord, OpResult, OrderKey};
use std::collections::{BTreeMap, HashMap};

/// A locally generated request that has not been resolved yet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalOp {
    /// The request's identity.
    pub id: RequestId,
    /// Enqueue/push or dequeue/pop.
    pub kind: BatchOp,
    /// Payload (enqueues only).
    pub value: u64,
    /// Round in which the request was generated.
    pub issued_round: u64,
}

/// Where a sub-batch of the node's pending batch came from.
#[derive(Debug, Clone)]
pub(crate) enum BatchSource {
    /// The node's own working batch (its own requests).
    Own(Batch),
    /// A child's sub-batch.
    Child(NodeId, Batch),
}

impl BatchSource {
    fn batch(&self) -> &Batch {
        match self {
            BatchSource::Own(b) | BatchSource::Child(_, b) => b,
        }
    }
}

/// The batch a node has sent up the tree and not yet been served for, plus
/// the memorised combination order needed for Stage 3.
#[derive(Debug, Clone)]
pub(crate) struct PendingBatch {
    pub(crate) combined: Batch,
    pub(crate) sources: Vec<BatchSource>,
}

/// Membership status of a virtual node (Section IV).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Role {
    /// Fully integrated member of the LDB.
    Active,
    /// Waiting to be integrated; `responsible` is the node relaying for us
    /// once the join request has been answered.
    Joining {
        /// The node responsible for this joiner (if already discovered).
        responsible: Option<NodeId>,
    },
    /// Granted leave and absorbed; every received message is forwarded to the
    /// absorber.
    Draining {
        /// The absorbing node (our former predecessor).
        absorber: NodeId,
    },
}

/// A joining node this node is responsible for (Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct JoinerRecord {
    pub(crate) info: skueue_overlay::NeighborInfo,
    pub(crate) handed_over: bool,
}

/// A leaver this node has granted and will absorb during the next update
/// phase (Section IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LeaverRecord {
    pub(crate) info: skueue_overlay::NeighborInfo,
    pub(crate) absorb_requested: bool,
}

/// State of an ongoing update phase at this node.
#[derive(Debug, Clone, Default)]
pub(crate) struct UpdatePhase {
    /// Children (at flag time) we still expect an `UpdateAck` from.
    pub(crate) awaiting_child_acks: Vec<NodeId>,
    /// Parent (at flag time) to ack to once done.
    pub(crate) old_parent: Option<NodeId>,
    /// Joiners we still expect an `IntegrateAck` from.
    pub(crate) awaiting_integrate_acks: usize,
    /// Leavers we still expect `AbsorbData` from.
    pub(crate) awaiting_absorb_data: usize,
    /// Whether our own ack has been sent already.
    pub(crate) acked: bool,
}

/// Counters a node keeps about its own protocol activity.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    /// Number of batches this node sent to its parent (or processed as the
    /// anchor).
    pub batches_sent: u64,
    /// Distribution of the sizes of those batches (Theorem 18 / 20).
    pub batch_sizes: Histogram,
    /// Number of DHT operations this node issued.
    pub dht_ops_issued: u64,
    /// Distribution of DHT routing hop counts observed at delivery (only
    /// recorded at the responsible node).
    pub dht_hops: Histogram,
    /// Number of requests this node generated.
    pub requests_generated: u64,
    /// Number of requests resolved by local combining (stack only).
    pub locally_combined: u64,
}

/// One virtual node running the Skueue protocol.
#[derive(Debug)]
pub struct SkueueNode {
    pub(crate) cfg: ProtocolConfig,
    pub(crate) hasher: skueue_overlay::LabelHasher,
    pub(crate) view: LocalView,
    pub(crate) role: Role,
    /// Anchor state, present only at the current anchor.
    pub(crate) anchor: Option<AnchorState>,

    // --- Stage 1 state ------------------------------------------------------
    pub(crate) own_batch: Batch,
    pub(crate) own_log: Vec<LocalOp>,
    pub(crate) child_batches: BTreeMap<NodeId, Batch>,
    pub(crate) pending: Option<PendingBatch>,
    pub(crate) suspended: bool,

    // --- Stage 4 state ------------------------------------------------------
    pub(crate) store: NodeStore,
    pub(crate) outstanding_gets: HashMap<RequestId, LocalOp>,
    pub(crate) outstanding_dht: u64,

    // --- Stack local combining ----------------------------------------------
    /// Unsent pushes eligible for local matching (indices into `own_log`).
    pub(crate) local_stack: Vec<LocalOp>,
    /// Completed-but-unordered combined pairs, keyed by the seq of the own
    /// request whose order value they must follow.
    pub(crate) pairs_by_anchor: HashMap<u64, Vec<OpRecord>>,
    /// Major order value of this node's most recently ordered own request.
    pub(crate) last_order_major: u64,
    /// Minor counter for combined pairs anchored at `last_order_major`.
    pub(crate) minor_counter: u64,

    // --- Membership (Section IV) --------------------------------------------
    /// Which of the emulating process's three virtual nodes are integrated
    /// members (indexed by `VKind::index`).  A node only treats integrated
    /// siblings as aggregation-tree children.
    pub(crate) sibling_integrated: [bool; 3],
    /// Bootstrap contact used by a joining node to send its `JOIN()` request.
    pub(crate) bootstrap: Option<NodeId>,
    /// Whether the join request has been sent already.
    pub(crate) join_sent: bool,
    /// DHT operations received while still joining; re-routed after
    /// integration.
    pub(crate) deferred_dht: Vec<(DhtOp, RouteProgress)>,
    pub(crate) joiners: Vec<JoinerRecord>,
    pub(crate) pending_leavers: Vec<LeaverRecord>,
    /// An absorber asked for our state while a batch was still pending; the
    /// hand-over happens as soon as the batch has been served.
    pub(crate) absorb_deferred: Option<NodeId>,
    pub(crate) wants_to_leave: bool,
    pub(crate) leave_granted: bool,
    pub(crate) leave_requested: bool,
    pub(crate) pending_join_count: u64,
    pub(crate) pending_leave_count: u64,
    pub(crate) update: Option<UpdatePhase>,

    // --- Outputs --------------------------------------------------------------
    pub(crate) completed: Vec<OpRecord>,
    pub(crate) stats: NodeStats,
}

impl SkueueNode {
    /// Creates a node with the given configuration and initial neighbourhood
    /// view. `is_anchor` must be true exactly for the leftmost node of the
    /// initial topology.
    pub fn new(cfg: ProtocolConfig, view: LocalView, is_anchor: bool) -> Self {
        let hasher = cfg.hasher();
        let own_batch = Self::fresh_batch(&cfg);
        SkueueNode {
            cfg,
            hasher,
            view,
            role: Role::Active,
            anchor: if is_anchor {
                Some(AnchorState::new())
            } else {
                None
            },
            own_batch,
            own_log: Vec::new(),
            child_batches: BTreeMap::new(),
            pending: None,
            suspended: false,
            store: NodeStore::new(),
            outstanding_gets: HashMap::new(),
            outstanding_dht: 0,
            local_stack: Vec::new(),
            pairs_by_anchor: HashMap::new(),
            last_order_major: 0,
            minor_counter: 0,
            sibling_integrated: [true; 3],
            bootstrap: None,
            join_sent: false,
            deferred_dht: Vec::new(),
            joiners: Vec::new(),
            pending_leavers: Vec::new(),
            absorb_deferred: None,
            wants_to_leave: false,
            leave_granted: false,
            leave_requested: false,
            pending_join_count: 0,
            pending_leave_count: 0,
            update: None,
            completed: Vec::new(),
            stats: NodeStats::default(),
        }
    }

    /// Creates a node that starts in the joining state (not yet part of the
    /// cycle); `view` holds the node's own identity with placeholder
    /// neighbours.
    pub fn new_joining(cfg: ProtocolConfig, view: LocalView) -> Self {
        let mut node = Self::new(cfg, view, false);
        node.role = Role::Joining { responsible: None };
        // Siblings of a joining process integrate one by one; each announces
        // itself via `SiblingStatus` when it does.
        node.sibling_integrated = [false; 3];
        node
    }

    fn fresh_batch(cfg: &ProtocolConfig) -> Batch {
        match cfg.mode {
            Mode::Queue => Batch::empty(),
            Mode::Stack => Batch::empty_stack(),
        }
    }

    // ---------------------------------------------------------------------
    // Public accessors used by the cluster driver.
    // ---------------------------------------------------------------------

    /// The node's virtual identity.
    pub fn vid(&self) -> skueue_overlay::VirtualId {
        self.view.me.vid
    }

    /// The emulating process.
    pub fn process(&self) -> ProcessId {
        self.view.me.vid.process
    }

    /// The node's label.
    pub fn label(&self) -> skueue_overlay::Label {
        self.view.me.label
    }

    /// The node's current neighbourhood view.
    pub fn view(&self) -> &LocalView {
        &self.view
    }

    /// Current membership role.
    pub fn role(&self) -> &Role {
        &self.role
    }

    /// True if this node currently holds the anchor state.
    pub fn is_anchor_node(&self) -> bool {
        self.anchor.is_some()
    }

    /// The anchor state, if this node is the anchor.
    pub fn anchor_state(&self) -> Option<&AnchorState> {
        self.anchor.as_ref()
    }

    /// Number of elements stored in this node's DHT partition.
    pub fn stored_elements(&self) -> usize {
        self.store.len()
    }

    /// Number of parked GETs at this node.
    pub fn parked_gets(&self) -> usize {
        self.store.pending_gets()
    }

    /// Protocol statistics.
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// True while an update phase suspends batching at this node.
    pub fn is_suspended(&self) -> bool {
        self.suspended
    }

    /// Drains the completed-operation records collected since the last call.
    pub fn drain_completed(&mut self) -> Vec<OpRecord> {
        std::mem::take(&mut self.completed)
    }

    /// One-line diagnostic summary of the node's protocol state (used by
    /// tests and the experiment harness when something stalls).
    pub fn diagnostics(&self) -> String {
        let children = self.tree_children();
        let missing: Vec<NodeId> = children
            .iter()
            .copied()
            .filter(|c| !self.child_batches.contains_key(c))
            .collect();
        let update = match &self.update {
            Some(u) => format!(
                "update(child_acks={:?},integrate={},absorb={},acked={})",
                u.awaiting_child_acks, u.awaiting_integrate_acks, u.awaiting_absorb_data, u.acked
            ),
            None => "no-update".to_string(),
        };
        format!(
            "{} role={:?} suspended={} anchor={} pending={} children={:?} missing_child_batches={:?} joiners={} leavers={} own_log={} outstanding_gets={} outstanding_dht={} {}",
            self.view.me.vid,
            self.role,
            self.suspended,
            self.anchor.is_some(),
            self.pending.is_some(),
            children,
            missing,
            self.joiners.len(),
            self.pending_leavers.len(),
            self.own_log.len(),
            self.outstanding_gets.len(),
            self.outstanding_dht,
            update
        )
    }

    /// Number of requests generated at this node that have not completed yet.
    pub fn open_requests(&self) -> usize {
        self.own_log.len() + self.outstanding_gets.len()
    }

    // ---------------------------------------------------------------------
    // Request generation (driver-side local operation).
    // ---------------------------------------------------------------------

    /// Generates a queue/stack operation at this node.  This is a *local*
    /// action of the emulating process, not a message.
    pub fn generate_op(&mut self, id: RequestId, kind: BatchOp, value: u64, round: u64) {
        debug_assert!(
            matches!(self.role, Role::Active),
            "only active nodes generate requests"
        );
        self.stats.requests_generated += 1;
        let op = LocalOp {
            id,
            kind,
            value,
            issued_round: round,
        };

        if self.cfg.is_stack() && self.cfg.local_combining {
            match kind {
                BatchOp::Enqueue => {
                    self.own_log.push(op);
                    self.own_batch.push_op(kind);
                    self.local_stack.push(op);
                    return;
                }
                BatchOp::Dequeue => {
                    if let Some(push) = self.local_stack.pop() {
                        // The matched push is necessarily the most recently
                        // issued unsent operation: undo its batching and
                        // complete both requests immediately (Section VI).
                        let last = self.own_log.pop().expect("push must still be unsent");
                        debug_assert_eq!(last.id, push.id);
                        self.own_batch.pop_last_op();
                        self.stats.locally_combined += 2;
                        // Pairs that were anchored to the removed push must be
                        // re-anchored together with the new pair (the push
                        // will never receive an anchor order value of its
                        // own); a single re-anchoring call keeps them in
                        // issue order.
                        let mut records = self
                            .pairs_by_anchor
                            .remove(&push.id.seq)
                            .unwrap_or_default();
                        records.extend(self.make_combined_pair(push, op, round));
                        self.reanchor_pairs(records, round);
                        return;
                    }
                    // No unsent push available: the pop becomes part of the
                    // residual batch like any other operation.
                    self.own_log.push(op);
                    self.own_batch.push_op(kind);
                    return;
                }
            }
        }

        self.own_log.push(op);
        self.own_batch.push_op(kind);
    }

    /// Builds the completion records of a locally combined push/pop pair.
    /// The order keys are placeholders; [`Self::reanchor_pairs`] (directly or
    /// via [`Self::note_order_assigned`]) fills in the final keys so that the
    /// pair ends up adjacent in `≺`, right after the issuing process's most
    /// recent anchor-ordered request.
    fn make_combined_pair(&self, push: LocalOp, pop: LocalOp, round: u64) -> [OpRecord; 2] {
        let origin = self.process();
        [
            OpRecord {
                id: push.id,
                kind: OpKind::Enqueue,
                value: push.value,
                result: OpResult::Enqueued,
                order: OrderKey::local(0, origin, 0),
                issued_round: push.issued_round,
                completed_round: round,
            },
            OpRecord {
                id: pop.id,
                kind: OpKind::Dequeue,
                value: push.value,
                result: OpResult::Returned(push.id),
                order: OrderKey::local(0, origin, 0),
                issued_round: pop.issued_round,
                completed_round: round,
            },
        ]
    }

    /// Attaches locally combined records to the request whose order value
    /// they must follow, or emits them right away when that order is already
    /// known.  Records within one anchor bucket are kept in issue order (the
    /// local execution order), which is itself a valid sequential stack
    /// execution.
    fn reanchor_pairs(&mut self, records: Vec<OpRecord>, _round: u64) {
        if let Some(anchor_op) = self.own_log.last() {
            let bucket = self.pairs_by_anchor.entry(anchor_op.id.seq).or_default();
            bucket.extend(records);
            bucket.sort_by_key(|r| r.id.seq);
        } else {
            let origin = self.process();
            let mut records = records;
            records.sort_by_key(|r| r.id.seq);
            for mut record in records {
                self.minor_counter += 1;
                record.order = OrderKey::local(self.last_order_major, origin, self.minor_counter);
                self.completed.push(record);
            }
        }
    }

    // ---------------------------------------------------------------------
    // Aggregation-tree helpers.
    // ---------------------------------------------------------------------

    /// The node's current aggregation-tree parent (None for the anchor).
    pub(crate) fn tree_parent(&self) -> Option<NodeId> {
        aggregation_parent(
            self.view.kind(),
            self.view.is_anchor(),
            self.view.sibling(VKind::Left).node,
            self.view.sibling(VKind::Middle).node,
            self.view.pred.node,
        )
    }

    /// The node's current aggregation-tree children.
    ///
    /// Sibling children (the process's own middle/right node) are only
    /// counted while they are integrated members — waiting for a sub-batch
    /// from a joining or draining sibling would deadlock the wave.
    pub(crate) fn tree_children(&self) -> Vec<NodeId> {
        let middle = self.view.sibling(VKind::Middle).node;
        let right = self.view.sibling(VKind::Right).node;
        skueue_overlay::aggregation_children(
            self.view.kind(),
            right,
            middle,
            self.view.succ.node,
            self.view.succ.kind(),
            self.view.successor_wraps(),
        )
        .into_iter()
        .filter(|&n| n != self.view.me.node)
        .filter(|&n| {
            if n == middle && n != self.view.succ.node {
                self.sibling_integrated[VKind::Middle.index()]
            } else if n == right && n != self.view.succ.node {
                self.sibling_integrated[VKind::Right.index()]
            } else {
                true
            }
        })
        .collect()
    }

    fn children_ready(&self) -> bool {
        self.tree_children()
            .iter()
            .all(|c| self.child_batches.contains_key(c))
    }

    // ---------------------------------------------------------------------
    // Stage 1: batch aggregation.
    // ---------------------------------------------------------------------

    fn try_send_batch(&mut self, ctx: &mut Context<SkueueMsg>) {
        if self.suspended
            || self.pending.is_some()
            || !matches!(self.role, Role::Active)
            || !self.children_ready()
        {
            return;
        }
        if self.cfg.stage4_barrier && self.outstanding_dht > 0 {
            return;
        }

        // Combine own batch + children sub-batches in a fixed order.
        let own = std::mem::replace(&mut self.own_batch, Self::fresh_batch(&self.cfg));
        // Every unsent push is now committed to the aggregation path and can
        // no longer be combined locally.
        self.local_stack.clear();

        let mut sources = Vec::with_capacity(1 + self.child_batches.len());
        let mut combined = own.clone();
        // Join/leave counters this node is itself responsible for.
        combined.joins += self.pending_join_count;
        combined.leaves += self.pending_leave_count;
        self.pending_join_count = 0;
        self.pending_leave_count = 0;
        sources.push(BatchSource::Own(own));
        for child in self.tree_children() {
            if let Some(batch) = self.child_batches.remove(&child) {
                combined.combine(&batch);
                sources.push(BatchSource::Child(child, batch));
            }
        }

        self.stats.batches_sent += 1;
        self.stats.batch_sizes.record(combined.size() as u64);

        if let Some(anchor) = self.anchor {
            // Stage 2 happens right here: the anchor serves itself.
            let mut anchor = anchor;
            let enter_update = anchor_should_update(&combined, self.cfg.update_threshold);
            let assignments = anchor.assign(&combined, self.cfg.mode);
            self.anchor = Some(anchor);
            self.serve_sources(&assignments, sources, enter_update, ctx);
            if enter_update {
                self.enter_update_phase(None, ctx);
            }
        } else {
            let parent = match self.tree_parent() {
                Some(p) => p,
                None => {
                    // Leftmost node that has not received the anchor state
                    // yet (anchor hand-off in flight): put everything back
                    // and wait.
                    self.restore_unsent(sources);
                    return;
                }
            };
            self.pending = Some(PendingBatch {
                combined: combined.clone(),
                sources,
            });
            ctx.send(parent, SkueueMsg::Aggregate { batch: combined });
        }
    }

    // ---------------------------------------------------------------------
    // Stage 3: decomposition and serving.
    // ---------------------------------------------------------------------

    fn serve_sources(
        &mut self,
        assignments: &[RunAssignment],
        sources: Vec<BatchSource>,
        enter_update: bool,
        ctx: &mut Context<SkueueMsg>,
    ) {
        let sub_batches: Vec<&Batch> = sources.iter().map(|s| s.batch()).collect();
        let parts = crate::interval::decompose(assignments, &sub_batches);
        for (source, runs) in sources.iter().zip(parts) {
            match source {
                BatchSource::Own(_) => self.resolve_own(&runs, ctx),
                BatchSource::Child(child, _) => {
                    ctx.send(*child, SkueueMsg::Serve { runs, enter_update });
                }
            }
        }
    }

    fn handle_serve(
        &mut self,
        runs: Vec<RunAssignment>,
        enter_update: bool,
        ctx: &mut Context<SkueueMsg>,
    ) {
        let pending = match self.pending.take() {
            Some(p) => p,
            None => {
                debug_assert!(false, "Serve received without a pending batch");
                return;
            }
        };
        debug_assert_eq!(pending.combined.num_runs(), runs.len());
        let old_parent = self.tree_parent();
        self.serve_sources(&runs, pending.sources, enter_update, ctx);
        if enter_update {
            self.enter_update_phase(old_parent, ctx);
        }
    }

    /// Resolves the node's own requests from the run assignments of its own
    /// sub-batch (Stage 3 → Stage 4 transition).
    fn resolve_own(&mut self, runs: &[RunAssignment], ctx: &mut Context<SkueueMsg>) {
        let mut log_cursor = 0usize;
        for run in runs {
            for j in 0..run.count {
                let op = self.own_log[log_cursor];
                log_cursor += 1;
                debug_assert_eq!(op.kind, run.kind, "own log out of sync with batch runs");
                let order_major = run.value_base + j;
                self.note_order_assigned(op.id.seq, order_major);

                match run.kind {
                    BatchOp::Enqueue => {
                        let position = run.pos_lo + j;
                        let ticket = if self.cfg.is_stack() {
                            run.ticket_base + j
                        } else {
                            0
                        };
                        self.issue_put(op, position, ticket, order_major, ctx);
                    }
                    BatchOp::Dequeue => {
                        let available = run.available_positions();
                        if j < available {
                            let position = if run.descending {
                                run.pos_hi - j
                            } else {
                                run.pos_lo + j
                            };
                            let max_ticket = if self.cfg.is_stack() {
                                run.ticket_base
                            } else {
                                u64::MAX
                            };
                            self.issue_get(op, position, max_ticket, order_major, ctx);
                        } else {
                            // ⊥: completes immediately.
                            self.completed.push(OpRecord {
                                id: op.id,
                                kind: OpKind::Dequeue,
                                value: 0,
                                result: OpResult::Empty,
                                order: OrderKey::anchor(order_major, op.id.origin),
                                issued_round: op.issued_round,
                                completed_round: ctx.round(),
                            });
                        }
                    }
                }
            }
        }
        // Remove the resolved prefix from the log; anything after it was
        // generated after the batch was sent and belongs to the next one.
        self.own_log.drain(0..log_cursor);
    }

    /// Updates the local order bookkeeping when one of this node's own
    /// requests receives its anchor order value, releasing any locally
    /// combined pairs anchored to it.
    fn note_order_assigned(&mut self, seq: u64, major: u64) {
        self.last_order_major = major;
        self.minor_counter = 0;
        if let Some(mut pairs) = self.pairs_by_anchor.remove(&seq) {
            pairs.sort_by_key(|r| r.id.seq);
            for mut record in pairs {
                self.minor_counter += 1;
                record.order = OrderKey::local(major, self.process(), self.minor_counter);
                self.completed.push(record);
            }
        }
    }

    // ---------------------------------------------------------------------
    // Stage 4: DHT operations.
    // ---------------------------------------------------------------------

    fn issue_put(
        &mut self,
        op: LocalOp,
        position: u64,
        ticket: u64,
        order_major: u64,
        ctx: &mut Context<SkueueMsg>,
    ) {
        let key = self.hasher.position_key(position);
        let entry = StoredEntry {
            position,
            key,
            ticket,
            element: Element::new(op.id, op.value),
        };
        let meta = PutMeta {
            issued_round: op.issued_round,
            order: order_major,
            needs_ack: self.cfg.stage4_barrier,
            issuer: self.view.me.node,
        };
        if self.cfg.stage4_barrier {
            self.outstanding_dht += 1;
        }
        self.stats.dht_ops_issued += 1;
        let progress = RouteProgress::new(key, self.cfg.bit_budget);
        self.route_dht(DhtOp::Put { entry, meta }, progress, ctx);
    }

    fn issue_get(
        &mut self,
        op: LocalOp,
        position: u64,
        max_ticket: u64,
        order_major: u64,
        ctx: &mut Context<SkueueMsg>,
    ) {
        let key = self.hasher.position_key(position);
        // Remember the metadata needed to complete the request when the reply
        // arrives; the order value travels via the key of `outstanding_gets`.
        let mut meta = op;
        meta.value = order_major; // reuse the payload slot to carry the order
        self.outstanding_gets.insert(op.id, meta);
        if self.cfg.stage4_barrier {
            self.outstanding_dht += 1;
        }
        self.stats.dht_ops_issued += 1;
        let progress = RouteProgress::new(key, self.cfg.bit_budget);
        self.route_dht(
            DhtOp::Get {
                position,
                max_ticket,
                request: op.id,
                requester: self.view.me.node,
            },
            progress,
            ctx,
        );
    }

    /// Routes (or locally applies) a DHT operation.
    fn route_dht(&mut self, op: DhtOp, mut progress: RouteProgress, ctx: &mut Context<SkueueMsg>) {
        match route_step(&self.view, &mut progress) {
            RouteAction::Deliver => self.apply_dht(op, &progress, ctx),
            RouteAction::Forward(next) => {
                progress.hops += 1;
                ctx.send(next, SkueueMsg::Dht { op, progress });
            }
        }
    }

    /// Applies a DHT operation at the responsible node.
    pub(crate) fn apply_dht(
        &mut self,
        op: DhtOp,
        progress: &RouteProgress,
        ctx: &mut Context<SkueueMsg>,
    ) {
        self.stats.dht_hops.record(progress.hops as u64);
        match op {
            DhtOp::Put { entry, meta } => {
                // The enqueue/push is finished once its element is stored (or
                // immediately consumed by a parked GET).
                self.completed.push(OpRecord {
                    id: entry.element.id,
                    kind: OpKind::Enqueue,
                    value: entry.element.value,
                    result: OpResult::Enqueued,
                    order: OrderKey::anchor(meta.order, entry.element.id.origin),
                    issued_round: meta.issued_round,
                    completed_round: ctx.round(),
                });
                if meta.needs_ack {
                    ctx.send(
                        meta.issuer,
                        SkueueMsg::PutAck {
                            request: entry.element.id,
                        },
                    );
                }
                for satisfied in self.store.put(entry) {
                    ctx.send(
                        satisfied.get.requester,
                        SkueueMsg::DhtReply {
                            request: satisfied.get.request,
                            entry: satisfied.entry,
                        },
                    );
                }
            }
            DhtOp::Get {
                position,
                max_ticket,
                request,
                requester,
            } => {
                match self.store.get(position, max_ticket, request, requester) {
                    GetOutcome::Found(entry) => {
                        ctx.send(requester, SkueueMsg::DhtReply { request, entry });
                    }
                    GetOutcome::Parked => {
                        // Waits at this node until the PUT arrives (Stage 4).
                    }
                }
            }
        }
    }

    fn handle_dht_reply(
        &mut self,
        request: RequestId,
        entry: StoredEntry,
        ctx: &mut Context<SkueueMsg>,
    ) {
        if let Some(meta) = self.outstanding_gets.remove(&request) {
            if self.cfg.stage4_barrier {
                self.outstanding_dht = self.outstanding_dht.saturating_sub(1);
            }
            self.completed.push(OpRecord {
                id: request,
                kind: OpKind::Dequeue,
                value: entry.element.value,
                result: OpResult::Returned(entry.element.id),
                // `value` carried the order major (see `issue_get`).
                order: OrderKey::anchor(meta.value, request.origin),
                issued_round: meta.issued_round,
                completed_round: ctx.round(),
            });
        } else {
            debug_assert!(false, "DhtReply for unknown request {request}");
        }
    }

    // ---------------------------------------------------------------------
    // Anchor / update-phase helpers (details in join_leave.rs).
    // ---------------------------------------------------------------------

    /// Becomes the anchor with the given state (initial setup or hand-off).
    pub(crate) fn adopt_anchor(&mut self, state: AnchorState) {
        self.anchor = Some(state);
    }

    /// Puts batch sources back into the working state (used when a batch
    /// cannot be sent after all, e.g. while waiting for an anchor hand-off).
    fn restore_unsent(&mut self, sources: Vec<BatchSource>) {
        self.stats.batches_sent -= 1;
        for source in sources {
            match source {
                BatchSource::Own(own) => {
                    // Re-merge our own operations; join/leave counters were
                    // already moved into the combined batch and are restored
                    // below via the pending counters.
                    let mut restored = own;
                    std::mem::swap(&mut self.own_batch, &mut restored);
                    // `restored` is the fresh (empty) batch created above —
                    // combine any operations generated in the meantime.
                    self.own_batch.combine(&restored);
                }
                BatchSource::Child(child, batch) => {
                    self.child_batches.insert(child, batch);
                }
            }
        }
    }
}

/// Whether the anchor should trigger an update phase for this batch.
fn anchor_should_update(batch: &Batch, threshold: u64) -> bool {
    threshold > 0 && batch.joins + batch.leaves >= threshold
}

impl Actor for SkueueNode {
    type Msg = SkueueMsg;

    fn on_message(&mut self, from: NodeId, msg: SkueueMsg, ctx: &mut Context<SkueueMsg>) {
        // Draining nodes forward everything to their absorber (reliable
        // channels: nothing is lost while the node is on its way out).
        if let Role::Draining { absorber } = self.role {
            match msg {
                // Pointer updates and control traffic still apply to us.
                SkueueMsg::SetPred { .. } | SkueueMsg::SetSucc { .. } | SkueueMsg::UpdateOver => {}
                other => {
                    ctx.send(absorber, other);
                    return;
                }
            }
        }

        match msg {
            SkueueMsg::Aggregate { batch } => {
                debug_assert!(
                    !self.child_batches.contains_key(&from),
                    "child {from} sent a second batch before being served"
                );
                self.child_batches.insert(from, batch);
                // Try to flush immediately; the timeout would also pick it up
                // next round, but reacting now keeps latency at one round per
                // tree level, matching the paper's accounting.
                self.try_send_batch(ctx);
            }
            SkueueMsg::Serve { runs, enter_update } => {
                self.handle_serve(runs, enter_update, ctx);
            }
            SkueueMsg::Dht { op, progress } => {
                if matches!(self.role, Role::Joining { .. }) {
                    // Not part of the cycle yet: re-route after integration.
                    self.deferred_dht.push((op, progress));
                } else {
                    self.route_or_forward_dht(op, progress, ctx);
                }
            }
            SkueueMsg::DhtReply { request, entry } => self.handle_dht_reply(request, entry, ctx),
            SkueueMsg::PutAck { .. } => {
                if self.cfg.stage4_barrier {
                    self.outstanding_dht = self.outstanding_dht.saturating_sub(1);
                }
            }
            other => self.handle_membership(from, other, ctx),
        }
    }

    fn on_timeout(&mut self, ctx: &mut Context<SkueueMsg>) {
        match self.role {
            Role::Active => {
                self.membership_timeout(ctx);
                self.try_send_batch(ctx);
            }
            Role::Joining { .. } => self.joining_timeout(ctx),
            Role::Draining { .. } => {}
        }
    }

    fn is_active(&self) -> bool {
        !matches!(self.role, Role::Draining { .. })
    }
}

impl SkueueNode {
    /// Handles a routed DHT message: either applies it (responsible) or
    /// forwards it another hop.
    fn route_or_forward_dht(
        &mut self,
        op: DhtOp,
        mut progress: RouteProgress,
        ctx: &mut Context<SkueueMsg>,
    ) {
        // If a joiner took over part of our interval but is not integrated
        // into the cycle yet, forward operations for its range directly.
        if let Some(target) = self.joiner_responsible_for(progress.target) {
            progress.hops += 1;
            ctx.send(target, SkueueMsg::Dht { op, progress });
            return;
        }
        match route_step(&self.view, &mut progress) {
            RouteAction::Deliver => self.apply_dht(op, &progress, ctx),
            RouteAction::Forward(next) => {
                progress.hops += 1;
                ctx.send(next, SkueueMsg::Dht { op, progress });
            }
        }
    }
}
